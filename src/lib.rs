//! # pipa — facade crate for the PIPA reproduction
//!
//! Re-exports every sub-crate of the workspace under one roof so examples
//! and downstream users can depend on a single crate:
//!
//! * [`sim`] — the database substrate (schema, statistics, cost model,
//!   executor, what-if interface);
//! * [`cost`] — the object-safe [`cost::CostBackend`] seam every consumer
//!   routes cost access through, plus record/replay backends and the
//!   learned-index backend (a poisoning target in its own right);
//! * [`workload`] — TPC-H / TPC-DS schemas, templates, workload generation;
//! * [`nn`] — the tiny neural-network library backing the learned advisors
//!   and the IABART query generator;
//! * [`ia`] — learning-based index advisors (DQN, DRLindex, DBABandit,
//!   SWIRL, InContext) plus heuristic baselines, built through the open
//!   target registry ([`ia::AdvisorSpec`] → [`ia::register_target`]);
//! * [`qgen`] — query generators (FSM, templates, IABART);
//! * [`core`] — PIPA itself: probing, injecting, AD/RD metrics, and the
//!   stress-test harness;
//! * [`serve`] — the multi-tenant session fleet (typed
//!   `TenantSpec`/`FleetSpec` API over a work-stealing scheduler);
//! * [`obs`] — zero-dependency observability (event channels, timers,
//!   per-cell recording).

pub use pipa_core as core;
pub use pipa_cost as cost;
pub use pipa_obs as obs;
pub use pipa_ia as ia;
pub use pipa_nn as nn;
pub use pipa_qgen as qgen;
pub use pipa_serve as serve;
pub use pipa_sim as sim;
pub use pipa_workload as workload;
