//! Offline vendored criterion-lite: a wall-clock micro-benchmark harness
//! exposing the subset of the criterion 0.5 API this workspace's benches
//! use (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`).
//!
//! Differences from real criterion: no statistical outlier analysis, no
//! HTML reports, no comparison against saved baselines. Each benchmark
//! runs a calibrated number of iterations per sample and reports the
//! median / mean / min sample time. When the `CRITERION_JSON` environment
//! variable is set, a machine-readable summary of every benchmark in the
//! process is appended to that path as one JSON object per line.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// lite harness always re-runs setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// One benchmark's collected sample times.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub id: String,
    /// Per-iteration time of each sample, nanoseconds.
    pub sample_ns: Vec<f64>,
}

impl SampleReport {
    /// Median per-iteration nanoseconds.
    pub fn median_ns(&self) -> f64 {
        let mut xs = self.sample_ns.clone();
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            xs[n / 2]
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) / 2.0
        }
    }

    /// Mean per-iteration nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.sample_ns.is_empty() {
            return 0.0;
        }
        self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark and print its summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement: self.measurement,
            report: SampleReport {
                id: id.to_string(),
                sample_ns: Vec::new(),
            },
        };
        f(&mut b);
        let med = b.report.median_ns();
        println!(
            "{id:<40} time: [median {} mean {} min {}]",
            fmt_ns(med),
            fmt_ns(b.report.mean_ns()),
            fmt_ns(
                b.report
                    .sample_ns
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            ),
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let line = format!(
                "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}\n",
                id,
                med,
                b.report.mean_ns(),
                b.report.sample_ns.len()
            );
            use std::io::Write as _;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = f.write_all(line.as_bytes());
            }
        }
        self
    }
}

/// Measures a single benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement: Duration,
    report: SampleReport,
}

impl Bencher {
    /// Benchmark a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit in one sample slot.
        let t0 = Instant::now();
        let mut calibration_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(5) {
            std::hint::black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / calibration_iters as f64;
        let slot_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((slot_ns / per_iter) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.report
                .sample_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Benchmark a routine whose input is rebuilt by `setup` outside the
    /// timed region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.report.sample_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn report_statistics() {
        let r = SampleReport {
            id: "x".into(),
            sample_ns: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(r.median_ns(), 2.0);
        assert_eq!(r.mean_ns(), 2.0);
    }
}
