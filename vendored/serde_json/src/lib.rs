//! Offline vendored mini-`serde_json`: renders the mini-`serde`
//! [`Value`] tree as JSON text, compact or pretty (2-space indent,
//! matching upstream's `to_string_pretty` layout so existing
//! `results/*.json` artifacts keep their shape).

#![warn(missing_docs)]

pub use serde::Value;
use serde::Serialize;
use std::fmt;

/// Serialization error (the mini-serde `Value` tree is total, so errors
/// never actually occur; the type exists for API compatibility).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => out.push_str(&format_f64(*x)),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, depth + 1, i > 0);
                write_value(out, item, indent, depth + 1);
            }
        }),
        Value::Object(entries) => {
            write_seq(out, indent, depth, entries.is_empty(), '{', '}', |out| {
                for (i, (k, item)) in entries.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, indent, depth + 1);
                }
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

/// JSON float formatting: finite whole numbers keep a trailing `.0`
/// (like upstream's ryu output), non-finite values become `null` (the
/// closest JSON-legal rendering; upstream errors instead).
fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e16 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Float(0.5), Value::Null])),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(to_string(&W(v)).unwrap(), r#"{"a":1,"b":[0.5,null]}"#);
    }

    #[test]
    fn pretty_rendering_uses_two_space_indent() {
        struct W;
        impl Serialize for W {
            fn to_value(&self) -> Value {
                Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(1)]))])
            }
        }
        assert_eq!(
            to_string_pretty(&W).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_trailing_zero_like_upstream() {
        assert_eq!(format_f64(1.0), "1.0");
        assert_eq!(format_f64(-2.0), "-2.0");
        assert_eq!(format_f64(0.125), "0.125");
        assert_eq!(format_f64(f64::NAN), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
