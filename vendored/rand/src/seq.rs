//! Slice sampling helpers (the subset of `rand::seq` this workspace
//! uses: `choose`, `choose_multiple`, `shuffle`).

use crate::{RngCore, SampleRange};

/// Random selection from slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements chosen without replacement (fewer if
    /// the slice is shorter), in random selection order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((0..self.len()).sample_single(rng))
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: the first `amount`
        // positions end up holding a uniform sample without replacement.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = (i..idx.len()).sample_single(rng);
            idx.swap(i, j);
        }
        idx[..amount]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    // A tiny splittable generator for tests only.
    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn choose_covers_and_respects_emptiness() {
        let mut rng = Lcg::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [1, 2, 3];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = Lcg::seed_from_u64(2);
        let xs: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "duplicates in {picked:?}");
        // Oversampling clamps to the slice length.
        assert_eq!(xs.choose_multiple(&mut rng, 100).count(), 20);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut back = xs.clone();
        back.sort_unstable();
        assert_eq!(back, (0..50).collect::<Vec<u32>>());
    }
}
