//! Offline vendored mini-`rand`: a dependency-free reimplementation of
//! the subset of the `rand` 0.8 API this workspace uses.
//!
//! The container this repository builds in has no network access and no
//! crates-io mirror, so the real `rand` crate cannot be downloaded. This
//! crate keeps the exact import paths (`rand::Rng`, `rand::SeedableRng`,
//! `rand::seq::SliceRandom`, …) so the rest of the workspace compiles
//! unchanged against a local path dependency.
//!
//! Compatibility notes:
//!
//! * [`SeedableRng::seed_from_u64`] reproduces `rand_core` 0.6's
//!   SplitMix64 seed-expansion exactly, so seeds written in tests and
//!   experiment configs mean the same stream as upstream.
//! * `gen::<f64>()` uses the same `(u64 >> 11) * 2^-53` construction as
//!   upstream's `Standard` distribution.
//! * Integer `gen_range` uses an unbiased widening-multiply rejection
//!   method (Lemire); values are deterministic but not bit-identical to
//!   upstream's `Uniform`, so experiment artifacts produced under
//!   upstream rand differ numerically from reruns under this
//!   implementation. `scripts/run_all.sh` regenerates every
//!   `results/*.json` deterministically (see DESIGN.md, "Determinism
//!   guarantees").

#![warn(missing_docs)]

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// The next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform random value in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on an empty range, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // Match upstream's Bernoulli: compare against a 64-bit scaled
        // integer threshold so p = 1.0 is always true.
        if p >= 1.0 {
            return true;
        }
        let threshold = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < threshold
    }

    /// A random value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly as
    /// `rand_core` 0.6 does (4 bytes of seed per SplitMix64 output,
    /// little-endian).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi]` (inclusive both ends).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can drive [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Unbiased uniform integer in `[0, range)` via widening-multiply
/// rejection (Lemire's method); `range == 0` means the full 64-bit span.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    if range == 0 {
        return rng.next_u64();
    }
    let threshold = range.wrapping_neg() % range;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(range);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $unsigned:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Width of [lo, hi] as an unsigned value; wraps to 0 for
                // the full domain, which uniform_u64 treats as 2^64.
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned).wrapping_add(1);
                let v = uniform_u64(rng, u64::from(span as u64) * ((span != 0) as u64));
                lo.wrapping_add(v as $t)
            }
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned);
                let v = uniform_u64(rng, span as u64);
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5..5usize);
    }
}
