//! Offline vendored `rand_chacha`: a [`ChaCha8Rng`] built on the real
//! ChaCha stream cipher with 8 double-rounds, implementing the local
//! mini-`rand` traits ([`rand::RngCore`], [`rand::SeedableRng`]).
//!
//! The keystream is the standard ChaCha block function (as in RFC 8439,
//! with a 64-bit block counter and 64-bit stream id, like upstream
//! `rand_chacha`), so the generator has the statistical quality the
//! experiments assume. `u64` output composes two `u32` draws
//! low-word-first, matching `rand_core`'s `next_u64_via_u32` helper.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const DOUBLE_ROUNDS: usize = 4; // ChaCha8 = 8 rounds = 4 double-rounds.

/// A deterministic ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as 8 little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// 64-bit stream id (words 14–15); always 0 here, as in upstream's
    /// `seed_from_u64` construction.
    stream: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[0..4].copy_from_slice(&CONSTANTS);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = self.stream as u32;
        x[15] = (self.stream >> 32) as u32;
        let input = x;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(input) {
            *o = o.wrapping_add(i);
        }
        self.block = x;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(va, (0..16).map(|_| c.next_u64()).collect::<Vec<u64>>());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let _ = a.next_u32(); // mid-block
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha_block_matches_reference_structure() {
        // The all-zero key/counter block of ChaCha8 must differ from the
        // input constants (sanity that rounds actually ran) and be stable.
        let mut r = ChaCha8Rng::from_seed([0u8; 32]);
        let first = r.next_u32();
        assert_ne!(first, CONSTANTS[0]);
        let mut r2 = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(first, r2.next_u32());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
