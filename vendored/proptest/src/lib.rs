//! Offline vendored mini-`proptest`: the subset of the proptest API this
//! workspace's property tests use, with deterministic ChaCha8-driven
//! sampling and **no shrinking** (a failing case prints its inputs via
//! the normal assert message instead).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header;
//! * range strategies (`0..4u8`, `-2.0f32..2.0`, …), tuple strategies,
//!   [`Just`], [`Strategy::prop_map`], [`collection::vec`];
//! * simple regex-class string strategies like `"[a-z]{1,8}"`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (plain asserts here).
//!
//! Each `proptest!` test derives its RNG seed from the test name, so
//! runs are reproducible and independent of declaration order.

#![warn(missing_docs)]

use rand::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub mod collection;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Test-case generation settings.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies (a seeded ChaCha8 stream).
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Deterministic RNG derived from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name picks a stable, per-test stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// A generator of values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

/// String strategy from a miniature regex subset: a sequence of literal
/// characters or `[a-z0-9_]`-style classes, each optionally quantified
/// with `{n}`, `{m,n}`, `?`, `+`, or `*` (`+`/`*` capped at 8 repeats).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if lo == hi {
                *lo
            } else {
                rng.gen_range(*lo..=*hi)
            };
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Parse into (choices, min-reps, max-reps) atoms; panics on unsupported
/// syntax so misuse fails loudly rather than generating garbage.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        assert!(a <= b, "bad class range in {pat:?}");
                        set.extend((a..=b).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                assert!(
                    !"(){}|.*+?^$".contains(c),
                    "unsupported regex syntax {c:?} in pattern {pat:?}"
                );
                i += 1;
                vec![c]
            }
        };
        assert!(!choices.is_empty(), "empty class in pattern {pat:?}");
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        atoms.push((choices, lo, hi));
    }
    atoms
}

/// Assert inside a property test (no shrinking: identical to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...)` body runs
/// for `cases` generated inputs (default 64).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            // Strategies are built once; per-case values are drawn from
            // the shared tuple strategy so expensive setup isn't repeated.
            let __strategy = ( $($strat,)* );
            for __case in 0..__cfg.cases {
                let ( $($pat,)* ) = $crate::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_strategy_matches_class_and_reps() {
        let mut rng = TestRng::from_name("pattern");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            x in 0u32..10,
            y in (0.0f64..1.0).prop_map(|v| v * 2.0),
        ) {
            prop_assert!(x < 10);
            prop_assert!((0.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_obeys_len(v in crate::collection::vec(0u8..255, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }
    }
}
