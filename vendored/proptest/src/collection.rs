//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;

/// Length specification for [`vec`]: an exact `usize` or a half-open
/// `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s with elements from `element` and length from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
