//! Offline vendored mini-`serde`: the [`Serialize`] trait, a JSON-shaped
//! [`Value`] tree, and impls for the std types this workspace serializes.
//!
//! Unlike real serde there is no `Serializer` abstraction: `Serialize`
//! produces a [`Value`] directly and the local `serde_json` crate renders
//! it. The `#[derive(Serialize)]` macro (re-exported from the vendored
//! `serde_derive`) emits field-name/value objects exactly like upstream's
//! default struct representation.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::Serialize;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64` seeds round-trip).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (like serde_json with
    /// `preserve_order`), keeping artifact diffs stable.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys (upstream HashMap iteration
        // order is arbitrary; sorted keys keep artifacts diffable).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}

impl_ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u64.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(String::from("a"), vec![1.0f64])].to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::Array(vec![
                Value::Str("a".into()),
                Value::Array(vec![Value::Float(1.0)]),
            ])])
        );
    }

    #[test]
    fn derive_on_struct_emits_ordered_object() {
        #[derive(Serialize)]
        struct S {
            first: u32,
            second: String,
        }
        let v = S {
            first: 1,
            second: "two".into(),
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("first".into(), Value::UInt(1)),
                ("second".into(), Value::Str("two".into())),
            ])
        );
    }

    #[test]
    fn derive_on_generic_struct() {
        #[derive(Serialize)]
        struct Wrap<T: Serialize> {
            inner: T,
        }
        let v = Wrap { inner: vec![1u8] }.to_value();
        assert_eq!(
            v,
            Value::Object(vec![("inner".into(), Value::Array(vec![Value::UInt(1)]))])
        );
    }

    #[test]
    fn derive_on_unit_enum() {
        #[derive(Serialize)]
        enum E {
            Alpha,
            Beta,
        }
        assert_eq!(E::Alpha.to_value(), Value::Str("Alpha".into()));
        assert_eq!(E::Beta.to_value(), Value::Str("Beta".into()));
    }
}
