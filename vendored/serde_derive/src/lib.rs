//! Offline vendored `#[derive(Serialize)]` for the local mini-`serde`.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are equally unavailable offline). Supports the shapes this
//! workspace derives on:
//!
//! * structs with named fields (optionally generic, e.g.
//!   `struct Artifact<T: Serialize> { ... }`);
//! * enums with unit variants (serialized as their name, as upstream
//!   serde does).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (see crate docs for supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("derive(Serialize): expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, found {other}"),
    };
    i += 1;

    // Optional generics: capture everything between the outer < >.
    let mut generics = String::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        let start = i;
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        generics = tokens[start..i]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
    }
    let param_names = generic_param_names(&generics);
    let ty = if param_names.is_empty() {
        name.clone()
    } else {
        format!("{name}<{}>", param_names.join(", "))
    };

    // Skip any where-clause, find the body brace group.
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("derive(Serialize): no body on {name}"));

    let to_value = if kind == "struct" {
        let fields = named_fields(body);
        let entries: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}))"
                )
            })
            .collect();
        format!(
            "::serde::Value::Object(::std::vec![{}])",
            entries.join(", ")
        )
    } else {
        let variants = unit_variants(body, &name);
        let arms: Vec<String> = variants
            .iter()
            .map(|v| {
                format!(
                    "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                )
            })
            .collect();
        format!("match self {{ {} }}", arms.join(", "))
    };

    format!(
        "impl {generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {to_value} }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl parses")
}

/// Skip leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // '#' + [group]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Names of named struct fields: `attr* vis? name : type ,`.
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        // Skip to the top-level comma ending this field's type.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Variant names of a unit-only enum; panics on payload variants.
fn unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "derive(Serialize) on {enum_name}: payload variants are not supported \
                 by the vendored mini-serde"
            ),
            Some(other) => panic!("derive(Serialize) on {enum_name}: unexpected {other}"),
        }
    }
    variants
}

/// Extract the bare parameter names from a captured generics list,
/// e.g. `< T : Serialize , U >` → `["T", "U"]`.
fn generic_param_names(generics: &str) -> Vec<String> {
    if generics.is_empty() {
        return Vec::new();
    }
    let inner = generics
        .trim()
        .trim_start_matches('<')
        .trim_end_matches('>');
    let mut names = Vec::new();
    let mut depth = 0i32;
    for part in split_top_level_commas(inner, &mut depth) {
        let first = part
            .split(|c: char| c == ':' || c.is_whitespace())
            .find(|s| !s.is_empty());
        if let Some(n) = first {
            names.push(n.to_string());
        }
    }
    names
}

fn split_top_level_commas(s: &str, depth: &mut i32) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => {
                *depth += 1;
                cur.push(c);
            }
            '>' | ')' | ']' => {
                *depth -= 1;
                cur.push(c);
            }
            ',' if *depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}
