//! Differential suite for the [`CostBackend`] seam (proptest).
//!
//! Two families of guarantees:
//!
//! 1. **Trait ≡ direct**: every cost answered through the object-safe
//!    seam (`query_cost`, `workload_cost`, `batch_workload_cost`,
//!    `delta_workload_cost`, the incremental sessions) must be
//!    **bit-identical** (`f64::to_bits`) to calling the underlying
//!    [`Database`] directly — on proptest-generated TPC-H workloads and
//!    on every default template of both benchmarks. Dynamic dispatch may
//!    cost cycles, never ulps.
//!
//! 2. **Record ≡ replay**: a [`RecordingBackend`] tape captured at
//!    `--jobs 1` must equal (PartialEq *and* byte-identical JSONL) the
//!    tape captured at `--jobs N`, and a [`ReplayBackend`] built from
//!    that tape must reproduce the full stress-test grid bit-for-bit
//!    with no simulator behind it.

use pipa::cost::{CostBackend, RecordingBackend, ReplayBackend, SimBackend, Tape};
use pipa::core::experiment::{build_db, run_grid, CellConfig, GridSpec, InjectorKind};
use pipa::core::harness::StressOutcome;
use pipa::core::GridCell;
use pipa::ia::{AdvisorKind, AutoAdminGreedy, IndexAdvisor, SpeedPreset, TrajectoryMode};
use pipa::sim::{
    Aggregate, ColumnId, ConfigDelta, Database, Index, IndexConfig, Predicate, QueryBuilder,
    Workload,
};
use pipa::workload::Benchmark;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A scalar-reference database: matrix off, what-if cache off, so every
/// direct call walks the full analytical model from scratch.
fn scalar_reference(bench: Benchmark) -> Database {
    let db = bench.database(1.0, None);
    db.set_whatif_matrix_enabled(false);
    db.set_whatif_cache_enabled(false);
    db
}

fn mk_pred(col: ColumnId, kind: u8, a: f64, b: f64) -> Predicate {
    match kind {
        0 => Predicate::eq(col, a),
        1 => Predicate::le(col, a),
        2 => Predicate::ge(col, a),
        _ => Predicate::between(col, a.min(b), a.max(b)),
    }
}

/// Single-table query snapped onto the anchor column's table.
fn build_query(db: &Database, anchor: u32, preds: &[(u32, u8, f64, f64)]) -> pipa::sim::Query {
    let schema = db.schema();
    let table = schema.column(ColumnId(anchor % schema.num_columns() as u32)).table;
    let cols: Vec<ColumnId> = (0..schema.num_columns() as u32)
        .map(ColumnId)
        .filter(|&c| schema.column(c).table == table)
        .collect();
    let mut b = QueryBuilder::new();
    for &(c, kind, x, y) in preds {
        let col = cols[c as usize % cols.len()];
        b = b.filter(schema, mk_pred(col, kind, x, y));
    }
    b.aggregate(Aggregate::CountStar).build(schema).unwrap()
}

fn assert_bits(label: &str, direct: f64, via_trait: f64) {
    assert_eq!(
        direct.to_bits(),
        via_trait.to_bits(),
        "{label}: direct {direct} != trait {via_trait}"
    );
}

// ---- trait ≡ direct -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scalar and workload costs through `&dyn CostBackend` are
    /// bit-identical to the `Database` methods they route to.
    #[test]
    fn trait_scalar_and_workload_costs_match_direct_bitwise(
        anchor in 0u32..61,
        preds in proptest::collection::vec((0u32..61, 0u8..4, 0.0f64..1.0, 0.0f64..1.0), 1..3),
        idx_cols in proptest::collection::vec(0u32..61, 1..4),
        freq in 1u32..5,
    ) {
        let reference = scalar_reference(Benchmark::TpcH);
        let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
        let dyn_cost: &dyn CostBackend = &cost;
        let q = build_query(&reference, anchor, &preds);
        let w = Workload::from_queries([(q.clone(), freq)]);
        let cfg: IndexConfig = idx_cols
            .iter()
            .map(|&c| Index::single(ColumnId(c % 61)))
            .collect();

        assert_bits(
            "query_cost",
            reference.estimated_query_cost(&q, &cfg),
            dyn_cost.query_cost(&q, &cfg).unwrap(),
        );
        assert_bits(
            "workload_cost",
            reference.estimated_workload_cost(&w, &cfg),
            dyn_cost.workload_cost(&w, &cfg).unwrap(),
        );
    }

    /// Batch, delta and session evaluation through the trait are
    /// bit-identical to a scalar full recompute.
    #[test]
    fn trait_batch_delta_and_sessions_match_direct_bitwise(
        anchor in 0u32..61,
        preds in proptest::collection::vec((0u32..61, 0u8..4, 0.0f64..1.0, 0.0f64..1.0), 1..3),
        adds in proptest::collection::vec(0u32..61, 1..4),
    ) {
        let reference = scalar_reference(Benchmark::TpcH);
        let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
        let dyn_cost: &dyn CostBackend = &cost;
        let q = build_query(&reference, anchor, &preds);
        let w = Workload::from_queries([(q, 2)]);

        let configs: Vec<IndexConfig> = adds
            .iter()
            .map(|&c| IndexConfig::from_indexes([Index::single(ColumnId(c % 61))]))
            .collect();
        let batch = dyn_cost.batch_workload_cost(&w, &configs).unwrap();
        for (i, cfg) in configs.iter().enumerate() {
            assert_bits("batch", reference.estimated_workload_cost(&w, cfg), batch[i]);
        }

        let mut cfg = IndexConfig::empty();
        let mut session = dyn_cost.session_begin(&w).unwrap();
        assert_bits(
            "session begin",
            reference.estimated_workload_cost(&w, &cfg),
            dyn_cost.session_total(&w, &session).unwrap(),
        );
        for &c in &adds {
            let idx = Index::single(ColumnId(c % 61));
            let delta = ConfigDelta::Add(idx.clone());
            let after = delta.apply(&cfg);
            let scalar = reference.estimated_workload_cost(&w, &after);
            assert_bits("delta", scalar, dyn_cost.delta_workload_cost(&w, &cfg, &delta).unwrap());
            if !cfg.indexes().contains(&idx) {
                assert_bits(
                    "session preview",
                    scalar,
                    dyn_cost.session_preview_add(&w, &session, &after, &idx).unwrap(),
                );
                assert_bits(
                    "session add",
                    scalar,
                    dyn_cost.session_add(&w, &mut session, &after, &idx).unwrap(),
                );
            }
            cfg = after;
        }
    }
}

/// Every default template of both benchmarks: the trait answers the same
/// bits as the direct estimated path, estimated *and* executed.
#[test]
fn all_templates_of_both_benchmarks_match_direct_through_the_trait() {
    for bench in [Benchmark::TpcH, Benchmark::TpcDs] {
        let cost = SimBackend::new(bench.database(1.0, None));
        let dyn_cost: &dyn CostBackend = &cost;
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        let mut w = Workload::new();
        for t in bench.default_templates() {
            w.push(t.instantiate(cost.database().schema(), &mut rng).unwrap(), 2);
        }
        let configs: Vec<IndexConfig> = w
            .candidate_columns()
            .into_iter()
            .take(8)
            .map(|c| IndexConfig::from_indexes([Index::single(c)]))
            .collect();
        for cfg in &configs {
            assert_bits(
                "template workload",
                cost.database().estimated_workload_cost(&w, cfg),
                dyn_cost.workload_cost(&w, cfg).unwrap(),
            );
            for wq in w.iter() {
                assert_bits(
                    "template query",
                    cost.database().estimated_query_cost(&wq.query, cfg),
                    dyn_cost.query_cost(&wq.query, cfg).unwrap(),
                );
                assert_bits(
                    "template executed",
                    cost.database().actual_query_cost(&wq.query, cfg).unwrap(),
                    dyn_cost.executed_query_cost(&wq.query, cfg).unwrap(),
                );
            }
        }
    }
}

// ---- record ≡ replay ------------------------------------------------------

fn replay_grid_cfg() -> (CellConfig, GridSpec) {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg.injection_size = 6;
    let spec = GridSpec {
        advisors: vec![AdvisorKind::DbaBandit(TrajectoryMode::Best).into()],
        injectors: vec![InjectorKind::Pipa, InjectorKind::Fsm],
        runs: 1,
        root_seed: 77,
    };
    (cfg, spec)
}

fn record_grid(jobs: usize) -> (Tape, Vec<(GridCell, StressOutcome)>) {
    let (cfg, spec) = replay_grid_cfg();
    let sim = build_db(&cfg);
    let rec = RecordingBackend::new(&sim);
    let out = run_grid(&rec, &cfg, &spec, jobs).expect("recorded grid");
    (rec.tape(), out)
}

fn assert_outcomes_bit_identical(
    label: &str,
    a: &[(GridCell, StressOutcome)],
    b: &[(GridCell, StressOutcome)],
) {
    assert_eq!(a.len(), b.len(), "{label}: cell count");
    for ((ca, oa), (cb, ob)) in a.iter().zip(b) {
        assert_eq!(ca.seed.get(), cb.seed.get(), "{label}: cell order");
        assert_eq!(oa.advisor, ob.advisor, "{label}");
        assert_eq!(oa.injector, ob.injector, "{label}");
        assert_eq!(
            oa.baseline_cost.to_bits(),
            ob.baseline_cost.to_bits(),
            "{label}: baseline_cost {} vs {}",
            oa.baseline_cost,
            ob.baseline_cost
        );
        assert_eq!(
            oa.poisoned_cost.to_bits(),
            ob.poisoned_cost.to_bits(),
            "{label}: poisoned_cost {} vs {}",
            oa.poisoned_cost,
            ob.poisoned_cost
        );
        assert_eq!(oa.ad.to_bits(), ob.ad.to_bits(), "{label}: ad");
        assert_eq!(oa.toxic, ob.toxic, "{label}: toxicity verdict");
        assert_eq!(oa.baseline_indexes, ob.baseline_indexes, "{label}");
        assert_eq!(oa.poisoned_indexes, ob.poisoned_indexes, "{label}");
    }
}

/// The tape is independent of worker parallelism: recording the same
/// grid at `--jobs 1` and `--jobs 4` produces equal tapes, byte-identical
/// JSONL, and bit-identical outcomes.
#[test]
fn recorded_tapes_agree_across_jobs_1_and_n() {
    let (tape_seq, out_seq) = record_grid(1);
    let (tape_par, out_par) = record_grid(4);
    assert!(!tape_seq.is_empty(), "grid must record cost traffic");
    assert_eq!(tape_seq, tape_par, "tapes diverge across --jobs");
    assert_eq!(
        tape_seq.to_jsonl(),
        tape_par.to_jsonl(),
        "tape JSONL must be byte-identical across --jobs"
    );
    assert_outcomes_bit_identical("jobs 1 vs 4", &out_seq, &out_par);
}

/// A replayed grid — the same spec run against a [`ReplayBackend`] with
/// no simulator behind it — reproduces every outcome bit-for-bit, and
/// the tape round-trips through its JSONL wire format first.
#[test]
fn replayed_grid_is_bit_identical_to_the_recorded_run() {
    let (cfg, spec) = replay_grid_cfg();
    let sim = build_db(&cfg);
    let rec = RecordingBackend::new(&sim);
    let recorded = run_grid(&rec, &cfg, &spec, 2).expect("recorded grid");

    // Serialize → parse: the replay runs from the wire format, as a
    // CI replay-smoke run would.
    let tape = Tape::from_jsonl(&rec.tape().to_jsonl()).expect("tape round-trip");
    let replay = ReplayBackend::new(sim.catalog(), tape);
    let replayed = run_grid(&replay, &cfg, &spec, 2).expect("replayed grid");
    assert_outcomes_bit_identical("record vs replay", &recorded, &replayed);
}

/// Greedy recommendation through a replay tape: same config, same costs,
/// answered without the simulator.
#[test]
fn greedy_recommendation_replays_from_tape() {
    let sim = SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let g = pipa::workload::generator::WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = g.normal(&mut ChaCha8Rng::seed_from_u64(9)).unwrap();

    let rec = RecordingBackend::new(&sim);
    let live_cfg = AutoAdminGreedy::new(4).recommend(&rec, &w).unwrap();
    let live_cost = rec.workload_cost(&w, &live_cfg).unwrap();

    let replay = ReplayBackend::new(sim.catalog(), rec.tape());
    let replay_cfg = AutoAdminGreedy::new(4).recommend(&replay, &w).unwrap();
    assert_eq!(live_cfg, replay_cfg, "replayed greedy picked other indexes");
    assert_bits(
        "replayed workload cost",
        live_cost,
        replay.workload_cost(&w, &live_cfg).unwrap(),
    );

    // A config the tape never saw is a hard miss, not a fabricated cost —
    // and the error names the offending query/config in human terms, not
    // just fingerprints.
    let unseen: IndexConfig = cost_unseen_config(&sim);
    let miss = replay.workload_cost(&w, &unseen).unwrap_err();
    assert!(matches!(miss, pipa::cost::CostError::ReplayMiss { .. }));
    let msg = miss.to_string();
    assert!(msg.contains("select"), "miss must render the SQL: {msg}");
    let first_index = unseen.indexes()[0].name(sim.catalog().schema);
    assert!(
        msg.contains(&first_index),
        "miss must name the config's indexes ({first_index}): {msg}"
    );
    assert!(
        msg.contains("tape holds"),
        "miss must report the searched tape size: {msg}"
    );
}

/// A config of every indexable column — far larger than anything the
/// budget-4 greedy run ever evaluated.
fn cost_unseen_config(sim: &SimBackend) -> IndexConfig {
    sim.database()
        .schema()
        .indexable_columns()
        .into_iter()
        .map(Index::single)
        .collect()
}
