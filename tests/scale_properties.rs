//! Scale-hardening properties: bounded caches are invisible to cost
//! bits, traffic generation is a pure function of its seed, and the
//! whole traffic layer is `--jobs`-independent.
//!
//! These pin the contracts the `scale` bench relies on:
//!
//! * a capacity-bounded what-if cache (ANY capacity, including the
//!   degenerate 0 and 1) returns f64-bit-identical costs to the
//!   unbounded cache — eviction is presence-only;
//! * `TrafficModel` window pools, samples, and aggregated workloads are
//!   byte-identical across rebuilds from the same seed, and differ
//!   across seeds;
//! * sampling traffic windows under `par_map` with `--jobs 1/4/8`
//!   serializes byte-identically.

use pipa::core::runner::par_map;
use pipa::core::traffic::sampled_window_workload;
use pipa::cost::SimBackend;
use pipa::sim::IndexConfig;
use pipa::workload::{Arrivals, Benchmark, Diurnal, Popularity, TrafficModel, WorkloadGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generator() -> WorkloadGenerator {
    WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    )
}

/// Cost every pool query under `capacity`, returning the raw bit
/// patterns (order-sensitive; two passes so the second pass replays
/// hits against survivors).
fn costs_at_capacity(capacity: usize, seed: u64) -> Vec<u64> {
    let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let db = cost.database();
    db.set_whatif_matrix_enabled(false);
    db.set_whatif_cache_capacity(capacity);
    let model = TrafficModel::zipf(1.2, 4);
    let traffic = model
        .window_traffic(&generator(), 0, seed)
        .expect("pool instantiates");
    let cfg = IndexConfig::default();
    let mut bits = Vec::new();
    for _pass in 0..2 {
        for i in 0..traffic.distinct_queries() {
            bits.push(db.estimated_query_cost(traffic.query(i), &cfg).to_bits());
        }
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ANY capacity — 0 (store nothing), 1 (single survivor), small,
    /// larger than the working set — yields the same cost bits as the
    /// unbounded cache on the same query stream.
    #[test]
    fn any_capacity_is_bit_identical_to_unbounded(
        cap_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        // Degenerate capacities (0: store nothing; 1: lone survivor)
        // are in the table, not left to sampling luck.
        let capacity = [0usize, 1, 2, 7, 33, 80][cap_idx];
        let bounded = costs_at_capacity(capacity, seed);
        let unbounded = costs_at_capacity(usize::MAX, seed);
        prop_assert_eq!(bounded, unbounded);
    }

    /// The traffic layer is a pure function of `(model, window, seed)`:
    /// the sampled, frequency-aggregated workload serializes
    /// byte-identically across rebuilds and differs across seeds.
    #[test]
    fn window_sampling_is_seed_stable(seed in 0u64..10_000, window in 0u64..48) {
        let gen = generator();
        let model = TrafficModel::zipf(1.1, 3);
        let (a, load_a) = sampled_window_workload(&model, &gen, window, 200, seed).unwrap();
        let (b, load_b) = sampled_window_workload(&model, &gen, window, 200, seed).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(load_a, load_b);
        let (c, _) = sampled_window_workload(&model, &gen, window, 200, seed ^ 0xdead_beef).unwrap();
        prop_assert_ne!(&a, &c);
    }
}

/// Zipf/diurnal/bursty generators produce byte-identical pools across
/// repeated construction — the contract the bench's unbounded replay
/// leg depends on.
#[test]
fn traffic_pools_rebuild_byte_identically() {
    let gen = generator();
    let mut model = TrafficModel::zipf(1.3, 5);
    model.diurnal = Diurnal::business();
    model.arrivals = Arrivals::Bursty {
        tenants: 4,
        burst_every: 6,
        burst_len: 2,
        burst_mult: 2.5,
    };
    for window in [0u64, 7, 23] {
        let a = model.window_traffic(&gen, window, 42).unwrap();
        let b = model.window_traffic(&gen, window, 42).unwrap();
        assert_eq!(a.distinct_queries(), b.distinct_queries());
        for i in 0..a.distinct_queries() {
            assert_eq!(a.query(i), b.query(i), "pool slot {i} diverged");
        }
        // And the draw sequence on top of the pool is seed-stable too.
        let mut ra = ChaCha8Rng::seed_from_u64(9);
        let mut rb = ChaCha8Rng::seed_from_u64(9);
        let da: Vec<usize> = (0..500).map(|_| a.sample(&mut ra)).collect();
        let db: Vec<usize> = (0..500).map(|_| b.sample(&mut rb)).collect();
        assert_eq!(da, db);
    }
}

/// Sampling a day of traffic windows through `par_map` is byte-identical
/// for `--jobs` 1, 4, and 8: parallelism must leave no trace.
#[test]
fn traffic_windows_are_jobs_independent() {
    let run = |jobs: usize| -> Vec<String> {
        let gen = generator();
        let mut model = TrafficModel::zipf(1.1, 4);
        model.diurnal = Diurnal::business();
        par_map(jobs, (0u64..12).collect(), |_, w| {
            let (workload, load) = sampled_window_workload(&model, &gen, w, 300, 7).unwrap();
            let queries: Vec<String> = workload
                .iter()
                .map(|wq| format!("{}x{:?}", wq.frequency, wq.query))
                .collect();
            format!("w{w} load{load} {}", queries.join("|"))
        })
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "jobs=4 diverged from jobs=1");
    assert_eq!(serial, run(8), "jobs=8 diverged from jobs=1");
}

/// The Zipf head concentrates draws: under a bounded cache the hot
/// entries stay resident, which is the entire premise of the bench's
/// hit-rate comparison. Pin the direction at unit scale.
#[test]
fn zipf_beats_uniform_hit_rate_at_equal_capacity() {
    let hit_rate = |pop: Popularity| -> f64 {
        let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
        let db = cost.database();
        db.set_whatif_matrix_enabled(false);
        db.set_whatif_cache_capacity(32);
        let mut model = TrafficModel::uniform(8);
        model.popularity = pop;
        let traffic = model.window_traffic(&generator(), 0, 3).unwrap();
        let cfg = IndexConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..4000 {
            db.estimated_query_cost(traffic.query(traffic.sample(&mut rng)), &cfg);
        }
        db.whatif_cache_stats().hit_rate()
    };
    let zipf = hit_rate(Popularity::Zipf { exponent: 1.2 });
    let uniform = hit_rate(Popularity::Uniform);
    assert!(
        zipf > uniform,
        "skew must raise the bounded hit rate: zipf {zipf:.3} vs uniform {uniform:.3}"
    );
}
