//! Cross-crate integration tests: the full stress-test pipeline and the
//! paper's definitional invariants.

use pipa::core::experiment::{build_db, normal_workload, run_cell, CellConfig, InjectorKind};
use pipa::core::harness::StressTest;
use pipa::core::injectors::TpInjector;
use pipa::core::metrics::absolute_degradation;
use pipa::core::CellSeed;
use pipa::ia::{
    build_clear_box, AdvisorKind, AutoAdminGreedy, IndexAdvisor, SpeedPreset, TrajectoryMode,
};
use pipa::workload::Benchmark;

fn test_cfg() -> CellConfig {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 3;
    cfg.injection_size = 8;
    cfg
}

#[test]
fn every_advisor_survives_the_full_pipeline() {
    let cfg = test_cfg();
    let db = build_db(&cfg);
    let normal = normal_workload(&cfg, 11);
    for kind in AdvisorKind::all() {
        let out = run_cell(&db, &normal, kind, InjectorKind::Pipa, &cfg, CellSeed::raw(11))
            .expect("stress test against the simulator backend");
        assert!(out.baseline_cost > 0.0, "{}", kind.label());
        assert!(out.poisoned_cost > 0.0, "{}", kind.label());
        assert!(!out.baseline_indexes.is_empty(), "{}", kind.label());
        assert!(out.ad.is_finite(), "{}", kind.label());
        // Definition 2.3 consistency.
        let expect = absolute_degradation(out.poisoned_cost, out.baseline_cost);
        assert!((out.ad - expect).abs() < 1e-12);
    }
}

#[test]
fn heuristic_advisors_have_zero_ad_by_construction() {
    // Paper §2.1: "For heuristic IAs, the AD score is always zero."
    let cfg = test_cfg();
    let db = build_db(&cfg);
    let normal = normal_workload(&cfg, 13);

    struct HeuristicClearBox(AutoAdminGreedy);
    impl IndexAdvisor for HeuristicClearBox {
        fn name(&self) -> String {
            self.0.name()
        }
        fn train(
            &mut self,
            cost: &dyn pipa::cost::CostBackend,
            w: &pipa::sim::Workload,
        ) -> pipa::cost::CostResult<()> {
            self.0.train(cost, w)
        }
        fn retrain(
            &mut self,
            cost: &dyn pipa::cost::CostBackend,
            w: &pipa::sim::Workload,
        ) -> pipa::cost::CostResult<()> {
            self.0.retrain(cost, w)
        }
        fn recommend(
            &mut self,
            cost: &dyn pipa::cost::CostBackend,
            w: &pipa::sim::Workload,
        ) -> pipa::cost::CostResult<pipa::sim::IndexConfig> {
            self.0.recommend(cost, w)
        }
        fn budget(&self) -> usize {
            self.0.budget()
        }
        fn is_trial_based(&self) -> bool {
            false
        }
    }
    impl pipa::ia::ClearBoxAdvisor for HeuristicClearBox {
        fn column_preferences(
            &self,
            _cost: &dyn pipa::cost::CostBackend,
        ) -> Vec<(pipa::sim::ColumnId, f64)> {
            Vec::new()
        }
    }

    let mut advisor = HeuristicClearBox(AutoAdminGreedy::new(4));
    let mut injector = TpInjector::new(Benchmark::TpcH.default_templates());
    let out = StressTest::new(&db, &normal)
        .injection_size(8)
        .actual_cost(false)
        .seed(CellSeed::raw(13))
        .run(&mut advisor, &mut injector)
        .expect("stress test against the simulator backend");
    assert!(
        out.ad.abs() < 1e-12,
        "heuristic AD must be exactly zero, got {}",
        out.ad
    );
    assert!(!out.toxic);
}

#[test]
fn injection_workloads_are_extraneous() {
    // Definition: Ŵ ∩ W = ∅ for every injector.
    let cfg = test_cfg();
    let db = build_db(&cfg);
    let normal = normal_workload(&cfg, 17);
    let mut advisor = build_clear_box(
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        SpeedPreset::Test,
        17,
    );
    advisor.train(&db, &normal).expect("train");
    for kind in InjectorKind::all() {
        let mut injector = pipa::core::experiment::make_injector(kind, &cfg, CellSeed::raw(17));
        let w = injector
            .build(advisor.as_mut(), &db, 8, 17)
            .expect("injection build");
        assert!(
            w.is_disjoint_from(&normal),
            "{} produced overlapping queries",
            kind.label()
        );
        assert!(!w.is_empty(), "{} produced no queries", kind.label());
    }
}

#[test]
fn stress_outcome_serializes_to_json() {
    let cfg = test_cfg();
    let db = build_db(&cfg);
    let normal = normal_workload(&cfg, 19);
    let out = run_cell(
        &db,
        &normal,
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        InjectorKind::Fsm,
        &cfg,
        CellSeed::raw(19),
    )
    .expect("stress test against the simulator backend");
    let json = serde_json::to_string(&out).expect("serializable");
    assert!(json.contains("\"advisor\""));
    assert!(json.contains("\"ad\""));
}

#[test]
fn tpcds_pipeline_works_too() {
    let mut cfg = CellConfig::quick(Benchmark::TpcDs);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg.injection_size = 6;
    let db = build_db(&cfg);
    assert_eq!(db.database().schema().num_columns(), 425);
    let normal = normal_workload(&cfg, 23);
    assert_eq!(normal.len(), 90);
    let out = run_cell(
        &db,
        &normal,
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        InjectorKind::Pipa,
        &cfg,
        CellSeed::raw(23),
    )
    .expect("stress test against the simulator backend");
    assert!(out.baseline_cost > 0.0);
    assert!(out.ad.is_finite());
}

#[test]
fn tpcds_materializes_and_executes() {
    // The executor path over the 24-table schema (row cap keeps this a
    // smoke test).
    let db = Benchmark::TpcDs.database(1.0, Some((5, 20_000)));
    assert!(db.has_data());
    let g = pipa::workload::generator::WorkloadGenerator::new(
        Benchmark::TpcDs.schema(),
        Benchmark::TpcDs.default_templates(),
    );
    use rand::SeedableRng;
    let w = g
        .normal(&mut rand_chacha::ChaCha8Rng::seed_from_u64(5))
        .unwrap();
    // Execute a handful of queries for real.
    let subset = pipa::sim::Workload::from_queries(
        w.entries().iter().take(6).map(|e| (e.query.clone(), 1)),
    );
    let cost = db
        .actual_workload_cost(&subset, &pipa::sim::IndexConfig::empty())
        .unwrap();
    assert!(cost > 0.0);
    // An index on a fact date key should not hurt.
    let date_sk = db.schema().column_id("ss_sold_date_sk").unwrap();
    let cfg = pipa::sim::IndexConfig::from_indexes([pipa::sim::Index::single(date_sk)]);
    let with = db.actual_workload_cost(&subset, &cfg).unwrap();
    assert!(with <= cost * 1.05, "with={with} base={cost}");
}

#[test]
fn actual_cost_measurement_path_works() {
    // Materialized database: final costs come from the executor.
    let mut cfg = test_cfg();
    cfg.materialize = Some((7, 30_000));
    let db = build_db(&cfg);
    assert!(db.database().has_data());
    let normal = normal_workload(&cfg, 29);
    let out = run_cell(
        &db,
        &normal,
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        InjectorKind::Fsm,
        &cfg,
        CellSeed::raw(29),
    )
    .expect("stress test against the simulator backend");
    assert!(out.baseline_cost > 0.0);
    assert!(out.ad.is_finite());
}
