//! Property tests for `pipa-core`'s defenses (proptest).
//!
//! The streaming arms race leans on two invariants that must hold for
//! *every* tolerance, seed, and injection mix — not just the tuned bench
//! points:
//!
//! * [`CanaryGuard::retrain_guarded`] never leaves a deployed
//!   configuration whose canary cost regresses beyond the tolerance, and
//!   a rollback reinstates the *exact* pre-update `IndexConfig`;
//! * [`ProvenanceFilter::screen`] passes clean workloads through
//!   bit-unchanged (the defense must be free when there is no attack).

use pipa::core::experiment::{build_db, make_injector, normal_workload, CellConfig, InjectorKind};
use pipa::core::{CanaryGuard, CellSeed, ProvenanceFilter};
use pipa::cost::CostBackend;
use pipa::ia::{AdvisorKind, BuildCtx, SpeedPreset, TrajectoryMode};
use pipa::workload::{Benchmark, WorkloadGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cfg() -> CellConfig {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg
}

/// Train an advisor, build a (possibly poisoned) training set, and run
/// one guarded retrain. Returns (outcome, canary, cost backend).
fn guarded_retrain(
    seed: u64,
    injector: InjectorKind,
    injection_size: usize,
    tolerance: f64,
) -> (
    pipa::core::defense::GuardedOutcome,
    pipa::sim::Workload,
    pipa::cost::SimBackend,
) {
    let cfg = cfg();
    let cost = build_db(&cfg);
    let normal = normal_workload(&cfg, seed);
    let mut advisor = AdvisorKind::DbaBandit(TrajectoryMode::Best)
        .build_with(BuildCtx::new(cfg.preset, seed));
    advisor.train(&cost, &normal).expect("training succeeds");
    let mut inj = make_injector(injector, &cfg, CellSeed::raw(seed));
    let injection = inj
        .build(advisor.as_mut(), &cost, injection_size, seed)
        .expect("injection builds");
    let training = normal.union(&injection);
    let outcome = CanaryGuard::new(tolerance)
        .retrain_guarded(advisor.as_mut(), &cost, &training, &normal)
        .expect("guarded retrain succeeds");
    (outcome, normal, cost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The guard's deployment contract: whatever it decides, the canary
    /// cost of the configuration left in force never exceeds the
    /// pre-update cost by more than the tolerance.
    #[test]
    fn canary_guard_never_deploys_beyond_tolerance(
        seed in 0u64..10_000,
        tolerance in 0.0f64..0.25,
        injection_size in 4usize..14,
    ) {
        let (outcome, canary, cost) =
            guarded_retrain(seed, InjectorKind::Pipa, injection_size, tolerance);
        let deployed_cost = cost
            .executed_workload_cost(&canary, &outcome.final_config)
            .expect("canary costs");
        prop_assert!(
            deployed_cost <= outcome.cost_before * (1.0 + tolerance) + 1e-9,
            "deployed canary cost {deployed_cost} breaches {} * (1 + {tolerance}) \
             (rolled_back: {})",
            outcome.cost_before,
            outcome.rolled_back,
        );
        // The decision itself is consistent with the measured costs.
        prop_assert_eq!(
            outcome.rolled_back,
            outcome.cost_after > outcome.cost_before * (1.0 + tolerance),
        );
    }

    /// A rollback reinstates the exact pre-update `IndexConfig` — the
    /// same object the guard measured `cost_before` on, bit for bit.
    /// Tolerance −1.0 forces every update to "regress" (any positive
    /// cost exceeds `cost_before * 0`), so each case exercises the
    /// rollback arm.
    #[test]
    fn rollback_reinstates_the_exact_pre_update_config(
        seed in 0u64..10_000,
        injection_size in 4usize..14,
    ) {
        let (outcome, canary, cost) =
            guarded_retrain(seed, InjectorKind::Tp, injection_size, -1.0);
        prop_assert!(outcome.rolled_back, "tolerance -1.0 must force rollback");
        prop_assert_eq!(&outcome.final_config, &outcome.previous_config);
        // previous_config really is the configuration cost_before was
        // measured on: re-measuring reproduces it bit-exactly.
        let re_measured = cost
            .executed_workload_cost(&canary, &outcome.previous_config)
            .expect("canary costs");
        prop_assert_eq!(re_measured, outcome.cost_before);
    }

    /// Screening a clean workload against its own profile is the
    /// identity: nothing dropped, queries and frequencies bit-unchanged,
    /// for every screening threshold.
    #[test]
    fn provenance_filter_passes_clean_workloads_bit_unchanged(
        seed in 0u64..1_000_000,
        max_novel_fraction in 0.0f64..1.0,
    ) {
        for benchmark in [Benchmark::TpcH, Benchmark::TpcDs] {
            let gen = WorkloadGenerator::new(benchmark.schema(), benchmark.default_templates());
            let clean = gen
                .normal(&mut ChaCha8Rng::seed_from_u64(seed))
                .expect("templates instantiate");
            let filter = ProvenanceFilter { max_novel_fraction };
            let num_columns = benchmark.schema().num_columns();
            let (kept, dropped) = filter.screen(&clean, &clean, num_columns);
            prop_assert_eq!(dropped, 0, "{:?}: clean queries dropped", benchmark);
            prop_assert_eq!(&kept, &clean, "{:?}: workload not bit-unchanged", benchmark);
        }
    }
}

/// Deterministic companion to the proptest cases: at a sane tolerance a
/// PIPA injection that would regress the canary gets rolled back, and
/// the report exposes both configurations.
#[test]
fn guard_outcome_exposes_both_sides_of_the_decision() {
    let (outcome, _, _) = guarded_retrain(51, InjectorKind::Pipa, 10, 0.02);
    if outcome.rolled_back {
        assert_eq!(outcome.final_config, outcome.previous_config);
    } else {
        assert!(outcome.cost_after <= outcome.cost_before * 1.02 + 1e-9);
    }
    assert!(outcome.cost_before > 0.0);
    assert!(outcome.cost_after > 0.0);
}
