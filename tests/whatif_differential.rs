//! Differential suite for the incremental what-if engine (proptest).
//!
//! The benefit matrix, `what_if_batch`, `what_if_delta` and the
//! incremental eval sessions must be **bit-identical** (`f64::to_bits`)
//! to a scalar full recompute through `estimated_workload_cost` — on
//! proptest-generated TPC-H/TPC-DS workloads, under arbitrary
//! index-config edit sequences, and on both cache-cold and cache-warm
//! paths. Any divergence, even in the last ulp, is a bug: advisors make
//! strict `<` comparisons on these numbers, so "close enough" can flip
//! a recommendation.

use pipa::sim::{
    Aggregate, ColumnId, ConfigDelta, Database, Index, IndexConfig, Predicate, Query, QueryBuilder,
    Workload,
};
use pipa::workload::{Benchmark, TemplateSpec};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tpch() -> Database {
    Benchmark::TpcH.database(1.0, None)
}

/// A scalar-reference database: matrix off, what-if cache off. Every
/// call walks the full analytical model from scratch (the "cold scalar
/// recompute" all incremental paths are measured against).
fn scalar_reference(bench: Benchmark) -> Database {
    let db = bench.database(1.0, None);
    db.set_whatif_matrix_enabled(false);
    db.set_whatif_cache_enabled(false);
    db
}

// ---- generators -----------------------------------------------------------

/// Raw spec for one workload query: either a proptest-built single-table
/// query (exercises the Decomposable matrix path) or a benchmark
/// template instantiation (join templates exercise the JoinDecomposable
/// per-step matrix path).
#[derive(Debug, Clone)]
enum QSpec {
    Single {
        anchor: u32,
        preds: Vec<(u32, u8, f64, f64)>,
    },
    Template {
        idx: usize,
        seed: u64,
    },
}

fn arb_qspec(ncols: u32) -> impl Strategy<Value = QSpec> {
    // The vendored mini-proptest has no `prop_oneof!`; encode the 3:1
    // single-table / template choice as a drawn discriminant instead.
    (
        0u8..4,
        0..ncols,
        proptest::collection::vec((0..ncols, 0..4u8, 0.0f64..1.0, 0.0f64..1.0), 1..3),
        0usize..8,
        0u64..1_000,
    )
        .prop_map(|(choice, anchor, preds, idx, seed)| {
            if choice < 3 {
                QSpec::Single { anchor, preds }
            } else {
                QSpec::Template { idx, seed }
            }
        })
}

fn mk_pred(col: ColumnId, kind: u8, a: f64, b: f64) -> Predicate {
    match kind {
        0 => Predicate::eq(col, a),
        1 => Predicate::le(col, a),
        2 => Predicate::ge(col, a),
        _ => Predicate::between(col, a.min(b), a.max(b)),
    }
}

fn build_query(db: &Database, templates: &[TemplateSpec], spec: &QSpec) -> Query {
    let schema = db.schema();
    match spec {
        QSpec::Single { anchor, preds } => {
            // Snap every predicate column onto the anchor's table so the
            // query stays single-table (joins are covered by templates).
            let table = schema.column(ColumnId(*anchor)).table;
            let cols: Vec<ColumnId> = (0..schema.num_columns() as u32)
                .map(ColumnId)
                .filter(|&c| schema.column(c).table == table)
                .collect();
            let mut b = QueryBuilder::new();
            for &(c, kind, x, y) in preds {
                let col = cols[c as usize % cols.len()];
                b = b.filter(schema, mk_pred(col, kind, x, y));
            }
            b.aggregate(Aggregate::CountStar).build(schema).unwrap()
        }
        QSpec::Template { idx, seed } => {
            let t = &templates[idx % templates.len()];
            let mut rng = ChaCha8Rng::seed_from_u64(*seed);
            t.instantiate(schema, &mut rng).unwrap()
        }
    }
}

fn build_workload(db: &Database, templates: &[TemplateSpec], specs: &[(QSpec, u32)]) -> Workload {
    let mut w = Workload::new();
    for (spec, freq) in specs {
        w.push(build_query(db, templates, spec), *freq);
    }
    w
}

/// Index spec: 1–3 column picks, snapped to one table and deduped.
fn build_index(db: &Database, cols: &[u32]) -> Index {
    let schema = db.schema();
    let n = schema.num_columns() as u32;
    let first = ColumnId(cols[0] % n);
    let table = schema.column(first).table;
    let mut snapped: Vec<ColumnId> = Vec::new();
    for &c in cols {
        let mut col = ColumnId(c % n);
        if schema.column(col).table != table {
            col = first;
        }
        if !snapped.contains(&col) {
            snapped.push(col);
        }
    }
    if snapped.len() == 1 {
        Index::single(snapped[0])
    } else {
        Index::multi(schema, snapped).unwrap_or_else(|_| Index::single(first))
    }
}

fn arb_index_cols() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..61, 1..4)
}

fn arb_workload_specs() -> impl Strategy<Value = Vec<(QSpec, u32)>> {
    proptest::collection::vec((arb_qspec(61), 1u32..6), 1..5)
}

fn assert_bits(label: &str, reference: f64, got: f64) {
    assert_eq!(
        reference.to_bits(),
        got.to_bits(),
        "{label}: scalar {reference} != incremental {got}"
    );
}

// ---- properties -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `what_if_batch` / `matrix_workload_cost` ≡ scalar recompute, on
    /// the first (matrix-cold) call and again once every cell is warm.
    #[test]
    fn batch_matches_scalar_bitwise_cold_and_warm(
        specs in arb_workload_specs(),
        cfg_cols in proptest::collection::vec(arb_index_cols(), 1..4),
    ) {
        let scalar = scalar_reference(Benchmark::TpcH);
        let db = tpch();
        let templates = Benchmark::TpcH.default_templates();
        let w = build_workload(&db, &templates, &specs);
        let configs: Vec<IndexConfig> = cfg_cols
            .iter()
            .map(|cols| IndexConfig::from_indexes([build_index(&db, cols)]))
            .collect();

        let reference: Vec<f64> = configs
            .iter()
            .map(|c| scalar.estimated_workload_cost(&w, c))
            .collect();
        let cold = db.what_if_batch(&w, &configs);
        let warm = db.what_if_batch(&w, &configs);
        for (i, r) in reference.iter().enumerate() {
            assert_bits("batch cold", *r, cold[i]);
            assert_bits("batch warm", *r, warm[i]);
        }
    }

    /// `what_if_delta` over an arbitrary add/remove edit sequence ≡
    /// scalar recompute of each edited configuration.
    #[test]
    fn delta_edit_sequences_match_scalar_bitwise(
        specs in arb_workload_specs(),
        edits in proptest::collection::vec(
            ((0u8..2).prop_map(|b| b == 1), arb_index_cols()),
            1..6,
        ),
    ) {
        let scalar = scalar_reference(Benchmark::TpcH);
        let db = tpch();
        let templates = Benchmark::TpcH.default_templates();
        let w = build_workload(&db, &templates, &specs);

        let mut cfg = IndexConfig::empty();
        for (add, cols) in &edits {
            let idx = build_index(&db, cols);
            let delta = if *add {
                ConfigDelta::Add(idx)
            } else {
                ConfigDelta::Remove(idx)
            };
            let after = delta.apply(&cfg);
            let incremental = db.what_if_delta(&w, &cfg, &delta);
            let reference = scalar.estimated_workload_cost(&w, &after);
            assert_bits("delta", reference, incremental);
            cfg = after;
        }
    }

    /// A full eval session — begin, then a chain of preview+commit adds —
    /// tracks the scalar recompute bit-for-bit at every step, and the
    /// non-mutating preview always equals the committed total.
    #[test]
    fn eval_sessions_match_scalar_bitwise(
        specs in arb_workload_specs(),
        adds in proptest::collection::vec(arb_index_cols(), 1..5),
    ) {
        let scalar = scalar_reference(Benchmark::TpcH);
        let db = tpch();
        let templates = Benchmark::TpcH.default_templates();
        let w = build_workload(&db, &templates, &specs);

        let mut eval = db.whatif_eval_begin(&w);
        let mut cfg = IndexConfig::empty();
        assert_bits(
            "session begin",
            scalar.estimated_workload_cost(&w, &cfg),
            db.whatif_eval_total(&w, &eval),
        );
        for cols in &adds {
            let idx = build_index(&db, cols);
            let mut after = cfg.clone();
            after.add(idx.clone());
            let preview = db.whatif_eval_preview_add(&w, &eval, &after, &idx);
            let committed = db.whatif_eval_add(&w, &mut eval, &after, &idx);
            let reference = scalar.estimated_workload_cost(&w, &after);
            assert_bits("session preview", reference, preview);
            assert_bits("session commit", reference, committed);
            cfg = after;
        }
    }

    /// Join-template-only workloads under session edit chains: the
    /// decomposed join path must track the scalar recompute bit-for-bit
    /// at every step, previews must equal commits, and nothing may take
    /// the full-model fallback (benchmark templates never scan a table
    /// twice, so every join decomposes).
    #[test]
    fn join_template_sessions_match_scalar_bitwise(
        tmpls in proptest::collection::vec((0usize..8, 0u64..1_000, 1u32..4), 1..4),
        adds in proptest::collection::vec(arb_index_cols(), 1..5),
    ) {
        let scalar = scalar_reference(Benchmark::TpcH);
        let db = tpch();
        let templates = Benchmark::TpcH.default_templates();
        let mut w = Workload::new();
        for (idx, seed, freq) in &tmpls {
            let t = &templates[idx % templates.len()];
            let q = t
                .instantiate(db.schema(), &mut ChaCha8Rng::seed_from_u64(*seed))
                .unwrap();
            w.push(q, *freq);
        }

        let mut eval = db.whatif_eval_begin(&w);
        let mut cfg = IndexConfig::empty();
        assert_bits(
            "join session begin",
            scalar.estimated_workload_cost(&w, &cfg),
            db.whatif_eval_total(&w, &eval),
        );
        for cols in &adds {
            let idx = build_index(&db, cols);
            let mut after = cfg.clone();
            after.add(idx.clone());
            let preview = db.whatif_eval_preview_add(&w, &eval, &after, &idx);
            let committed = db.whatif_eval_add(&w, &mut eval, &after, &idx);
            let reference = scalar.estimated_workload_cost(&w, &after);
            assert_bits("join session preview", reference, preview);
            assert_bits("join session commit", reference, committed);
            cfg = after;
        }
        prop_assert_eq!(
            db.whatif_matrix_stats().full_fallbacks,
            0,
            "benchmark templates must all decompose"
        );
    }

    /// The what-if cache must be value-transparent: the matrix path with
    /// the cache cold, warm, and disabled all agree with the scalar
    /// reference on join-heavy workloads.
    #[test]
    fn cache_cold_and_warm_paths_agree(
        tmpl in 0usize..8,
        seed in 0u64..500,
        cols in arb_index_cols(),
    ) {
        let scalar = scalar_reference(Benchmark::TpcH);
        let db = tpch();
        let templates = Benchmark::TpcH.default_templates();
        let q = templates[tmpl % templates.len()]
            .instantiate(db.schema(), &mut ChaCha8Rng::seed_from_u64(seed))
            .unwrap();
        let w = Workload::from_queries([(q, 3)]);
        let cfg = IndexConfig::from_indexes([build_index(&db, &cols)]);

        let reference = scalar.estimated_workload_cost(&w, &cfg);
        let cold = db.estimated_workload_cost(&w, &cfg); // cache+matrix cold
        let warm = db.estimated_workload_cost(&w, &cfg); // both warm
        db.set_whatif_cache_enabled(false);
        let uncached = db.estimated_workload_cost(&w, &cfg);
        db.set_whatif_cache_enabled(true);
        assert_bits("fallback cold", reference, cold);
        assert_bits("fallback warm", reference, warm);
        assert_bits("fallback uncached", reference, uncached);
    }
}

// ---- deterministic cross-benchmark sweeps ---------------------------------

/// Every default template of both benchmarks, instantiated at several
/// seeds, under single- and multi-column configs: matrix ≡ scalar,
/// cold and warm.
#[test]
fn all_templates_of_both_benchmarks_match_scalar() {
    for bench in [Benchmark::TpcH, Benchmark::TpcDs] {
        let scalar = scalar_reference(bench);
        let db = bench.database(1.0, None);
        let templates = bench.default_templates();
        let mut w = Workload::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for t in &templates {
            for _ in 0..2 {
                w.push(t.instantiate(db.schema(), &mut rng).unwrap(), 2);
            }
        }
        // TPC-DS default templates are all join-shaped; add single-table
        // queries so the sweep drives the Decomposable path on both
        // benchmarks, not just the decomposed joins.
        for c in (0..db.schema().num_columns() as u32).step_by(17) {
            let q = QueryBuilder::new()
                .filter(db.schema(), Predicate::le(ColumnId(c), 0.4))
                .aggregate(Aggregate::CountStar)
                .build(db.schema())
                .unwrap();
            w.push(q, 1);
        }
        // One raw duplicate-table scan (builders dedupe tables, so push
        // the duplicate directly): the genuinely non-decomposable shape
        // that must keep taking the full-model fallback.
        {
            let mut q = templates
                .iter()
                .map(|t| t.instantiate(db.schema(), &mut rng).unwrap())
                .find(|q| q.tables.len() >= 2)
                .expect("benchmark has a join template");
            q.tables.push(q.tables[0]);
            w.push(q, 1);
        }
        // One config per candidate column (the advisor's action space),
        // answered as a batch, twice (cold then warm).
        let configs: Vec<IndexConfig> = w
            .candidate_columns()
            .into_iter()
            .take(12)
            .map(|c| IndexConfig::from_indexes([Index::single(c)]))
            .collect();
        let reference: Vec<f64> = configs
            .iter()
            .map(|c| scalar.estimated_workload_cost(&w, c))
            .collect();
        for pass in ["cold", "warm"] {
            let got = db.what_if_batch(&w, &configs);
            for (i, r) in reference.iter().enumerate() {
                assert_eq!(
                    r.to_bits(),
                    got[i].to_bits(),
                    "{bench:?} {pass} config {i}: {r} != {}",
                    got[i]
                );
            }
        }
        let stats = db.whatif_matrix_stats();
        assert!(stats.matrix_evals > 0, "{bench:?}: no matrix evals");
        assert!(stats.join_evals > 0, "{bench:?}: no decomposed join evals");
        assert!(
            stats.full_fallbacks > 0,
            "{bench:?}: duplicate-table query must fall back"
        );
    }
}

// ---- join-shape classification edge cases ---------------------------------
//
// `QueryShape` is crate-internal, so these pin the chosen shape through
// the public `MatrixStats` counters (exactly one of `matrix_evals` /
// `join_evals` / `full_fallbacks` advances per evaluation) alongside
// bit-equality with the scalar recompute.

fn col(db: &Database, name: &str) -> ColumnId {
    db.schema().column_id(name).unwrap()
}

/// Evaluate one query and return which shape counter advanced, asserting
/// bit-equality to the scalar reference on the way.
fn eval_and_classify(db: &Database, scalar: &Database, q: &Query, cfg: &IndexConfig) -> &'static str {
    let w = Workload::from_queries([(q.clone(), 1)]);
    let before = db.whatif_matrix_stats();
    let got = db.estimated_workload_cost(&w, cfg);
    let after = db.whatif_matrix_stats();
    assert_bits("edge-case shape", scalar.estimated_workload_cost(&w, cfg), got);
    let deltas = [
        ("matrix", after.matrix_evals - before.matrix_evals),
        ("join", after.join_evals - before.join_evals),
        ("fallback", after.full_fallbacks - before.full_fallbacks),
    ];
    let moved: Vec<&str> = deltas.iter().filter(|(_, d)| *d > 0).map(|(n, _)| *n).collect();
    assert_eq!(moved.len(), 1, "exactly one shape counter must advance, got {moved:?}");
    moved[0]
}

/// A builder self-join (both join columns on one table) dedupes to a
/// single-table query: decomposable matrix row, not a join shape.
#[test]
fn self_join_classifies_as_single_table_decomposable() {
    let scalar = scalar_reference(Benchmark::TpcH);
    let db = tpch();
    let q = QueryBuilder::new()
        .join(db.schema(), col(&db, "l_orderkey"), col(&db, "l_partkey"))
        .filter(db.schema(), Predicate::le(col(&db, "l_shipdate"), 0.3))
        .aggregate(Aggregate::CountStar)
        .build(db.schema())
        .unwrap();
    assert_eq!(q.tables.len(), 1, "builder must dedupe the self-join");
    for cfg in [
        IndexConfig::empty(),
        IndexConfig::from_indexes([Index::single(col(&db, "l_shipdate"))]),
    ] {
        assert_eq!(eval_and_classify(&db, &scalar, &q, &cfg), "matrix");
    }
}

/// A raw duplicate-table scan is the genuinely non-decomposable shape:
/// full-model fallback, still bit-identical.
#[test]
fn duplicate_table_scan_falls_back_to_full_model() {
    let scalar = scalar_reference(Benchmark::TpcH);
    let db = tpch();
    let mut q = QueryBuilder::new()
        .join(db.schema(), col(&db, "l_orderkey"), col(&db, "o_orderkey"))
        .aggregate(Aggregate::CountStar)
        .build(db.schema())
        .unwrap();
    q.tables.push(q.tables[0]);
    for cfg in [
        IndexConfig::empty(),
        IndexConfig::from_indexes([Index::single(col(&db, "l_orderkey"))]),
    ] {
        assert_eq!(eval_and_classify(&db, &scalar, &q, &cfg), "fallback");
    }
}

/// A multi-way (three-table) join decomposes; per-step nested-loop cells
/// engage for join-key indexes on any step.
#[test]
fn multi_way_join_decomposes_with_per_step_cells() {
    let scalar = scalar_reference(Benchmark::TpcH);
    let db = tpch();
    let q = QueryBuilder::new()
        .join(db.schema(), col(&db, "c_custkey"), col(&db, "o_custkey"))
        .join(db.schema(), col(&db, "o_orderkey"), col(&db, "l_orderkey"))
        .filter(db.schema(), Predicate::le(col(&db, "c_acctbal"), 0.2))
        .aggregate(Aggregate::CountStar)
        .build(db.schema())
        .unwrap();
    assert_eq!(q.tables.len(), 3);
    for cfg in [
        IndexConfig::empty(),
        IndexConfig::from_indexes([Index::single(col(&db, "o_custkey"))]),
        IndexConfig::from_indexes([
            Index::single(col(&db, "o_custkey")),
            Index::single(col(&db, "l_orderkey")),
            Index::single(col(&db, "c_acctbal")),
        ]),
    ] {
        assert_eq!(eval_and_classify(&db, &scalar, &q, &cfg), "join");
    }
    assert!(
        db.whatif_matrix_stats().nl_entries > 0,
        "join-key indexes must own nested-loop cells"
    );
}

/// A join whose configuration has no indexable column on either side of
/// the join predicate (indexes only on unrelated tables) still
/// decomposes, and the unrelated indexes change nothing: the cost equals
/// the empty-config cost bit-for-bit.
#[test]
fn join_with_no_applicable_index_on_either_side_matches_empty_config() {
    let scalar = scalar_reference(Benchmark::TpcH);
    let db = tpch();
    let q = QueryBuilder::new()
        .join(db.schema(), col(&db, "s_suppkey"), col(&db, "ps_suppkey"))
        .aggregate(Aggregate::CountStar)
        .build(db.schema())
        .unwrap();
    let unrelated = IndexConfig::from_indexes([
        Index::single(col(&db, "p_size")),
        Index::single(col(&db, "c_acctbal")),
    ]);
    assert_eq!(eval_and_classify(&db, &scalar, &q, &unrelated), "join");
    let w = Workload::from_queries([(q, 1)]);
    let empty = db.estimated_workload_cost(&w, &IndexConfig::empty());
    let with = db.estimated_workload_cost(&w, &unrelated);
    assert_eq!(empty.to_bits(), with.to_bits());
}

/// Empty-config deltas: `what_if_delta` from the empty base and a
/// no-op removal against the empty config both match the scalar
/// recompute of the edited (or unchanged) configuration.
#[test]
fn empty_config_deltas_match_scalar() {
    let scalar = scalar_reference(Benchmark::TpcH);
    let db = tpch();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let templates = Benchmark::TpcH.default_templates();
    let mut w = Workload::new();
    for t in templates.iter().take(4) {
        w.push(t.instantiate(db.schema(), &mut rng).unwrap(), 2);
    }
    let empty = IndexConfig::empty();
    let idx = Index::single(col(&db, "l_orderkey"));

    let add = ConfigDelta::Add(idx.clone());
    let reference = scalar.estimated_workload_cost(&w, &add.apply(&empty));
    assert_bits("empty-base add", reference, db.what_if_delta(&w, &empty, &add));

    // Removing an index the empty config doesn't hold is a no-op edit.
    let remove = ConfigDelta::Remove(idx);
    let unchanged = scalar.estimated_workload_cost(&w, &empty);
    assert_bits(
        "empty-base no-op remove",
        unchanged,
        db.what_if_delta(&w, &empty, &remove),
    );
}

/// Disabling the matrix must not change values — only the route taken.
#[test]
fn disabled_matrix_routes_to_identical_values() {
    let db = tpch();
    let templates = Benchmark::TpcH.default_templates();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut w = Workload::new();
    for t in templates.iter().take(6) {
        w.push(t.instantiate(db.schema(), &mut rng).unwrap(), 1);
    }
    let cfg = IndexConfig::from_indexes([Index::single(ColumnId(5))]);
    let enabled = db.estimated_workload_cost(&w, &cfg);
    db.set_whatif_matrix_enabled(false);
    let disabled = db.estimated_workload_cost(&w, &cfg);
    let delta_disabled = db.what_if_delta(
        &w,
        &IndexConfig::empty(),
        &ConfigDelta::Add(Index::single(ColumnId(5))),
    );
    db.set_whatif_matrix_enabled(true);
    assert_eq!(enabled.to_bits(), disabled.to_bits());
    assert_eq!(enabled.to_bits(), delta_disabled.to_bits());
}
