//! Property-based tests on the query-generation stack: grammar, parsing,
//! tokenization, and the GAC = 1 guarantee of constrained decoding.

use pipa::qgen::token::{
    bucket_to_fraction, fraction_to_bucket, ident_fragments, reward_to_bucket,
};
use pipa::qgen::{parse_words, QueryFsm, Vocab, Word};
use pipa::workload::Benchmark;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fsm_walks_always_parse(seed in 0u64..10_000) {
        let schema = Benchmark::TpcH.schema();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let words = QueryFsm::generate(&schema, &mut rng, None);
        let q = parse_words(&schema, &words).expect("FSM output parses");
        prop_assert!(q.validate(&schema).is_ok());
        prop_assert!(!q.predicates.is_empty(), "sargable by construction");
        prop_assert!(q.tables.len() <= pipa::qgen::fsm::MAX_TABLES);
        prop_assert!(q.predicates.len() <= pipa::qgen::fsm::MAX_PREDS);
    }

    #[test]
    fn tpcds_fsm_walks_parse_too(seed in 0u64..2_000) {
        let schema = Benchmark::TpcDs.schema();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let words = QueryFsm::generate(&schema, &mut rng, None);
        let q = parse_words(&schema, &words).expect("TPC-DS FSM output parses");
        prop_assert!(q.validate(&schema).is_ok());
    }

    #[test]
    fn value_buckets_roundtrip(frac in 0.0f64..1.0) {
        let b = fraction_to_bucket(frac);
        let back = bucket_to_fraction(b);
        prop_assert!((back - frac).abs() <= 0.05 + 1e-9, "{frac} → {b} → {back}");
    }

    #[test]
    fn reward_buckets_are_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(reward_to_bucket(lo) <= reward_to_bucket(hi));
    }

    #[test]
    fn fragments_reassemble_identifiers(
        parts in proptest::collection::vec("[a-z]{1,8}", 1..4)
    ) {
        let ident = parts.join("_");
        let frags = ident_fragments(&ident);
        prop_assert_eq!(frags.join(""), ident);
    }
}

#[test]
fn vocab_spells_every_schema_word() {
    for b in [Benchmark::TpcH, Benchmark::TpcDs] {
        let schema = b.schema();
        let vocab = Vocab::build(&schema);
        for t in schema.tables() {
            assert!(!vocab.spell(Word::Table(t.id)).is_empty());
        }
        for c in schema.columns() {
            let spelled = vocab.spell(Word::Column(c.id));
            let joined: String = spelled
                .iter()
                .map(|&id| vocab.token(id))
                .collect::<Vec<_>>()
                .join("");
            assert_eq!(joined, c.name, "{}: fragments must reassemble", b.name());
        }
    }
}

#[test]
fn untrained_iabart_is_still_grammatical() {
    // The FSM-constrained decoder guarantees grammar (GAC = 1) even with
    // random weights — Table 3's structural claim.
    use pipa::qgen::{Iabart, IabartConfig};
    let db = Benchmark::TpcH.database(1.0, None);
    let mut model = Iabart::new(db.schema().clone(), IabartConfig::fast());
    let ship = db.schema().column_id("l_shipdate").unwrap();
    let mut ok = 0;
    for _ in 0..12 {
        if let Ok(q) = model.generate(&[ship], 0.5) {
            assert!(q.validate(db.schema()).is_ok());
            assert!(!q.predicates.is_empty());
            ok += 1;
        }
    }
    assert!(ok >= 10, "decode success {ok}/12");
}
