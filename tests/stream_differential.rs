//! The stream mode strictly generalizes the paper's static pipeline.
//!
//! A streaming run with `retrain_cadence = ∞` ([`Cadence::EndOnly`]: one
//! retrain, after all traffic has arrived) and zero drift
//! ([`DriftSchedule::Static`]) performs the exact victim-path call
//! sequence of [`StressTest`] — train, recommend, measure, build the
//! injection, retrain on clean ∪ injection, recommend, measure. These
//! tests pin the two reports bit-identical, through JSON serialization.

use pipa::core::experiment::{build_db, make_injector, normal_workload, CellConfig, InjectorKind};
use pipa::core::harness::StressTest;
use pipa::core::stream::{run_stream, AttackerStrategy, Cadence, DefensePolicy, StreamSpec};
use pipa::core::{derive_seed, CellSeed};
use pipa::ia::{AdvisorKind, BuildCtx, SpeedPreset, TrajectoryMode};
use pipa::workload::{Benchmark, DriftSchedule};

fn cfg() -> CellConfig {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 3;
    cfg.injection_size = 10;
    cfg
}

/// The differential spec: one attack window, no drift, one end-of-stream
/// retrain, no defense, full budget in the single strike.
fn static_equivalent_spec(injector: InjectorKind, budget: usize) -> StreamSpec {
    StreamSpec {
        windows: 1,
        drift: DriftSchedule::Static,
        cadence: Cadence::EndOnly,
        attacker: AttackerStrategy::Spread(injector),
        budget,
        defense: DefensePolicy::None,
    }
}

/// Run the equivalent static cell: same workload (the stream's zero-drift
/// window), same advisor build seed, and the stream's window-1 attack
/// seed (`derive_seed(cell_seed, 1)`) for the injector.
fn static_outcome(
    cfg: &CellConfig,
    cost: &pipa::cost::SimBackend,
    injector: InjectorKind,
    cell_seed: CellSeed,
) -> pipa::core::StressOutcome {
    let normal = normal_workload(cfg, cell_seed.get());
    let attack_seed = CellSeed::raw(derive_seed(cell_seed.get(), 1));
    let mut advisor = AdvisorKind::DbaBandit(TrajectoryMode::Best)
        .build_with(BuildCtx::new(cfg.preset, cell_seed.get()));
    let mut inj = make_injector(injector, cfg, attack_seed);
    StressTest::new(cost, &normal)
        .injection_size(cfg.injection_size)
        .actual_cost(false)
        .seed(attack_seed)
        .run(advisor.as_mut(), inj.as_mut())
        .expect("static pipeline runs")
}

#[test]
fn no_drift_end_only_stream_is_bit_identical_to_the_static_pipeline() {
    let cfg = cfg();
    for (injector, root) in [(InjectorKind::Pipa, 77u64), (InjectorKind::Tp, 78u64)] {
        let cell_seed = CellSeed::derive(root, 0);
        let cost = build_db(&cfg);
        let spec = static_equivalent_spec(injector, cfg.injection_size);
        let stream = run_stream(
            &cost,
            &cfg,
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            &spec,
            cell_seed,
        )
        .expect("stream runs");
        let projected = stream.as_stress_outcome().expect("attacked stream projects");

        // Fresh database for the static side so memoization warmth can't
        // mask (or cause) a difference.
        let cost = build_db(&cfg);
        let expected = static_outcome(&cfg, &cost, injector, cell_seed);

        // Bit-exact on every field (StressOutcome's PartialEq compares
        // the f64 costs exactly), and byte-identical as JSON — the form
        // the results artifacts take.
        assert_eq!(projected, expected, "stream/static drifted for {injector:?}");
        assert_eq!(
            serde_json::to_string_pretty(&projected).unwrap(),
            serde_json::to_string_pretty(&expected).unwrap(),
        );
    }
}

#[test]
fn the_differential_cell_reports_the_static_call_shape() {
    // Cross-checks that the stream really did what the static pipeline
    // does: a single window, a single retrain, a single strike of the
    // full budget, and a baseline equal to the bootstrap measurement.
    let cfg = cfg();
    let cost = build_db(&cfg);
    let cell_seed = CellSeed::derive(77, 0);
    let spec = static_equivalent_spec(InjectorKind::Pipa, cfg.injection_size);
    let stream = run_stream(
        &cost,
        &cfg,
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        &spec,
        cell_seed,
    )
    .unwrap();
    assert_eq!(stream.windows.len(), 1);
    assert_eq!(stream.retrains, 1);
    assert_eq!(stream.rollbacks, 0);
    let w = &stream.windows[0];
    assert!(w.retrained);
    assert_eq!(w.injected, stream.total_injected);
    // Zero drift: window 1's clean traffic is the bootstrap workload, so
    // its pre-retrain cost is exactly the baseline.
    assert_eq!(w.deployed_cost, stream.baseline_cost);
    assert_eq!(w.clean_cost, stream.baseline_cost);
    assert_eq!(w.post_retrain_cost, Some(stream.final_cost));
    assert_eq!(stream.first_attack_seed, Some(derive_seed(cell_seed.get(), 1)));
}

#[test]
fn drift_and_cadence_actually_generalize() {
    // Sanity that the differential configuration is a special point, not
    // the general behavior: with drift and a real cadence the stream
    // produces multiple retrains over distinct windows.
    let cfg = cfg();
    let cost = build_db(&cfg);
    let spec = StreamSpec {
        windows: 3,
        drift: DriftSchedule::Resample,
        cadence: Cadence::Every(1),
        attacker: AttackerStrategy::Spread(InjectorKind::Tp),
        budget: 4,
        defense: DefensePolicy::None,
    };
    let stream = run_stream(
        &cost,
        &cfg,
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        &spec,
        CellSeed::derive(77, 0),
    )
    .unwrap();
    assert_eq!(stream.retrains, 3);
    // Resampled windows have different clean costs (different traffic).
    let costs: Vec<f64> = stream.windows.iter().map(|w| w.clean_cost).collect();
    assert!(
        costs.windows(2).any(|p| p[0] != p[1]),
        "drifting windows should not all cost the same: {costs:?}"
    );
}
