//! Schema regression over the committed experiment artifacts.
//!
//! Every `results/*.json` must stay a strictly valid JSON object (parsed
//! by the same validator `trace_lint` uses — `pipa_obs::json`), carry an
//! `id` matching its file name and a human-readable `description`, and —
//! for the figure/table artifacts — the `params`/`results` envelope the
//! plotting scripts consume. A hand-edit that breaks any of this fails
//! `cargo test` instead of a downstream notebook.

use pipa_obs::json::top_level_keys;
use std::fs;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/results"))
}

fn artifacts() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(results_dir())
        .expect("results/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_results_artifact_is_strict_json_with_id_and_description() {
    let files = artifacts();
    assert!(!files.is_empty(), "no artifacts under results/");
    for path in &files {
        let text = fs::read_to_string(path).unwrap();
        let keys = top_level_keys(&text)
            .unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()));
        for required in ["id", "description"] {
            assert!(
                keys.iter().any(|k| k == required),
                "{}: missing top-level {required:?} (has {keys:?})",
                path.display()
            );
        }
        // The id must match the file name so artifacts can't silently
        // swap identities when copied around.
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert!(
            text.contains(&format!("\"id\": \"{stem}\""))
                || text.contains(&format!("\"id\":\"{stem}\"")),
            "{}: id does not match file stem {stem:?}",
            path.display()
        );
    }
}

#[test]
fn figure_and_table_artifacts_carry_params_and_results() {
    for path in artifacts() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !(name.starts_with("fig") || name.starts_with("table") || name.starts_with("ablation")) {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let keys = top_level_keys(&text).unwrap();
        for required in ["params", "results"] {
            assert!(
                keys.iter().any(|k| k == required),
                "{name}: figure/table artifact missing {required:?} (has {keys:?})"
            );
        }
    }
}

#[test]
fn bench_artifacts_have_no_duplicate_keys() {
    // BENCH_* files are written by the criterion harness glue; a bad
    // merge could duplicate keys without breaking the parser, so check
    // explicitly at every artifact's top level.
    for path in artifacts() {
        let text = fs::read_to_string(&path).unwrap();
        let keys = top_level_keys(&text).unwrap();
        let mut seen = keys.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(
            seen.len(),
            keys.len(),
            "{}: duplicate top-level keys in {keys:?}",
            path.display()
        );
    }
}
