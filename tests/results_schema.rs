//! Schema regression over the committed experiment artifacts.
//!
//! Every `results/*.json` must stay a strictly valid JSON object (parsed
//! by the same validator `trace_lint` uses — `pipa_obs::json`), carry an
//! `id` matching its file name and a human-readable `description`, and —
//! for the figure/table artifacts — the `params`/`results` envelope the
//! plotting scripts consume. A hand-edit that breaks any of this fails
//! `cargo test` instead of a downstream notebook.

use pipa_obs::json::top_level_keys;
use std::fs;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/results"))
}

fn artifacts() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(results_dir())
        .expect("results/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_results_artifact_is_strict_json_with_id_and_description() {
    let files = artifacts();
    assert!(!files.is_empty(), "no artifacts under results/");
    for path in &files {
        let text = fs::read_to_string(path).unwrap();
        let keys = top_level_keys(&text)
            .unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()));
        for required in ["id", "description"] {
            assert!(
                keys.iter().any(|k| k == required),
                "{}: missing top-level {required:?} (has {keys:?})",
                path.display()
            );
        }
        // The id must match the file name so artifacts can't silently
        // swap identities when copied around.
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert!(
            text.contains(&format!("\"id\": \"{stem}\""))
                || text.contains(&format!("\"id\":\"{stem}\"")),
            "{}: id does not match file stem {stem:?}",
            path.display()
        );
    }
}

#[test]
fn figure_and_table_artifacts_carry_params_and_results() {
    for path in artifacts() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !(name.starts_with("fig") || name.starts_with("table") || name.starts_with("ablation")) {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let keys = top_level_keys(&text).unwrap();
        for required in ["params", "results"] {
            assert!(
                keys.iter().any(|k| k == required),
                "{name}: figure/table artifact missing {required:?} (has {keys:?})"
            );
        }
    }
}

/// Extract the numeric value following `"key":` anywhere in the file
/// (the obs validator only exposes top-level keys, and the workspace
/// deliberately has no full JSON value parser).
fn num_field(text: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let rest = text
        .split(&needle)
        .nth(1)
        .unwrap_or_else(|| panic!("missing field {key:?}"))
        .trim_start();
    let lit: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    lit.parse()
        .unwrap_or_else(|_| panic!("field {key:?} is not a number (got {lit:?})"))
}

#[test]
fn bench_nn_artifact_meets_the_kernel_acceptance_floor() {
    let path = results_dir().join("BENCH_nn.json");
    let text = fs::read_to_string(&path).expect("results/BENCH_nn.json is committed");
    let keys = top_level_keys(&text).unwrap();
    for required in [
        "threads",
        "matmul_dims",
        "mlp_batch",
        "decode_tokens",
        "median_ns",
        "matmul_blocked_speedup",
        "matmul_parallel_speedup",
        "matmul_t_speedup",
        "mlp_train_speedup",
        "decode_speedup",
        "kernel_counters",
    ] {
        assert!(
            keys.iter().any(|k| k == required),
            "BENCH_nn.json: missing top-level {required:?} (has {keys:?})"
        );
    }
    // Every cell the speedups are derived from must be present and
    // positive, so a partial bench run can't produce a plausible file.
    for cell in [
        "matmul_naive",
        "matmul_blocked",
        "matmul_parallel",
        "matmul_t_naive",
        "matmul_t_blocked",
        "mlp_train_naive",
        "mlp_train_fast",
        "decode_naive",
        "decode_fast",
    ] {
        let ns = num_field(&text, cell);
        assert!(ns.is_finite() && ns > 0.0, "median_ns.{cell} = {ns}");
    }
    for sp in [
        "matmul_blocked_speedup",
        "matmul_parallel_speedup",
        "matmul_t_speedup",
    ] {
        let v = num_field(&text, sp);
        assert!(v.is_finite() && v > 1.0, "{sp} = {v} should exceed 1.0");
    }
    // Acceptance floor from the kernel PR: the end-to-end hot paths
    // (replay train step, decoder token step) must hold at least 2x.
    for sp in ["mlp_train_speedup", "decode_speedup"] {
        let v = num_field(&text, sp);
        assert!(v.is_finite() && v >= 2.0, "{sp} = {v} should be >= 2.0");
    }
    for counter in ["matmuls", "flops", "buf_reuses"] {
        let v = num_field(&text, counter);
        assert!(v > 0.0, "kernel_counters.{counter} = {v} should be > 0");
    }
}

#[test]
fn bench_whatif_artifact_keeps_trait_dispatch_within_budget() {
    // PR: the CostBackend seam put a virtual call on every cost lookup.
    // The whatif bench measures the same candidate-scoring loop directly
    // against `Database` and through `&dyn CostBackend` (matrix and
    // cache disabled, so the full analytical model dominates both); the
    // committed artifact must show dynamic dispatch costing <= 5%.
    let path = results_dir().join("BENCH_whatif.json");
    let text = fs::read_to_string(&path).expect("results/BENCH_whatif.json is committed");
    for cell in ["dispatch_direct", "dispatch_trait"] {
        let ns = num_field(&text, cell);
        assert!(ns.is_finite() && ns > 0.0, "median_ns.{cell} = {ns}");
    }
    let overhead = num_field(&text, "trait_dispatch_overhead");
    assert!(
        overhead.is_finite() && overhead > 0.0,
        "trait_dispatch_overhead = {overhead}"
    );
    assert!(
        overhead <= 1.05,
        "trait dispatch must cost <= 5% over direct calls, got {overhead}x"
    );
    // The matrix speedups from the incremental what-if PR must survive
    // the seam: greedy single-table scoring still beats scalar recompute.
    let speedup = num_field(&text, "greedy_single_speedup");
    assert!(speedup > 1.5, "greedy_single_speedup = {speedup}");
}

#[test]
fn bench_whatif_artifact_shows_the_join_decomposition_win() {
    // The join-aware decomposition PR: join-shaped queries are answered
    // from per-join-step matrix cells instead of the full-model
    // fallback, so the mixed (join-heavy) workload must show both a low
    // fallback rate and a real end-to-end speedup.
    let path = results_dir().join("BENCH_whatif.json");
    let text = fs::read_to_string(&path).expect("results/BENCH_whatif.json is committed");

    let mixed_speedup = num_field(&text, "greedy_mixed_speedup");
    assert!(
        mixed_speedup.is_finite() && mixed_speedup >= 2.0,
        "greedy_mixed_speedup = {mixed_speedup} should be >= 2.0"
    );

    // `fallback_rate` appears in several counter blocks; scope to the
    // matrix_mixed block (the join-heavy greedy cell).
    let mixed = text
        .split("\"matrix_mixed\"")
        .nth(1)
        .expect("matrix_mixed counters present");
    let fallback = num_field(mixed, "fallback_rate");
    assert!(
        fallback <= 0.2,
        "matrix_mixed.fallback_rate = {fallback} should be <= 0.2"
    );
    let join_evals = num_field(mixed, "join_evals");
    assert!(
        join_evals > 0.0,
        "matrix_mixed.join_evals = {join_evals}: the mixed workload must exercise the join path"
    );

    // The join-mix grid is committed and covers both endpoints.
    let grid = text
        .split("\"join_mix\"")
        .nth(1)
        .expect("join_mix grid present");
    for frac in ["0.0", "1.0"] {
        assert!(
            grid.contains(&format!("\"join_fraction\": {frac}")),
            "join_mix grid missing join_fraction {frac}"
        );
    }
}

#[test]
fn bench_serve_artifact_meets_the_fleet_floors() {
    // The serving-layer PR: a >= 1000-session replay fleet must be
    // committed with sane latency percentiles, real aggregate what-if
    // throughput, zero degraded tenants, and the report proven
    // bit-identical across worker counts before the artifact is written.
    let path = results_dir().join("BENCH_serve.json");
    let text = fs::read_to_string(&path).expect("results/BENCH_serve.json is committed");
    let keys = top_level_keys(&text).unwrap();
    for required in [
        "tenants",
        "sessions_total",
        "whatif_evals_total",
        "median_fleet_ns",
        "p50_session_ns",
        "p99_session_ns",
        "whatif_qps",
        "degraded_tenants",
        "deterministic_across_workers",
    ] {
        assert!(
            keys.iter().any(|k| k == required),
            "BENCH_serve.json: missing top-level {required:?} (has {keys:?})"
        );
    }
    let sessions = num_field(&text, "sessions_total");
    assert!(
        sessions >= 1000.0,
        "sessions_total = {sessions} should be >= 1000"
    );
    let p50 = num_field(&text, "p50_session_ns");
    let p99 = num_field(&text, "p99_session_ns");
    assert!(p50 > 0.0, "p50_session_ns = {p50}");
    assert!(p99 >= p50, "p99 ({p99}) should be >= p50 ({p50})");
    let qps = num_field(&text, "whatif_qps");
    assert!(qps.is_finite() && qps > 0.0, "whatif_qps = {qps}");
    assert_eq!(
        num_field(&text, "degraded_tenants"),
        0.0,
        "the committed fleet run must have no degraded tenants"
    );
    // Every worker-grid cell must be present and positive, so a partial
    // bench run can't produce a plausible file.
    for cell in [
        "replay_fleet_w1",
        "replay_fleet_w2",
        "replay_fleet_w4",
        "replay_fleet_w8",
    ] {
        let ns = num_field(&text, cell);
        assert!(ns.is_finite() && ns > 0.0, "median_fleet_ns.{cell} = {ns}");
    }
    assert!(
        text.contains("\"deterministic_across_workers\": true"),
        "the fleet report must be proven worker-count invariant"
    );
}

#[test]
fn bench_stream_artifact_meets_the_arms_race_floors() {
    // The streaming arms-race PR: the committed grid must sweep both
    // adaptive attackers and both online defenses across at least two
    // cadences, prove itself bit-identical across --jobs, and show at
    // least one defense measurably cutting steady-state toxicity against
    // the undefended column at equal attacker budget.
    let path = results_dir().join("BENCH_stream.json");
    let text = fs::read_to_string(&path).expect("results/BENCH_stream.json is committed");
    let keys = top_level_keys(&text).unwrap();
    for required in [
        "advisor",
        "windows_per_stream",
        "budget_per_window",
        "grid_cells",
        "attackers",
        "defenses",
        "cadences",
        "median_scenario_ns",
        "whatif_qps",
        "no_defense_steady_ad",
        "no_defense_steady_toxicity",
        "best_defense",
        "best_defense_steady_toxicity",
        "defense_toxicity_cut",
        "defense_ad_cut",
        "defense_columns",
        "deterministic_across_jobs",
        "curves",
    ] {
        assert!(
            keys.iter().any(|k| k == required),
            "BENCH_stream.json: missing top-level {required:?} (has {keys:?})"
        );
    }
    // Both adaptive attacker families and both online defenses must be
    // in the sweep, plus the undefended/unattacked controls.
    for label in ["\"none\"", "spread-", "burst-", "\"canary\"", "\"provenance\""] {
        assert!(text.contains(label), "grid missing {label} column");
    }
    let cells = num_field(&text, "grid_cells");
    assert!(cells >= 16.0, "grid_cells = {cells} should cover a real sweep");
    let windows = num_field(&text, "windows_per_stream");
    assert!(windows >= 4.0, "windows_per_stream = {windows}");
    // The undefended column must actually be under attack, and the best
    // defense must measurably cut steady-state toxicity at equal budget
    // — the PR's acceptance criterion.
    let base_tox = num_field(&text, "no_defense_steady_toxicity");
    assert!(base_tox > 0.0, "no_defense_steady_toxicity = {base_tox}");
    let cut = num_field(&text, "defense_toxicity_cut");
    assert!(
        cut > 0.0,
        "defense_toxicity_cut = {cut}: a defense must beat no-defense"
    );
    let ad_cut = num_field(&text, "defense_ad_cut");
    assert!(ad_cut > 0.0, "defense_ad_cut = {ad_cut}");
    // Scenario medians and steady-state throughput must come from a real
    // (non-smoke) run.
    for cell in ["scenario_spread_none", "scenario_spread_canary"] {
        let ns = num_field(&text, cell);
        assert!(ns.is_finite() && ns > 0.0, "median_scenario_ns.{cell} = {ns}");
    }
    let qps = num_field(&text, "whatif_qps");
    assert!(qps.is_finite() && qps > 0.0, "whatif_qps = {qps}");
    // The winning defense column must report real recall (it caught
    // attack surface, not just got lucky). Scope to the defense_columns
    // block of the winner; columns precede curves in the artifact.
    let best = text
        .split("\"best_defense\":")
        .nth(1)
        .and_then(|r| r.split('"').nth(1))
        .expect("best_defense present");
    let col = text
        .split(&format!("\"defense\": \"{best}\""))
        .nth(1)
        .expect("winner appears in defense_columns");
    let recall = num_field(col, "mean_recall");
    assert!(recall > 0.0, "{best}.mean_recall = {recall}");
    assert!(
        text.contains("\"deterministic_across_jobs\": true"),
        "the stream grid must be proven --jobs invariant"
    );
}

#[test]
fn bench_scale_artifact_meets_the_skewed_traffic_floors() {
    // The skewed-traffic PR: the committed artifact must show a >= 1M
    // query Zipf/diurnal stream at SF 100 under a capacity-bounded
    // what-if cache that (a) actually evicted, (b) beat the uniform
    // baseline's hit rate (skew is the premise), and (c) returned
    // bit-identical costs to the unbounded re-run; the byte-budgeted
    // matrix must have compacted while staying at its budget (one-cell
    // overshoot allowed per shard); the streamed tape and its size
    // guard must both have fired; and hot-aligned traffic must price
    // the attack at least as high as cold-aligned (exchange argument).
    let path = results_dir().join("BENCH_scale.json");
    let text = fs::read_to_string(&path).expect("results/BENCH_scale.json is committed");
    let keys = top_level_keys(&text).unwrap();
    for required in ["scale_factor", "stream", "matrix", "tape", "economics"] {
        assert!(
            keys.iter().any(|k| k == required),
            "BENCH_scale.json: missing top-level {required:?} (has {keys:?})"
        );
    }
    assert!(
        text.contains("\"smoke\": false"),
        "a smoke run must never be committed as the artifact"
    );
    assert_eq!(num_field(&text, "scale_factor"), 100.0);

    // Stream leg: >= 1M queries through a cache bounded far below the
    // distinct pool, with skew paying for itself.
    let queries = num_field(&text, "queries");
    assert!(queries >= 1_000_000.0, "queries = {queries} < 1M");
    let capacity = num_field(&text, "cache_capacity");
    let pool = num_field(&text, "distinct_pool_per_window");
    assert!(
        capacity < pool,
        "capacity {capacity} must be under the distinct pool {pool} or nothing evicts"
    );
    let resident = num_field(&text, "entries_resident");
    assert!(
        resident <= capacity,
        "entries_resident {resident} over capacity {capacity}"
    );
    assert!(num_field(&text, "evictions") > 0.0, "no evictions recorded");
    let hit_zipf = num_field(&text, "hit_rate_zipf");
    let hit_uniform = num_field(&text, "hit_rate_uniform");
    assert!(
        hit_zipf > hit_uniform,
        "Zipf hit rate {hit_zipf} must beat uniform {hit_uniform} at equal capacity"
    );
    let qps = num_field(&text, "throughput_qps");
    assert!(qps.is_finite() && qps > 0.0, "throughput_qps = {qps}");
    let peak_load = num_field(&text, "peak_window_load");
    let trough_load = num_field(&text, "trough_window_load");
    assert!(
        peak_load > trough_load,
        "the diurnal curve must show: peak {peak_load} vs trough {trough_load}"
    );
    assert!(
        text.contains("\"bounded_bits_identical\": true"),
        "the bounded cache must be proven bit-identical to unbounded"
    );

    // Matrix leg: the tracked footprint stayed at the budget and the
    // rotating compactor actually ran.
    let budget = num_field(&text, "byte_budget");
    let peak = num_field(&text, "peak_bytes");
    assert!(budget > 0.0, "byte_budget = {budget}");
    assert!(
        peak <= budget + 48.0 * 16.0,
        "peak_bytes {peak} overshot budget {budget} by more than a shard's insert slack"
    );
    assert!(
        num_field(&text, "compactions") > 0.0,
        "the budget never forced a compaction — the leg proved nothing"
    );

    // Tape leg: bytes actually streamed, round trip held, guard trips.
    assert!(
        num_field(&text, "bytes_streamed") > 0.0,
        "tape_bytes_streamed must be positive"
    );
    assert!(text.contains("\"round_trip_ok\": true"), "tape round trip failed");
    assert!(
        text.contains("\"guard_trips\": true"),
        "the size guard must be shown to trip on an undersized limit"
    );

    // Economics leg: hot-aligned traffic dominates cold-aligned.
    let ad_hot = num_field(&text, "ad_hot");
    let ad_cold = num_field(&text, "ad_cold");
    assert!(ad_hot.is_finite() && ad_cold.is_finite());
    assert!(
        ad_hot >= ad_cold,
        "hot-aligned AD {ad_hot} must be >= cold-aligned {ad_cold}"
    );
}

#[test]
fn bench_targets_artifact_meets_the_new_target_class_floors() {
    // The registry PR: both target classes the seam opened — the
    // in-context advisor (fifth registered kind) and the learned-index
    // cost backend — must be committed through the full stress pipeline
    // and the streaming arms race, with finite AD next to the DQN
    // baseline and the whole artifact proven worker-count invariant.
    let path = results_dir().join("BENCH_targets.json");
    let text = fs::read_to_string(&path).expect("results/BENCH_targets.json is committed");
    let keys = top_level_keys(&text).unwrap();
    for required in [
        "registered_kinds",
        "runs",
        "injector",
        "median_stress_ns",
        "classes",
        "dqn_baseline_ad",
        "incontext_ad",
        "learned_index_ad",
        "stream",
        "deterministic_across_jobs",
        "stress_cells",
    ] {
        assert!(
            keys.iter().any(|k| k == required),
            "BENCH_targets.json: missing top-level {required:?} (has {keys:?})"
        );
    }
    // Every built-in kind id must be registered at bench time — the
    // registry the artifact saw is the registry consumers get.
    for kind in ["dbabandit", "dqn", "drlindex", "incontext", "swirl"] {
        assert!(
            text.contains(&format!("\"{kind}\"")),
            "registered_kinds missing built-in {kind:?}"
        );
    }
    // Both new classes and the baseline are present as summary rows.
    for class in ["dqn-sim", "incontext-sim", "dbabandit-learned"] {
        assert!(
            text.contains(&format!("\"class\": \"{class}\"")),
            "classes missing {class:?}"
        );
    }
    // Headline ADs are finite numbers (the stress pipeline completed on
    // every class — no NaN from a dead backend or an unbuilt advisor).
    for ad in ["dqn_baseline_ad", "incontext_ad", "learned_index_ad"] {
        let v = num_field(&text, ad);
        assert!(v.is_finite(), "{ad} = {v}");
    }
    // The streaming leg ran against both backends.
    for backend in ["\"sim\"", "\"learned-index\""] {
        assert!(
            text.contains(backend),
            "stream rows missing backend {backend}"
        );
    }
    // Criterion medians come from a real (non-smoke) run.
    for cell in ["stress_incontext_sim", "stress_dbabandit_learned"] {
        let ns = num_field(&text, cell);
        assert!(ns.is_finite() && ns > 0.0, "median_stress_ns.{cell} = {ns}");
    }
    assert!(
        text.contains("\"deterministic_across_jobs\": true"),
        "the target-class cells must be proven worker-count invariant"
    );
}

#[test]
fn bench_artifacts_have_no_duplicate_keys() {
    // BENCH_* files are written by the criterion harness glue; a bad
    // merge could duplicate keys without breaking the parser, so check
    // explicitly at every artifact's top level.
    for path in artifacts() {
        let text = fs::read_to_string(&path).unwrap();
        let keys = top_level_keys(&text).unwrap();
        let mut seen = keys.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(
            seen.len(),
            keys.len(),
            "{}: duplicate top-level keys in {keys:?}",
            path.display()
        );
    }
}
