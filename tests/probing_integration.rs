//! Integration tests of the probing stage against real advisors: the
//! estimated indexing preference must track what the victim actually
//! prefers.

use pipa::core::preference::{oracle_preference, segment, SegmentConfig};
use pipa::core::probe::{probe, ProbeConfig};
use pipa::ia::{build_clear_box, AdvisorKind, IndexAdvisor, SpeedPreset, TrajectoryMode};
use pipa::qgen::StGenerator;
use pipa::cost::SimBackend;
use pipa::sim::Workload;
use pipa::workload::Benchmark;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup() -> (SimBackend, Workload) {
    let db = SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let g = pipa::workload::generator::WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = g.normal(&mut ChaCha8Rng::seed_from_u64(31)).unwrap();
    (db, w)
}

#[test]
fn probing_recovers_the_victims_top_preference() {
    let (db, w) = setup();
    let mut advisor = build_clear_box(
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        SpeedPreset::Test,
        31,
    );
    advisor.train(&db, &w).expect("train");
    // What the victim actually recommends for its training workload.
    let actual = advisor.recommend(&db, &w).expect("recommend");
    let actual_leading = actual.leading_columns();

    let mut generator = StGenerator::new(31);
    let cfg = ProbeConfig {
        epochs: 8,
        queries_per_epoch: 12,
        seed: 31,
        ..Default::default()
    };
    let res = probe(as_ia(advisor.as_mut()), &db, &mut generator, &cfg).expect("probe");
    // The probed top segment should intersect the victim's actual picks.
    let seg = segment(&res.preference, db.database().schema(), &SegmentConfig::default());
    let overlap = seg
        .top
        .iter()
        .chain(seg.mid.iter().take(4))
        .filter(|c| actual_leading.contains(c))
        .count();
    assert!(
        overlap >= 1,
        "probing must surface at least one of the victim's actual picks; \
         top+mid4 = {:?}, actual = {:?}",
        seg.top,
        actual_leading
    );
}

#[test]
fn probed_ranking_correlates_with_the_oracle() {
    // Spearman-style sanity: the probed top-5 of a what-if-driven victim
    // should rank high in the oracle preference too.
    let (db, w) = setup();
    let mut advisor = build_clear_box(
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        SpeedPreset::Test,
        37,
    );
    advisor.train(&db, &w).expect("train");
    let mut generator = StGenerator::new(37);
    let cfg = ProbeConfig {
        epochs: 8,
        queries_per_epoch: 12,
        seed: 37,
        ..Default::default()
    };
    let res = probe(as_ia(advisor.as_mut()), &db, &mut generator, &cfg).expect("probe");
    let oracle = oracle_preference(&db, &w).expect("oracle preference");
    let mean_oracle_rank: f64 = res
        .preference
        .ranking
        .iter()
        .take(5)
        .map(|&c| oracle.rank_of(c) as f64)
        .sum::<f64>()
        / 5.0;
    // Random columns would average rank ≈ 30 of 61.
    assert!(
        mean_oracle_rank < 25.0,
        "probed top-5 should be oracle-high, mean oracle rank {mean_oracle_rank}"
    );
}

#[test]
fn more_probing_epochs_never_lose_information() {
    let (db, w) = setup();
    let run_probe = |epochs: usize| {
        let mut advisor = build_clear_box(
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            SpeedPreset::Test,
            41,
        );
        advisor.train(&db, &w).expect("train");
        let mut generator = StGenerator::new(41);
        let cfg = ProbeConfig {
            epochs,
            queries_per_epoch: 8,
            seed: 41,
            ..Default::default()
        };
        probe(as_ia(advisor.as_mut()), &db, &mut generator, &cfg).expect("probe")
    };
    let small = run_probe(2);
    let large = run_probe(10);
    assert!(large.epochs_run >= small.epochs_run);
    assert!(
        large.preference.num_positive() >= small.preference.num_positive(),
        "more epochs observe at least as many columns"
    );
}

#[test]
fn zero_probing_epochs_yield_prior_only_ranking() {
    let (db, w) = setup();
    let mut advisor = build_clear_box(
        AdvisorKind::DbaBandit(TrajectoryMode::Best),
        SpeedPreset::Test,
        43,
    );
    advisor.train(&db, &w).expect("train");
    let mut generator = StGenerator::new(43);
    let cfg = ProbeConfig {
        epochs: 0,
        queries_per_epoch: 8,
        seed: 43,
        ..Default::default()
    };
    let res = probe(as_ia(advisor.as_mut()), &db, &mut generator, &cfg).expect("probe");
    assert_eq!(res.epochs_run, 0);
    assert_eq!(res.preference.ranking.len(), 61);
}

fn as_ia(a: &mut dyn pipa::ia::ClearBoxAdvisor) -> &mut dyn IndexAdvisor {
    a
}
