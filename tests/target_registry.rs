//! The acceptance test for the open target seam: a target class that
//! lives *outside* every workspace crate — defined right here in an
//! integration test — registers itself with one `register_target` call
//! and then runs through the stress harness and a multi-tenant serve
//! fleet **without a single edit** to `pipa-core`, `pipa-serve`, or
//! `pipa-bench` match sites. If any consumer still switched on a closed
//! enum, this file could not compile or these cells would fail to build
//! their advisor.

use pipa_core::experiment::{
    build_db, normal_workload, run_cell, CellConfig, InjectorKind,
};
use pipa_core::CellSeed;
use pipa_cost::{CostBackend, CostError, CostResult};
use pipa_ia::{
    register_target, registered_ids, AdvisorSpec, AutoAdminGreedy, ClearBoxAdvisor, IndexAdvisor,
    SpeedPreset,
};
use pipa_serve::{FleetSpec, SessionRequest, TenantSpec};
use pipa_sim::{ColumnId, IndexConfig, Workload};
use pipa_workload::Benchmark;

/// A toy advisor: the greedy heuristic inside, under a name only this
/// test knows, so any surviving closed-enum match site would fail here.
struct Toy {
    inner: AutoAdminGreedy,
}

impl IndexAdvisor for Toy {
    fn name(&self) -> String {
        "ToyE2E".to_string()
    }
    fn train(&mut self, cost: &dyn CostBackend, w: &Workload) -> CostResult<()> {
        self.inner.train(cost, w)
    }
    fn retrain(&mut self, cost: &dyn CostBackend, w: &Workload) -> CostResult<()> {
        self.inner.retrain(cost, w)
    }
    fn recommend(&mut self, cost: &dyn CostBackend, w: &Workload) -> CostResult<IndexConfig> {
        self.inner.recommend(cost, w)
    }
    fn budget(&self) -> usize {
        self.inner.budget()
    }
    fn is_trial_based(&self) -> bool {
        false
    }
}

impl ClearBoxAdvisor for Toy {
    fn column_preferences(&self, _cost: &dyn CostBackend) -> Vec<(ColumnId, f64)> {
        Vec::new()
    }
}

fn register_toy() {
    register_target(
        "toy-e2e",
        |_| "ToyE2E".to_string(),
        |_| {
            Box::new(Toy {
                inner: AutoAdminGreedy::new(3),
            })
        },
    );
}

fn cfg() -> CellConfig {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg.injection_size = 6;
    cfg
}

#[test]
fn a_test_registered_advisor_runs_the_full_stress_pipeline() {
    register_toy();
    assert!(registered_ids().contains(&"toy-e2e".to_string()));

    let cfg = cfg();
    let cost = build_db(&cfg);
    let seed = CellSeed::derive(0, 0);
    let normal = normal_workload(&cfg, seed.get());
    let out = run_cell(
        &cost,
        &normal,
        AdvisorSpec::new("toy-e2e"),
        InjectorKind::Tp,
        &cfg,
        seed,
    )
    .expect("the registered kind runs through StressTest untouched");
    assert_eq!(out.advisor, "ToyE2E");
    assert!(out.ad.is_finite());
    assert!(out.baseline_cost > 0.0);
}

#[test]
fn a_test_registered_advisor_serves_a_fleet_tenant() {
    register_toy();

    let run = FleetSpec::new(11)
        .workers(2)
        .tenant(
            TenantSpec::new("custom", Benchmark::TpcH)
                .advisor(AdvisorSpec::new("toy-e2e"))
                .session(SessionRequest::Recommend)
                .session(SessionRequest::WhatIf { configs: 2 }),
        )
        .run(&pipa_obs::TraceOutputs::disabled());
    assert_eq!(run.report.completed_sessions(), 2);
    assert_eq!(run.report.degraded_tenants(), 0);
}

#[test]
fn an_unknown_kind_degrades_only_its_own_tenant() {
    // The fleet must not panic on an unregistered id: the tenant
    // degrades at its first session with the typed UnknownTarget error
    // and siblings keep serving.
    let run = FleetSpec::new(12)
        .workers(2)
        .tenant(
            TenantSpec::new("ghost", Benchmark::TpcH)
                .advisor(AdvisorSpec::new("no-such-kind"))
                .session(SessionRequest::Recommend),
        )
        .tenant(TenantSpec::new("ok", Benchmark::TpcH).session(SessionRequest::WhatIf { configs: 2 }))
        .run(&pipa_obs::TraceOutputs::disabled());
    assert_eq!(run.report.degraded_tenants(), 1);
    let ghost = &run.report.tenants[0];
    let msg = format!("{:?}", ghost.degraded);
    assert!(
        msg.contains("no-such-kind"),
        "degradation must name the unknown kind (got {msg})"
    );
    let ok = &run.report.tenants[1];
    assert!(ok.degraded.is_none(), "the sibling tenant must be untouched");
    assert_eq!(ok.sessions.len(), 1);
}

#[test]
fn an_unknown_kind_is_a_typed_error_from_the_spec() {
    let err = match AdvisorSpec::new("definitely-not-registered").build() {
        Ok(_) => panic!("unregistered kind must not build"),
        Err(e) => e,
    };
    assert_eq!(err.kind, "definitely-not-registered");
    assert!(err.registered.contains(&"dqn".to_string()));
    let cost: CostError = err.into();
    assert!(format!("{cost}").contains("definitely-not-registered"));
}
