//! Differential suite for the NN matmul kernels (proptest).
//!
//! The blocked and blocked+parallel kernels must be **bit-identical**
//! (`f32::to_bits`) to the naive reference loops — for `matmul`,
//! `matmul_t`, and `t_matmul`, on proptest-generated shapes (including
//! 1×1, tall/skinny, and non-multiples of the 16-wide panel) and on
//! inputs salted with exact `+0.0`/`-0.0` (the naive `matmul`/`t_matmul`
//! loops skip `a == 0.0` terms, so zeros are part of the reference
//! semantics, not an optimization the fast kernels may take
//! differently). Any divergence, even in the last ulp, is a bug:
//! training trajectories make `total_cmp` decisions on these numbers,
//! so "close enough" can flip an action and desynchronize a seeded run.
//!
//! The train-step tests close the loop end-to-end: N Adam steps under
//! each kernel mode — and on a pooled (reused) tape versus fresh tapes —
//! must leave bit-identical parameters.

use pipa::nn::kernels::{matmul_t_with_mode, matmul_with_mode, t_matmul_with_mode};
use pipa::nn::mlp::Activation;
use pipa::nn::{
    kernel_mode, set_kernel_mode, Adam, KernelMode, Mlp, Optimizer, ParamStore, Tape, Tensor,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Max proptest dimension; data pools are sliced to the drawn shape.
const DMAX: usize = 33;

/// Salt a raw sample into the adversarial value domain: values near zero
/// collapse to *exact* signed zeros so the zero-skip path is exercised.
fn salt(v: f32) -> f32 {
    if v.abs() < 0.3 {
        if v < 0.0 {
            -0.0
        } else {
            0.0
        }
    } else {
        v
    }
}

fn tensor_from(pool: &[f32], rows: usize, cols: usize) -> Tensor {
    let data = pool[..rows * cols].iter().copied().map(salt).collect();
    Tensor::from_vec(rows, cols, data)
}

fn assert_bits_eq(label: &str, reference: &Tensor, fast: &Tensor) {
    assert_eq!(
        (reference.rows, reference.cols),
        (fast.rows, fast.cols),
        "{label}: shape"
    );
    for (i, (x, y)) in reference.data.iter().zip(&fast.data).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {i} diverges ({x} vs {y})"
        );
    }
}

/// All three products, all three modes, one shape.
fn check_all_products(a_pool: &[f32], b_pool: &[f32], m: usize, k: usize, n: usize) {
    let modes = [KernelMode::Blocked, KernelMode::BlockedParallel];
    {
        let a = tensor_from(a_pool, m, k);
        let b = tensor_from(b_pool, k, n);
        let naive = matmul_with_mode(&a, &b, KernelMode::Naive);
        for mode in modes {
            let fast = matmul_with_mode(&a, &b, mode);
            assert_bits_eq(&format!("matmul {m}x{k}x{n} {mode:?}"), &naive, &fast);
        }
    }
    {
        let a = tensor_from(a_pool, m, k);
        let bt = tensor_from(b_pool, n, k);
        let naive = matmul_t_with_mode(&a, &bt, KernelMode::Naive);
        for mode in modes {
            let fast = matmul_t_with_mode(&a, &bt, mode);
            assert_bits_eq(&format!("matmul_t {m}x{k}x{n} {mode:?}"), &naive, &fast);
        }
    }
    {
        let at = tensor_from(a_pool, k, m);
        let b = tensor_from(b_pool, k, n);
        let naive = t_matmul_with_mode(&at, &b, KernelMode::Naive);
        for mode in modes {
            let fast = t_matmul_with_mode(&at, &b, mode);
            assert_bits_eq(&format!("t_matmul {m}x{k}x{n} {mode:?}"), &naive, &fast);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_kernels_bit_equal_naive(
        m in 1usize..=DMAX,
        k in 1usize..=DMAX,
        n in 1usize..=DMAX,
        a_pool in proptest::collection::vec(-2.0f32..2.0, DMAX * DMAX),
        b_pool in proptest::collection::vec(-2.0f32..2.0, DMAX * DMAX),
    ) {
        check_all_products(&a_pool, &b_pool, m, k, n);
    }
}

#[test]
fn adversarial_shapes_bit_equal() {
    // Shapes straddling every kernel boundary: unit, degenerate-thin,
    // tall/skinny, exact panel multiples, one-off-panel, sub-panel.
    let shapes = [
        (1, 1, 1),
        (1, 17, 1),
        (33, 1, 5),
        (5, 16, 16),
        (16, 5, 33),
        (2, 33, 31),
        (7, 29, 16),
        (32, 3, 2),
        (1, 1, 33),
        (17, 17, 17),
    ];
    // Deterministic pool with negatives, zeros, and magnitude spread.
    let pool: Vec<f32> = (0..DMAX * DMAX)
        .map(|i| {
            let v = ((i * 2_654_435_761) % 4001) as f32 / 1000.0 - 2.0;
            salt(v)
        })
        .collect();
    for (m, k, n) in shapes {
        check_all_products(&pool, &pool, m, k, n);
    }
}

/// N Adam steps on a small MLP; returns the final parameter snapshot.
/// Everything (init, data, targets) derives from fixed seeds, so two
/// runs may differ only through kernel arithmetic.
fn train_snapshot(reuse_tape: bool) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xd1ff);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "m", &[11, 19, 7], Activation::Relu, &mut rng);
    let mut data_rng = ChaCha8Rng::seed_from_u64(0xda7a);
    let mut opt = Adam::new(5e-3);
    let mut pooled = Tape::new();
    for step in 0..8 {
        let batch = 5;
        let x = Tensor::from_vec(
            batch,
            11,
            (0..batch * 11)
                .map(|_| data_rng.gen_range(-1.0f32..1.0))
                .collect(),
        );
        let targets: Vec<(usize, usize, f32)> = (0..batch)
            .map(|r| (r, (r + step) % 7, if r % 2 == 0 { 0.5 } else { -0.25 }))
            .collect();
        store.zero_grads();
        if reuse_tape {
            pooled.reset();
            let xv = pooled.constant(x);
            let y = mlp.forward(&mut pooled, &store, xv);
            let loss = pooled.mse_selected(y, &targets);
            pooled.backward(loss, &mut store);
        } else {
            let mut tape = Tape::new();
            let xv = tape.constant(x);
            let y = mlp.forward(&mut tape, &store, xv);
            let loss = tape.mse_selected(y, &targets);
            tape.backward(loss, &mut store);
        }
        opt.step(&mut store);
    }
    store.snapshot()
}

fn assert_params_bit_eq(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: param count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: param {i} diverges ({x} vs {y})"
        );
    }
}

/// The only test in the suite that touches the process-global kernel
/// mode (the `*_with_mode` tests above use explicit-mode entry points
/// precisely so parallel test threads don't race on it).
#[test]
fn train_steps_bit_identical_across_modes_and_tape_reuse() {
    let initial = kernel_mode();
    let mut snaps = Vec::new();
    for mode in [
        KernelMode::Naive,
        KernelMode::Blocked,
        KernelMode::BlockedParallel,
    ] {
        set_kernel_mode(mode);
        snaps.push((format!("{mode:?} fresh"), train_snapshot(false)));
        snaps.push((format!("{mode:?} pooled"), train_snapshot(true)));
    }
    set_kernel_mode(initial);
    let (ref_label, reference) = &snaps[0];
    for (label, snap) in &snaps[1..] {
        assert_params_bit_eq(&format!("{ref_label} vs {label}"), reference, snap);
    }
}
