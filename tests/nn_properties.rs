//! Property-based tests on the tensor kernels and optimizers.

use pipa::nn::{Adam, Optimizer, ParamStore, Sgd, Tape, Tensor};
use proptest::prelude::*;

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_an_involution(t in arb_tensor(3, 5)) {
        let tt = t.transpose().transpose();
        prop_assert_eq!(t.data, tt.data);
    }

    #[test]
    fn matmul_t_consistency(a in arb_tensor(2, 4), b in arb_tensor(3, 4)) {
        // a @ b^T computed directly must equal a @ transpose(b).
        let direct = a.matmul_t(&b);
        let via_transpose = a.matmul(&b.transpose());
        for (x, y) in direct.data.iter().zip(&via_transpose.data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn t_matmul_consistency(a in arb_tensor(4, 2), b in arb_tensor(4, 3)) {
        let direct = a.t_matmul(&b);
        let via_transpose = a.transpose().matmul(&b);
        for (x, y) in direct.data.iter().zip(&via_transpose.data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(t in arb_tensor(2, 6), shift in -3.0f32..3.0) {
        let a = t.softmax_rows();
        let b = t.map(|x| x + shift).softmax_rows();
        for (x, y) in a.data.iter().zip(&b.data) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        // Rows are distributions.
        for r in 0..a.rows {
            let s: f32 = a.row_slice(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(2, 3),
        b in arb_tensor(3, 2),
        c in arb_tensor(3, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data.iter().zip(&right.data) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn optimizers_descend_quadratics(target in -5.0f32..5.0) {
        // Every optimizer must reduce (w - target)^2 from w = 0.
        for opt in [0u8, 1] {
            let mut store = ParamStore::new();
            let id = store.add("w", Tensor::from_vec(1, 1, vec![0.0]));
            let mut sgd = Sgd::new(0.1);
            let mut adam = Adam::new(0.1);
            for _ in 0..150 {
                store.zero_grads();
                let mut tape = Tape::new();
                let w = tape.param(&store, id);
                let loss = tape.mse_selected(w, &[(0, 0, target)]);
                tape.backward(loss, &mut store);
                match opt {
                    0 => sgd.step(&mut store),
                    _ => adam.step(&mut store),
                }
            }
            let w = store.value(id).data[0];
            prop_assert!(
                (w - target).abs() < 0.25,
                "optimizer {opt}: w = {w}, target = {target}"
            );
        }
    }
}

#[test]
fn snapshot_average_is_elementwise_mean() {
    let mut store = ParamStore::new();
    store.add("a", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
    let s1 = store.snapshot();
    store.restore(&[3.0, 6.0]);
    let s2 = store.snapshot();
    let avg = ParamStore::average(&[s1, s2]);
    assert_eq!(avg, vec![2.0, 4.0]);
}
