//! Property-based tests on the cost model and executor (proptest).
//!
//! These pin down the *ordinal fidelity* invariants the whole
//! reproduction rests on: indexes never hurt estimated costs, selectivity
//! stays in bounds, frequencies scale linearly, and the executor agrees
//! with the analytical model about which index is best.

use pipa::sim::{
    Aggregate, ColumnId, Database, Index, IndexConfig, Predicate, QueryBuilder, Workload,
};
use pipa::workload::Benchmark;
use proptest::prelude::*;

fn tpch() -> Database {
    Benchmark::TpcH.database(1.0, None)
}

/// Any single predicate on any column of a single-table query.
fn arb_predicate(db: &Database) -> impl Strategy<Value = Predicate> {
    let l = db.schema().num_columns() as u32;
    (0..l, 0..4u8, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(c, kind, a, b)| {
        let col = ColumnId(c);
        match kind {
            0 => Predicate::eq(col, a),
            1 => Predicate::le(col, a),
            2 => Predicate::ge(col, a),
            _ => Predicate::between(col, a.min(b), a.max(b)),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adding_an_index_never_increases_estimated_cost(
        pred in arb_predicate(&tpch()),
        idx_col in 0u32..61,
    ) {
        let db = tpch();
        let q = QueryBuilder::new()
            .filter(db.schema(), pred)
            .aggregate(Aggregate::CountStar)
            .build(db.schema())
            .unwrap();
        let base = db.estimated_query_cost(&q, &IndexConfig::empty());
        let cfg = IndexConfig::from_indexes([Index::single(ColumnId(idx_col))]);
        let with = db.estimated_query_cost(&q, &cfg);
        prop_assert!(with <= base + 1e-9, "index raised cost: {with} > {base}");
    }

    #[test]
    fn predicate_selectivity_is_a_probability(pred in arb_predicate(&tpch())) {
        let db = tpch();
        let sel = pred.selectivity(db.column_stat(pred.col));
        prop_assert!((0.0..=1.0).contains(&sel), "selectivity {sel}");
    }

    #[test]
    fn narrower_ranges_never_cost_more(
        col in 0u32..61,
        lo in 0.0f64..0.5,
        width in 0.05f64..0.5,
        shrink in 0.1f64..0.9,
    ) {
        let db = tpch();
        let c = ColumnId(col);
        let wide = QueryBuilder::new()
            .filter(db.schema(), Predicate::between(c, lo, lo + width))
            .aggregate(Aggregate::CountStar)
            .build(db.schema())
            .unwrap();
        let narrow = QueryBuilder::new()
            .filter(db.schema(), Predicate::between(c, lo, lo + width * shrink))
            .aggregate(Aggregate::CountStar)
            .build(db.schema())
            .unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(c)]);
        let cw = db.estimated_query_cost(&wide, &cfg);
        let cn = db.estimated_query_cost(&narrow, &cfg);
        prop_assert!(cn <= cw + 1e-9, "narrow {cn} > wide {cw}");
    }

    #[test]
    fn workload_cost_is_linear_in_frequency(
        pred in arb_predicate(&tpch()),
        freq in 1u32..20,
    ) {
        let db = tpch();
        let q = QueryBuilder::new()
            .filter(db.schema(), pred)
            .aggregate(Aggregate::CountStar)
            .build(db.schema())
            .unwrap();
        let w1 = Workload::from_queries([(q.clone(), 1)]);
        let wf = Workload::from_queries([(q, freq)]);
        let c1 = db.estimated_workload_cost(&w1, &IndexConfig::empty());
        let cf = db.estimated_workload_cost(&wf, &IndexConfig::empty());
        prop_assert!((cf - c1 * f64::from(freq)).abs() < c1 * 1e-9);
    }

    #[test]
    fn rendered_sql_is_nonempty_and_terminated(pred in arb_predicate(&tpch())) {
        let db = tpch();
        let q = QueryBuilder::new()
            .filter(db.schema(), pred)
            .aggregate(Aggregate::CountStar)
            .build(db.schema())
            .unwrap();
        let sql = db.render_sql(&q);
        prop_assert!(sql.starts_with("select"));
        prop_assert!(sql.ends_with(';'));
        prop_assert!(sql.contains("where"));
    }
}

#[test]
fn executor_and_model_agree_on_best_index_for_benchmark_queries() {
    // Ordinal fidelity across the estimate/actual boundary, on real
    // benchmark templates over materialized data.
    use rand::SeedableRng;
    let db = Benchmark::TpcH.database(1.0, Some((3, 60_000)));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let mut agreements = 0;
    let mut total = 0;
    for t in Benchmark::TpcH.default_templates().iter().take(8) {
        let q = t.instantiate(db.schema(), &mut rng).unwrap();
        let candidates: Vec<Index> = q.filter_columns().into_iter().map(Index::single).collect();
        if candidates.len() < 2 {
            continue;
        }
        let best_est = candidates
            .iter()
            .min_by(|a, b| {
                let ca = db.estimated_query_cost(&q, &IndexConfig::from_indexes([(*a).clone()]));
                let cb = db.estimated_query_cost(&q, &IndexConfig::from_indexes([(*b).clone()]));
                ca.total_cmp(&cb)
            })
            .unwrap();
        // The estimate-chosen index must be near-optimal when actually
        // executed (exact argmin ties are meaningless when no index
        // helps, so compare achieved costs instead of identities).
        let actual_of = |i: &Index| {
            db.actual_query_cost(&q, &IndexConfig::from_indexes([i.clone()]))
                .unwrap()
        };
        let best_actual_cost = candidates
            .iter()
            .map(actual_of)
            .fold(f64::INFINITY, f64::min);
        total += 1;
        if actual_of(best_est) <= best_actual_cost * 1.15 + 1.0 {
            agreements += 1;
        }
    }
    assert!(total >= 4, "enough multi-predicate templates");
    assert!(
        agreements * 3 >= total * 2,
        "estimate-chosen index must be actually near-optimal: {agreements}/{total}"
    );
}
