//! Tests pinning paper-specific *claims* (as opposed to code invariants):
//! statements from the paper's analysis that our substrate must also
//! exhibit, since the attack's design rests on them.

use pipa::cost::{CostEngine, SimBackend};
use pipa::ia::features::single_column_benefit;
use pipa::sim::{Aggregate, Index, IndexConfig, Predicate, QueryBuilder};
use pipa::workload::Benchmark;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// §4.1: "the indexing performance of a multi-column index is primarily
/// related to the first single-column index" — the justification for
/// probing only single-column preferences.
#[test]
fn multicolumn_benefit_is_driven_by_the_leading_column() {
    let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let engine = CostEngine::new(&cost);
    let schema = cost.database().schema();
    let mut rng = ChaCha8Rng::seed_from_u64(61);
    let mut close = 0usize;
    let mut total = 0usize;
    for t in schema.tables() {
        let cols = schema.columns_of(t.id);
        if cols.len() < 2 {
            continue;
        }
        for _ in 0..4 {
            // Random leading + secondary column of the same table.
            let a = cols[rng.gen_range(0..cols.len())];
            let b = cols[rng.gen_range(0..cols.len())];
            if a == b {
                continue;
            }
            let q = QueryBuilder::new()
                .filter(schema, Predicate::eq(a, 0.4))
                .filter(schema, Predicate::eq(b, 0.6))
                .aggregate(Aggregate::CountStar)
                .build(schema)
                .unwrap();
            let single = engine
                .query_benefit(&q, &IndexConfig::from_indexes([Index::single(a)]))
                .unwrap();
            let multi = engine
                .query_benefit(
                    &q,
                    &IndexConfig::from_indexes([Index::multi(schema, vec![a, b]).unwrap()]),
                )
                .unwrap();
            total += 1;
            // The multi-column index is at least as good, and the single
            // leading column captures most of its benefit.
            assert!(multi >= single - 1e-9);
            if single >= multi * 0.6 || multi < 0.05 {
                close += 1;
            }
        }
    }
    assert!(total >= 20, "enough samples: {total}");
    assert!(
        close * 4 >= total * 3,
        "leading column should capture most multi-column benefit: {close}/{total}"
    );
}

/// §5: low-ranked columns make bad injection targets because queries
/// "optimized" by them are effectively non-sargable — an index on a
/// low-selectivity column earns ~zero reward for ordinary (non-covering)
/// access. (A bare `count(*)` is excluded deliberately: there, *any*
/// index is covering and an index-only scan wins regardless of
/// selectivity — a real PostgreSQL behaviour our model reproduces.)
#[test]
fn low_selectivity_columns_yield_no_index_reward() {
    let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let engine = CostEngine::new(&cost);
    let schema = cost.database().schema();
    for (name, agg) in [
        ("l_linestatus", "l_extendedprice"),
        ("l_returnflag", "l_extendedprice"),
        ("o_shippriority", "o_totalprice"),
    ] {
        let c = schema.column_id(name).unwrap();
        let payload = schema.column_id(agg).unwrap();
        let q = QueryBuilder::new()
            .filter(schema, Predicate::eq(c, 0.5))
            .aggregate(Aggregate::Sum(payload))
            .build(schema)
            .unwrap();
        let benefit = engine
            .query_benefit(&q, &IndexConfig::from_indexes([Index::single(c)]))
            .unwrap();
        assert!(
            benefit < 0.1,
            "{name} (ndv {}) should be a useless index: benefit {benefit}",
            cost.database().column_stat(c).ndv
        );
    }
}

/// Companion to the above: for a covering `count(*)`, even a low-NDV
/// index wins via an index-only scan — the nuance that makes Algorithm
/// 2's explicit cost filter (rather than an NDV heuristic) necessary.
#[test]
fn count_star_makes_any_index_covering() {
    let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let schema = cost.database().schema();
    let c = schema.column_id("l_linestatus").unwrap();
    let q = QueryBuilder::new()
        .filter(schema, Predicate::eq(c, 0.5))
        .aggregate(Aggregate::CountStar)
        .build(schema)
        .unwrap();
    let benefit = CostEngine::new(&cost)
        .query_benefit(&q, &IndexConfig::from_indexes([Index::single(c)]))
        .unwrap();
    assert!(benefit > 0.2, "index-only scan should win: {benefit}");
}

/// §2.1 footing: an IA's benefit is bounded by the budget — more indexes
/// never hurt under the what-if model, and the budgeted greedy captures a
/// large share of the unbudgeted optimum.
#[test]
fn budget_curve_is_monotone_with_diminishing_returns() {
    use pipa::ia::{AutoAdminGreedy, IndexAdvisor};
    let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let g = pipa::workload::generator::WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = g.normal(&mut ChaCha8Rng::seed_from_u64(67)).unwrap();
    let mut prev = 0.0;
    let mut gains = Vec::new();
    for b in 1..=8 {
        let cfg = AutoAdminGreedy::new(b).recommend(&cost, &w).unwrap();
        let benefit = CostEngine::new(&cost).workload_benefit(&w, &cfg).unwrap();
        assert!(benefit + 1e-9 >= prev, "budget {b}: {benefit} < {prev}");
        gains.push(benefit - prev);
        prev = benefit;
    }
    // Diminishing returns: the first index gains more than the last.
    assert!(
        gains[0] > *gains.last().unwrap(),
        "first gain {} vs last {}",
        gains[0],
        gains.last().unwrap()
    );
}

/// §6.2 (comparison across advisors): the what-if single-column benefit —
/// the quantity every advisor learns to approximate — must rank join keys
/// and selective date columns above text/flag columns on TPC-H.
#[test]
fn benefit_landscape_has_the_expected_head() {
    let cost = SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let g = pipa::workload::generator::WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = g.normal(&mut ChaCha8Rng::seed_from_u64(71)).unwrap();
    let b = |n: &str| {
        single_column_benefit(&cost, &w, cost.database().schema().column_id(n).unwrap()).unwrap()
    };
    assert!(b("l_shipdate") > 0.05, "l_shipdate {}", b("l_shipdate"));
    assert!(b("l_orderkey") > 0.02, "l_orderkey {}", b("l_orderkey"));
    assert!(b("l_comment") < 1e-6);
    assert!(b("r_name") < 1e-6);
    assert!(b("l_shipdate") > b("l_quantity"));
}
