//! End-to-end evidence that the fast NN kernels change *time*, not
//! *results*: a DRLindex advisor retrained under [`KernelMode::Naive`]
//! and under [`KernelMode::BlockedParallel`] must produce exactly the
//! same reward trajectory (`f64` equality — the advisor's decisions are
//! a deterministic function of seeded rng + kernel arithmetic, and the
//! kernels are bit-identical), while the instrumented `advisor_retrain`
//! timing shrinks.
//!
//! The config widens the Q-network (hidden 256, batch 32) so the
//! retrain is dominated by kernel work: at `SpeedPreset::Test` scale
//! the mode delta sits inside a 1-CPU box's scheduler noise, which
//! would make a strict timing assertion flaky.
//!
//! This is the only test in this binary: it flips the process-global
//! kernel mode, so it cannot share a test process with anything that
//! dispatches matmuls concurrently.

use pipa::ia::{DrlIndexAdvisor, DrlIndexConfig, IndexAdvisor, Instrumented, TrajectoryMode};
use pipa::nn::{kernel_mode, set_kernel_mode, KernelMode};
use pipa::obs::{record_cell, CellCtx};
use pipa::workload::Benchmark;
use rand::SeedableRng;

fn nn_heavy_cfg() -> DrlIndexConfig {
    DrlIndexConfig {
        hidden: 256,
        batch_size: 32,
        train_trajectories: 25,
        trial_trajectories: 10,
        seed: 7,
        ..DrlIndexConfig::default()
    }
}

/// Train a fresh seeded DRLindex advisor, then retrain it under
/// recording; returns the post-retrain reward trace and the
/// `advisor_retrain` wall-clock nanos parsed from the recorded metrics
/// channel.
fn retrain_run(mode: KernelMode, cell: u64) -> (Vec<f64>, u64) {
    set_kernel_mode(mode);
    let db = pipa::cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
    let g = pipa::workload::generator::WorkloadGenerator::new(
        Benchmark::TpcH.schema(),
        Benchmark::TpcH.default_templates(),
    );
    let w = g
        .normal(&mut rand_chacha::ChaCha8Rng::seed_from_u64(5))
        .unwrap();
    let mut ia = Instrumented::new(DrlIndexAdvisor::new(TrajectoryMode::Best, nn_heavy_cfg()));
    ia.train(&db, &w).expect("train");
    let (rewards, trace) = record_cell(true, CellCtx::new(cell), || {
        ia.retrain(&db, &w).expect("retrain");
        ia.reward_trace().to_vec()
    });
    let line = trace
        .metrics
        .iter()
        .find(|l| l.contains("\"event\":\"timing\"") && l.contains("\"name\":\"advisor_retrain\""))
        .expect("retrain under recording must emit an advisor_retrain timing");
    let nanos: u64 = line
        .split("\"nanos\":")
        .nth(1)
        .expect("timing line carries nanos")
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("nanos is an integer");
    (rewards, nanos)
}

#[test]
fn fast_kernels_shrink_retrain_time_without_changing_rewards() {
    let initial = kernel_mode();
    // Interleaved, two runs per mode; compare the minima so a single
    // scheduler hiccup can't flip the timing comparison.
    let (naive_a, t_na) = retrain_run(KernelMode::Naive, 101);
    let (fast_a, t_fa) = retrain_run(KernelMode::BlockedParallel, 102);
    let (naive_b, t_nb) = retrain_run(KernelMode::Naive, 103);
    let (fast_b, t_fb) = retrain_run(KernelMode::BlockedParallel, 104);
    set_kernel_mode(initial);

    // Determinism within a mode (same seeds, same arithmetic)…
    assert_eq!(naive_a, naive_b, "naive reruns must be deterministic");
    assert_eq!(fast_a, fast_b, "fast reruns must be deterministic");
    // …and across modes: the fast kernels are bit-identical to naive,
    // so every trajectory reward matches exactly.
    assert_eq!(
        naive_a, fast_a,
        "kernel mode must not change the reward trajectory"
    );
    assert!(!naive_a.is_empty(), "retrain must extend the reward trace");

    let naive_ns = t_na.min(t_nb);
    let fast_ns = t_fa.min(t_fb);
    assert!(
        fast_ns < naive_ns,
        "blocked/parallel retrain ({fast_ns} ns) should beat naive ({naive_ns} ns)"
    );
}
