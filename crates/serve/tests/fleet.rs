//! Fleet-level guarantees, in the style of `pipa-core`'s
//! `tests/determinism.rs`: worker-count invariance of reports and merged
//! traces, record→replay bit-equality, and failure isolation.

use pipa_obs::{MemorySink, TraceOutputs};
use pipa_serve::{
    BackendSpec, FleetSpec, InjectorKind, SessionRequest, TenantSpec,
};
use pipa_workload::Benchmark;

/// A small mixed fleet: TPC-H and TPC-DS tenants, what-if traffic plus a
/// recommendation and one full stress test.
fn mixed_fleet(workers: usize) -> FleetSpec {
    let mut fleet = FleetSpec::new(42).workers(workers);
    for (i, name) in ["acme", "globex", "initech", "umbrella"].iter().enumerate() {
        let benchmark = if i % 2 == 0 {
            Benchmark::TpcH
        } else {
            Benchmark::TpcDs
        };
        let mut tenant = TenantSpec::new(*name, benchmark)
            .session(SessionRequest::WhatIf { configs: 6 })
            .session(SessionRequest::Recommend)
            .session(SessionRequest::WhatIf { configs: 3 });
        if i == 0 {
            tenant = tenant.session(SessionRequest::Stress {
                injector: InjectorKind::Tp,
                injection_size: 4,
            });
        }
        fleet = fleet.tenant(tenant);
    }
    fleet
}

fn traced_run(fleet: &FleetSpec) -> (pipa_serve::FleetRun, String) {
    let sink = MemorySink::new();
    let out = TraceOutputs::with_sinks(Some(Box::new(sink.clone())), None);
    let run = fleet.run(&out);
    (run, sink.contents())
}

#[test]
fn fleet_report_and_trace_are_worker_count_invariant() {
    let (base, base_trace) = traced_run(&mixed_fleet(1));
    assert_eq!(base.report.degraded_tenants(), 0);
    assert_eq!(base.report.completed_sessions(), 13);
    assert!(base.report.whatif_evals() > 0);
    for workers in [2, 8] {
        let (run, trace) = traced_run(&mixed_fleet(workers));
        assert_eq!(run.report, base.report, "report drifted at workers={workers}");
        assert_eq!(trace, base_trace, "trace drifted at workers={workers}");
    }
    // The timing channel has the right shape even though its values are
    // wall-clock: one latency per completed session.
    assert_eq!(base.timing.session_nanos.len(), 13);
    assert!(base.timing.wall_nanos > 0);
}

/// The registry-opened target classes serve like the built-ins: a fleet
/// mixing a built-in advisor on the simulator, the in-context advisor,
/// and a tenant whose backend is the learned-index structure produces a
/// report and merged trace that are byte-identical across worker counts.
#[test]
fn mixed_target_fleet_is_worker_count_invariant() {
    use pipa_ia::AdvisorSpec;

    let mixed = |workers| {
        FleetSpec::new(29)
            .workers(workers)
            .tenant(
                TenantSpec::new("builtin-sim", Benchmark::TpcH)
                    .session(SessionRequest::WhatIf { configs: 4 })
                    .session(SessionRequest::Recommend),
            )
            .tenant(
                TenantSpec::new("incontext-sim", Benchmark::TpcH)
                    .advisor(AdvisorSpec::new("incontext"))
                    .session(SessionRequest::Recommend)
                    .session(SessionRequest::Stress {
                        injector: InjectorKind::Tp,
                        injection_size: 4,
                    }),
            )
            .tenant(
                TenantSpec::new("learned-backend", Benchmark::TpcH)
                    .backend(BackendSpec::LearnedIndex)
                    .session(SessionRequest::WhatIf { configs: 3 })
                    .session(SessionRequest::Recommend),
            )
    };
    let (base, base_trace) = traced_run(&mixed(1));
    assert_eq!(base.report.degraded_tenants(), 0);
    assert_eq!(base.report.completed_sessions(), 6);
    assert_eq!(base.report.tenants[1].advisor, "InContext");
    assert_eq!(base.report.tenants[2].backend, "learned");
    for workers in [2, 8] {
        let (run, trace) = traced_run(&mixed(workers));
        assert_eq!(run.report, base.report, "report drifted at workers={workers}");
        assert_eq!(trace, base_trace, "trace drifted at workers={workers}");
    }
}

#[test]
fn recorded_fleet_replays_bit_exactly_without_a_simulator() {
    // Phase 1: record. Same roster as phase 2, but costs answered by the
    // simulator with a per-tenant tape capturing every per-query cost.
    let record = |spec: BackendSpec| {
        FleetSpec::new(7)
            .workers(2)
            .tenant(
                TenantSpec::new("tape-h", Benchmark::TpcH)
                    .backend(spec.clone())
                    .session(SessionRequest::WhatIf { configs: 5 })
                    .session(SessionRequest::WhatIf { configs: 2 }),
            )
            .tenant(
                TenantSpec::new("tape-ds", Benchmark::TpcDs)
                    .backend(spec)
                    .session(SessionRequest::WhatIf { configs: 4 }),
            )
    };
    let recorded = record(BackendSpec::SimRecording).run(&TraceOutputs::disabled());
    assert_eq!(recorded.report.degraded_tenants(), 0);
    let tapes: Vec<_> = recorded
        .tapes
        .iter()
        .map(|t| t.clone().expect("recording tenants produce tapes"))
        .collect();
    assert!(tapes.iter().all(|t| t.est_len() > 0));

    // Phase 2: replay. No simulator behind the seam; every cost comes
    // from the tape, bit-for-bit.
    let mut replay = FleetSpec::new(7).workers(8);
    let rec = record(BackendSpec::Sim); // roster template for names/sessions
    for (tenant, tape) in rec.tenants.iter().zip(tapes) {
        replay = replay.tenant(
            tenant
                .clone()
                .backend(BackendSpec::Replay(tape)),
        );
    }
    let replayed = replay.run(&TraceOutputs::disabled());
    assert_eq!(replayed.report.degraded_tenants(), 0);
    for (r, b) in replayed.report.tenants.iter().zip(&recorded.report.tenants) {
        assert_eq!(r.sessions, b.sessions, "tenant {} drifted in replay", r.tenant);
        assert_eq!(r.backend, "replay");
    }
}

#[test]
fn a_poisoned_tenants_cost_error_never_perturbs_siblings() {
    let honest = |fleet: FleetSpec| {
        fleet
            .tenant(
                TenantSpec::new("honest-h", Benchmark::TpcH)
                    .session(SessionRequest::WhatIf { configs: 4 })
                    .session(SessionRequest::Recommend),
            )
            .tenant(
                TenantSpec::new("honest-ds", Benchmark::TpcDs)
                    .session(SessionRequest::WhatIf { configs: 4 }),
            )
    };
    // Baseline: the honest tenants alone.
    let baseline = honest(FleetSpec::new(3).workers(2)).run(&TraceOutputs::disabled());
    assert_eq!(baseline.report.degraded_tenants(), 0);

    // Same fleet plus a tenant whose empty replay tape fails every
    // lookup with a `ReplayMiss` on its first session.
    let poisoned_spec = |workers| {
        honest(FleetSpec::new(3).workers(workers)).tenant(
            TenantSpec::new("mallory", Benchmark::TpcH)
                .backend(BackendSpec::Replay(pipa_cost::Tape::default()))
                .session(SessionRequest::WhatIf { configs: 4 })
                .session(SessionRequest::WhatIf { configs: 4 }),
        )
    };
    let (poisoned, poisoned_trace) = traced_run(&poisoned_spec(2));

    // The failing tenant is degraded at its first session, with the
    // replay miss recorded verbatim — and nothing else.
    let mallory = &poisoned.report.tenants[2];
    let degraded = mallory.degraded.as_ref().expect("mallory degrades");
    assert_eq!(degraded.session, 0);
    assert!(degraded.error.contains("replay"), "{}", degraded.error);
    assert!(mallory.sessions.is_empty());
    assert_eq!(poisoned.report.degraded_tenants(), 1);

    // Sibling tenants' reports are bit-exactly the baseline's. (Their
    // seeds derive from the fleet root by tenant index, and mallory was
    // appended after them, so the derivations line up.)
    assert_eq!(poisoned.report.tenants[0], baseline.report.tenants[0]);
    assert_eq!(poisoned.report.tenants[1], baseline.report.tenants[1]);

    // The failing session's partial trace is not dropped — its events up
    // to the replay miss are flushed after mallory's (zero) completed
    // sessions — and the merged trace stays worker-count invariant even
    // with a degraded tenant in the roster.
    assert!(
        poisoned_trace.contains("mallory"),
        "degraded session left no trace:\n{poisoned_trace}"
    );
    for workers in [1, 8] {
        let (_, trace) = traced_run(&poisoned_spec(workers));
        assert_eq!(trace, poisoned_trace, "degraded trace drifted at workers={workers}");
    }
}

#[test]
fn a_panicking_session_keeps_its_partial_trace() {
    // PR 7 shipped with a known gap: an `Err` session parked its trace
    // for flushing, but a *panicking* session unwound straight through
    // the recorder and lost every event it had emitted. The session body
    // now runs under catch_unwind inside the recording scope, so the
    // buffer recorded before the unwind survives as the degraded
    // session's trace.
    let chaotic = |workers| {
        FleetSpec::new(11)
            .workers(workers)
            .tenant(
                TenantSpec::new("steady", Benchmark::TpcH)
                    .session(SessionRequest::WhatIf { configs: 4 })
                    .session(SessionRequest::WhatIf { configs: 2 }),
            )
            .tenant(
                TenantSpec::new("kaboom", Benchmark::TpcDs)
                    .session(SessionRequest::WhatIf { configs: 3 })
                    .session(SessionRequest::ChaosPanic {
                        message: "induced fault".to_string(),
                    })
                    .session(SessionRequest::WhatIf { configs: 3 }),
            )
    };
    let (run, trace) = traced_run(&chaotic(2));

    // The panicking tenant degrades at its panic session with the
    // scheduler's canonical rendering; its earlier session completed and
    // its later session never ran.
    let kaboom = &run.report.tenants[1];
    let degraded = kaboom.degraded.as_ref().expect("kaboom degrades");
    assert_eq!(degraded.session, 1);
    assert_eq!(degraded.error, "session panicked: induced fault");
    assert_eq!(kaboom.sessions.len(), 1);
    assert_eq!(run.report.degraded_tenants(), 1);

    // The sibling tenant is untouched.
    assert!(run.report.tenants[0].degraded.is_none());
    assert_eq!(run.report.tenants[0].sessions.len(), 2);

    // The partial trace survived the unwind: the event emitted just
    // before the panic is in the merged stream, attributed to the
    // panicking session's context.
    let chaos_line = trace
        .lines()
        .find(|l| l.contains("\"event\":\"chaos_panic\""))
        .unwrap_or_else(|| panic!("panicking session left no trace:\n{trace}"));
    assert!(chaos_line.contains("\"tenant\":\"kaboom\""), "{chaos_line}");
    assert!(chaos_line.contains("\"session\":1"), "{chaos_line}");
    assert!(chaos_line.contains("induced fault"), "{chaos_line}");

    // And the merged stream stays byte-identical across worker counts,
    // degraded trace included.
    for workers in [1, 8] {
        let (rerun, retrace) = traced_run(&chaotic(workers));
        assert_eq!(rerun.report, run.report, "report drifted at workers={workers}");
        assert_eq!(retrace, trace, "degraded trace drifted at workers={workers}");
    }
}

#[test]
fn fleet_report_serializes_with_degraded_markers() {
    let run = FleetSpec::new(1)
        .tenant(
            TenantSpec::new("t", Benchmark::TpcH)
                .backend(BackendSpec::Replay(pipa_cost::Tape::default()))
                .session(SessionRequest::WhatIf { configs: 1 }),
        )
        .run(&TraceOutputs::disabled());
    let text = serde_json::to_string_pretty(&run.report).expect("serializes");
    assert!(text.contains("\"degraded\""));
    assert!(text.contains("replay"));
}
