//! The typed response side of the service API.
//!
//! Results split into two values with different contracts, mirroring the
//! `pipa-obs` trace/metrics channels:
//!
//! * [`FleetReport`] — deterministic: a pure function of the
//!   [`FleetSpec`](crate::FleetSpec) (bit-identical across worker
//!   counts, `PartialEq`-comparable, serializable);
//! * [`FleetTiming`] — wall-clock session latencies and fleet wall time,
//!   inherently nondeterministic and therefore quarantined.

use pipa_core::harness::StressOutcome;
use pipa_cost::Tape;
use serde::Serialize;

/// What one session produced (deterministic payload only).
#[derive(Debug, Clone, PartialEq)]
pub enum SessionReport {
    /// A [`SessionRequest::WhatIf`](crate::SessionRequest::WhatIf) batch.
    WhatIf {
        /// Per-query cost evaluations issued (configs × workload queries).
        evals: u64,
        /// Sum of the workload costs over the candidate configurations.
        total_cost: f64,
        /// Cheapest candidate configuration's workload cost.
        best_cost: f64,
    },
    /// A [`SessionRequest::Recommend`](crate::SessionRequest::Recommend).
    Recommend {
        /// Recommended index names.
        indexes: Vec<String>,
        /// Tenant-workload cost under the recommendation.
        cost: f64,
    },
    /// A [`SessionRequest::Stress`](crate::SessionRequest::Stress).
    Stress(StressOutcome),
}

impl SessionReport {
    /// Per-query what-if evaluations this session issued (what-if
    /// sessions only; training traffic is not counted here).
    pub fn evals(&self) -> u64 {
        match self {
            SessionReport::WhatIf { evals, .. } => *evals,
            _ => 0,
        }
    }
}

// Hand-written: the vendored mini-serde derive handles unit enums and
// structs only, not payload variants. Rendered as externally-tagged
// objects (`{"what_if": {...}}`), matching upstream serde's default.
impl Serialize for SessionReport {
    fn to_value(&self) -> serde::Value {
        let (tag, body) = match self {
            SessionReport::WhatIf {
                evals,
                total_cost,
                best_cost,
            } => (
                "what_if",
                serde::Value::Object(vec![
                    ("evals".into(), evals.to_value()),
                    ("total_cost".into(), total_cost.to_value()),
                    ("best_cost".into(), best_cost.to_value()),
                ]),
            ),
            SessionReport::Recommend { indexes, cost } => (
                "recommend",
                serde::Value::Object(vec![
                    ("indexes".into(), indexes.to_value()),
                    ("cost".into(), cost.to_value()),
                ]),
            ),
            SessionReport::Stress(outcome) => ("stress", outcome.to_value()),
        };
        serde::Value::Object(vec![(tag.into(), body)])
    }
}

/// Why a tenant stopped serving sessions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Degraded {
    /// Index of the failing session.
    pub session: usize,
    /// Rendered error (a `CostError` display or a panic message).
    pub error: String,
}

/// One tenant's deterministic results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantReport {
    /// Tenant display name.
    pub tenant: String,
    /// Advisor label (e.g. `"DBAbandit-b"`).
    pub advisor: String,
    /// Backend label (`"sim"` / `"record"` / `"replay"`).
    pub backend: String,
    /// The tenant's derived seed.
    pub seed: u64,
    /// Completed sessions, in request order.
    pub sessions: Vec<SessionReport>,
    /// Set if a session failed; later sessions were skipped.
    pub degraded: Option<Degraded>,
}

/// The fleet's deterministic results: bit-identical across worker
/// counts, compared structurally by the determinism tests.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Root seed the per-tenant seeds derive from.
    pub root_seed: u64,
    /// One report per tenant, in admission order.
    pub tenants: Vec<TenantReport>,
}

impl FleetReport {
    /// Number of degraded tenants.
    pub fn degraded_tenants(&self) -> usize {
        self.tenants.iter().filter(|t| t.degraded.is_some()).count()
    }

    /// Completed sessions across the fleet.
    pub fn completed_sessions(&self) -> usize {
        self.tenants.iter().map(|t| t.sessions.len()).sum()
    }

    /// Total per-query what-if evaluations across the fleet.
    pub fn whatif_evals(&self) -> u64 {
        self.tenants
            .iter()
            .flat_map(|t| &t.sessions)
            .map(SessionReport::evals)
            .sum()
    }
}

/// Wall-clock measurements from one fleet run. Values vary run to run;
/// only the *shape* (which sessions completed) is deterministic.
#[derive(Debug, Clone, Serialize)]
pub struct FleetTiming {
    /// Wall time of the whole run, nanoseconds.
    pub wall_nanos: u64,
    /// Per-session wall latencies, flattened in (tenant, session) order.
    pub session_nanos: Vec<u64>,
}

impl FleetTiming {
    /// The `p`-th percentile (0.0–1.0) of session latency, in
    /// nanoseconds, by the nearest-rank method. Zero if no sessions ran.
    pub fn percentile_nanos(&self, p: f64) -> u64 {
        if self.session_nanos.is_empty() {
            return 0;
        }
        let mut sorted = self.session_nanos.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// Everything [`FleetSpec::run`](crate::FleetSpec::run) hands back.
#[derive(Debug)]
pub struct FleetRun {
    /// Deterministic results (compare these across worker counts).
    pub report: FleetReport,
    /// Wall-clock latencies (never compare these).
    pub timing: FleetTiming,
    /// Accumulated tapes, one slot per tenant in admission order:
    /// `Some` for [`BackendSpec::SimRecording`](crate::BackendSpec)
    /// tenants, `None` otherwise.
    pub tapes: Vec<Option<Tape>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let t = FleetTiming {
            wall_nanos: 0,
            session_nanos: vec![50, 10, 20, 30, 40],
        };
        assert_eq!(t.percentile_nanos(0.5), 30);
        assert_eq!(t.percentile_nanos(0.99), 50);
        assert_eq!(t.percentile_nanos(0.0), 10);
        let empty = FleetTiming {
            wall_nanos: 0,
            session_nanos: vec![],
        };
        assert_eq!(empty.percentile_nanos(0.5), 0);
    }

    #[test]
    fn fleet_report_aggregates() {
        let report = FleetReport {
            root_seed: 1,
            tenants: vec![
                TenantReport {
                    tenant: "a".into(),
                    advisor: "DBAbandit-b".into(),
                    backend: "sim".into(),
                    seed: 2,
                    sessions: vec![SessionReport::WhatIf {
                        evals: 12,
                        total_cost: 3.0,
                        best_cost: 1.0,
                    }],
                    degraded: None,
                },
                TenantReport {
                    tenant: "b".into(),
                    advisor: "DBAbandit-b".into(),
                    backend: "replay".into(),
                    seed: 3,
                    sessions: vec![],
                    degraded: Some(Degraded {
                        session: 0,
                        error: "replay miss".into(),
                    }),
                },
            ],
        };
        assert_eq!(report.degraded_tenants(), 1);
        assert_eq!(report.completed_sessions(), 1);
        assert_eq!(report.whatif_evals(), 12);
    }
}
