//! The work-stealing session scheduler.
//!
//! Tenants are independent state machines whose sessions must run **in
//! order**; different tenants may run anywhere. The scheduler models
//! exactly that: each tenant lives in its own slot, a shared ready queue
//! holds the indices of tenants with a runnable next session, and idle
//! workers steal from the queue. A worker claims a tenant, runs *one*
//! session, then requeues the tenant at the tail — round-robin across the
//! fleet, serial within a tenant.
//!
//! Two properties fall out of the shape:
//!
//! * **Scheduling-independence.** A tenant's sessions run serially on
//!   whatever thread claims them, and tenants share no mutable state, so
//!   every session result is a pure function of `(tenant, session
//!   index)` — the same with 1 worker or 8.
//! * **Failure isolation.** Each session runs under
//!   [`std::panic::catch_unwind`]; a panicking or `Err`-returning session
//!   marks **its own tenant** degraded (remaining sessions are skipped)
//!   and the worker moves on. Sibling tenants never observe it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// What one tenant produced: per-session results (in session order) and
/// wall-clock timings, plus the degradation marker if a session failed.
#[derive(Debug)]
pub struct TenantOutcome<R> {
    /// Results of the sessions that completed, in session order.
    pub results: Vec<R>,
    /// Wall-clock nanoseconds per completed session (same order; the
    /// degraded session, if any, is not included).
    pub session_nanos: Vec<u64>,
    /// `Some((session index, error))` if a session failed or panicked;
    /// sessions after it were skipped.
    pub degraded: Option<(usize, String)>,
}

impl<R> TenantOutcome<R> {
    fn new() -> Self {
        TenantOutcome {
            results: Vec::new(),
            session_nanos: Vec::new(),
            degraded: None,
        }
    }
}

struct Slot<T, R> {
    tenant: T,
    sessions: usize,
    next: usize,
    outcome: TenantOutcome<R>,
}

/// Render a panic payload the way `std::panic` would print it. Shared
/// with the fleet's session wrapper so a panic caught inside a recording
/// scope (to save its partial trace) degrades the tenant with exactly
/// the message the scheduler's own backstop would have produced.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("session panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("session panicked: {s}")
    } else {
        "session panicked".to_string()
    }
}

/// Run every tenant's sessions across `workers` threads and return the
/// tenants (with whatever state their sessions left behind) plus one
/// [`TenantOutcome`] per tenant, both in input order.
///
/// `sessions[i]` is tenant `i`'s session count; `run_one(tenant, s)` runs
/// session `s` (sessions of one tenant are invoked serially, in order).
/// `workers == 0` resolves to [`pipa_core::runner::default_jobs`];
/// `workers == 1` still goes through the same queue discipline, just on
/// the calling thread, so both paths exercise identical code.
///
/// A session that returns `Err` or panics degrades its tenant: the error
/// is recorded, the tenant leaves the ready queue for good, and every
/// other tenant proceeds untouched.
pub fn run_tenants<T, R, F>(
    workers: usize,
    tenants: Vec<T>,
    sessions: &[usize],
    run_one: F,
) -> (Vec<T>, Vec<TenantOutcome<R>>)
where
    T: Send,
    R: Send,
    F: Fn(&mut T, usize) -> Result<R, String> + Sync,
{
    assert_eq!(tenants.len(), sessions.len(), "one session count per tenant");
    let workers = if workers == 0 {
        pipa_core::runner::default_jobs()
    } else {
        workers
    };

    let slots: Vec<Mutex<Slot<T, R>>> = tenants
        .into_iter()
        .zip(sessions)
        .map(|(tenant, &n)| {
            Mutex::new(Slot {
                tenant,
                sessions: n,
                next: 0,
                outcome: TenantOutcome::new(),
            })
        })
        .collect();
    let ready: Vec<usize> = (0..slots.len()).filter(|&i| sessions[i] > 0).collect();
    let live = AtomicUsize::new(ready.len());
    let queue = Mutex::new(VecDeque::from(ready));
    let idle = Condvar::new();

    let worker = || {
        loop {
            // Claim a runnable tenant, or exit once none will ever appear.
            let i = {
                let mut q = queue.lock().expect("ready queue");
                loop {
                    if let Some(i) = q.pop_front() {
                        break i;
                    }
                    if live.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    q = idle.wait(q).expect("ready queue");
                }
            };
            // The index was in exactly one place (the queue), so this
            // lock is uncontended; holding it for the session keeps the
            // tenant's state machine single-threaded.
            let mut slot = slots[i].lock().expect("tenant slot");
            let s = slot.next;
            slot.next += 1;
            let started = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| run_one(&mut slot.tenant, s)));
            let nanos = started.elapsed().as_nanos() as u64;
            match result {
                Ok(Ok(r)) => {
                    slot.outcome.results.push(r);
                    slot.outcome.session_nanos.push(nanos);
                }
                Ok(Err(e)) => slot.outcome.degraded = Some((s, e)),
                Err(payload) => slot.outcome.degraded = Some((s, panic_message(payload))),
            }
            let finished = slot.outcome.degraded.is_some() || slot.next == slot.sessions;
            drop(slot);
            if finished {
                if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last tenant done: wake every parked worker to exit.
                    // The notify must happen with the queue lock held —
                    // a waiter releases that lock atomically with parking
                    // in `idle.wait`, so taking it here means the wake
                    // cannot land in the window between a waiter's `live`
                    // check and its park (a lost wake-up would sleep that
                    // worker forever, since nothing notifies afterwards).
                    let _q = queue.lock().expect("ready queue");
                    idle.notify_all();
                }
            } else {
                queue.lock().expect("ready queue").push_back(i);
                idle.notify_one();
            }
        }
    };

    if workers <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers.min(slots.len().max(1)) {
                scope.spawn(worker);
            }
        });
    }

    slots
        .into_iter()
        .map(|m| {
            let slot = m.into_inner().expect("tenant slot");
            (slot.tenant, slot.outcome)
        })
        .unzip()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tenant whose sessions append to its own log; session results
    /// depend only on (tenant id, session index, prior sessions).
    struct Counter {
        id: usize,
        log: Vec<usize>,
    }

    fn run(workers: usize, n_tenants: usize, n_sessions: usize) -> Vec<TenantOutcome<String>> {
        let tenants: Vec<Counter> = (0..n_tenants).map(|id| Counter { id, log: vec![] }).collect();
        let (tenants, outcomes) = run_tenants(
            workers,
            tenants,
            &vec![n_sessions; n_tenants],
            |t: &mut Counter, s| {
                t.log.push(s);
                Ok(format!("t{}s{}len{}", t.id, s, t.log.len()))
            },
        );
        for t in &tenants {
            assert_eq!(t.log, (0..n_sessions).collect::<Vec<_>>(), "in-order sessions");
        }
        outcomes
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let a: Vec<Vec<String>> = run(1, 5, 4).into_iter().map(|o| o.results).collect();
        for workers in [2, 8] {
            let b: Vec<Vec<String>> = run(workers, 5, 4).into_iter().map(|o| o.results).collect();
            assert_eq!(a, b, "workers={workers}");
        }
    }

    #[test]
    fn empty_fleet_and_sessionless_tenants() {
        let (t, o) = run_tenants::<u8, (), _>(4, vec![], &[], |_, _| Ok(()));
        assert!(t.is_empty() && o.is_empty());
        let (_, o) = run_tenants(4, vec![1u8, 2], &[0, 2], |t, s| Ok(*t as usize + s));
        assert!(o[0].results.is_empty());
        assert_eq!(o[1].results, vec![2, 3]);
    }

    #[test]
    fn a_panicking_tenant_degrades_alone() {
        for workers in [1, 4] {
            let (_, outcomes) = run_tenants(
                workers,
                vec![0usize, 1, 2],
                &[3, 3, 3],
                |t: &mut usize, s| {
                    if *t == 1 && s == 1 {
                        panic!("tenant 1 blew up");
                    }
                    Ok(s * 10)
                },
            );
            assert_eq!(outcomes[0].results, vec![0, 10, 20]);
            assert_eq!(outcomes[2].results, vec![0, 10, 20]);
            // Tenant 1 completed session 0, then degraded at session 1.
            assert_eq!(outcomes[1].results, vec![0]);
            let (at, msg) = outcomes[1].degraded.as_ref().expect("degraded");
            assert_eq!(*at, 1);
            assert!(msg.contains("tenant 1 blew up"), "{msg}");
            assert!(outcomes[0].degraded.is_none() && outcomes[2].degraded.is_none());
        }
    }

    #[test]
    fn an_err_session_skips_the_tenants_remaining_sessions() {
        let calls = Mutex::new(Vec::new());
        let (_, outcomes) = run_tenants(2, vec![0usize, 1], &[4, 4], |t: &mut usize, s| {
            calls.lock().unwrap().push((*t, s));
            if *t == 0 && s == 2 {
                Err("replay miss".to_string())
            } else {
                Ok(s)
            }
        });
        assert_eq!(outcomes[0].results, vec![0, 1]);
        assert_eq!(outcomes[0].degraded, Some((2, "replay miss".to_string())));
        assert_eq!(outcomes[1].results, vec![0, 1, 2, 3]);
        // Session 3 of tenant 0 never ran.
        assert!(!calls.lock().unwrap().contains(&(0, 3)));
    }

    #[test]
    fn shutdown_never_strands_a_parked_worker() {
        // Regression for a lost-wakeup deadlock: the final notify_all
        // used to fire without the queue lock, so a worker that had just
        // seen an empty queue and `live != 0` but not yet parked missed
        // the only wake-up and slept forever. Many tiny fleets with more
        // workers than work maximize the odds of hitting that window.
        for round in 0..200usize {
            let n = 1 + round % 3;
            let (_, outcomes) =
                run_tenants(8, vec![0usize; n], &vec![1; n], |_, s| Ok(s));
            assert_eq!(outcomes.len(), n, "round {round}");
        }
    }

    #[test]
    fn timings_cover_exactly_the_completed_sessions() {
        let o = run(3, 2, 5);
        for out in o {
            assert_eq!(out.session_nanos.len(), out.results.len());
        }
    }
}
