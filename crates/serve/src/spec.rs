//! The typed request side of the service API: what a tenant is
//! ([`TenantSpec`]), what a session does ([`SessionRequest`]), and the
//! fleet builder ([`FleetSpec`]) that runs them.

use pipa_core::experiment::CellConfig;
use pipa_cost::Tape;
use pipa_ia::{AdvisorSpec, SpeedPreset};
use pipa_workload::Benchmark;

pub use pipa_core::experiment::InjectorKind;

/// Which cost backend a tenant evaluates against. Every choice sits
/// behind `dyn CostBackend` — the fleet never names a simulator method.
#[derive(Debug, Clone)]
pub enum BackendSpec {
    /// The analytical simulator, built fresh for the tenant (its own
    /// schema statistics, caches, and benefit matrix).
    Sim,
    /// The simulator with every per-query cost recorded; the tenant's
    /// accumulated [`Tape`] comes back in
    /// [`FleetRun::tapes`](crate::report::FleetRun::tapes).
    SimRecording,
    /// Answer every cost from a recorded tape — no simulator behind the
    /// seam. A `(query, config)` pair missing from the tape degrades the
    /// tenant with a `ReplayMiss`, never a fabricated cost.
    Replay(Tape),
    /// A [`pipa_cost::LearnedIndexBackend`] over the tenant's catalog:
    /// per-table learned CDF cost models that refit on the workloads the
    /// tenant trains on, so the tenant's *index structure* is itself a
    /// poisoning target.
    LearnedIndex,
}

impl BackendSpec {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BackendSpec::Sim => "sim",
            BackendSpec::SimRecording => "record",
            BackendSpec::Replay(_) => "replay",
            BackendSpec::LearnedIndex => "learned",
        }
    }
}

/// One unit of tenant work. Sessions of a tenant run serially, in
/// request order, against the tenant's own advisor and backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionRequest {
    /// Evaluate the tenant workload under `configs` candidate index
    /// configurations (single- and two-column indexes cycled
    /// deterministically over the workload's indexable columns) — the
    /// bulk what-if traffic an always-on advisor service answers.
    WhatIf {
        /// Number of candidate configurations to cost.
        configs: usize,
    },
    /// (Re)train the tenant's advisor on the tenant workload and ask it
    /// for an index configuration.
    Recommend,
    /// A full poisoning stress test (train → baseline → inject →
    /// retrain → measure) against the tenant's advisor.
    Stress {
        /// Injection strategy.
        injector: InjectorKind,
        /// Injection workload size `N̂`.
        injection_size: usize,
    },
    /// Fault injection for resilience tests: emit one trace event, then
    /// panic with `message`. The fleet must degrade only this tenant,
    /// report the session as `session panicked: <message>`, and still
    /// flush the session's partial trace (the events recorded before the
    /// unwind) — pinned by `tests/fleet.rs`.
    ChaosPanic {
        /// Panic message.
        message: String,
    },
}

/// Everything one tenant brings: its benchmark and scale (schema plus
/// statistics), advisor, backend, and queued sessions. Built fluently:
///
/// ```
/// use pipa_serve::{BackendSpec, SessionRequest, TenantSpec};
/// use pipa_workload::Benchmark;
///
/// let tenant = TenantSpec::new("acme", Benchmark::TpcH)
///     .backend(BackendSpec::Sim)
///     .session(SessionRequest::WhatIf { configs: 8 })
///     .session(SessionRequest::Recommend);
/// assert_eq!(tenant.sessions.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (reports and traces).
    pub name: String,
    /// Benchmark whose schema/statistics/templates the tenant uses.
    pub benchmark: Benchmark,
    /// Scale factor.
    pub scale: f64,
    /// The tenant's advisor, as a registry spec (any registered kind
    /// id; an unregistered one degrades the tenant at its first
    /// session instead of failing the fleet).
    pub advisor: AdvisorSpec,
    /// Advisor training/trial compute preset.
    pub preset: SpeedPreset,
    /// Cost backend.
    pub backend: BackendSpec,
    /// Queued sessions, run serially in this order.
    pub sessions: Vec<SessionRequest>,
}

impl TenantSpec {
    /// A tenant with the fleet defaults: scale 1.0, `DBAbandit-b`
    /// advisor under the `Test` preset, simulator backend, no sessions.
    pub fn new(name: impl Into<String>, benchmark: Benchmark) -> Self {
        TenantSpec {
            name: name.into(),
            benchmark,
            scale: 1.0,
            advisor: AdvisorSpec::new("dbabandit"),
            preset: SpeedPreset::Test,
            backend: BackendSpec::Sim,
            sessions: Vec::new(),
        }
    }

    /// Set the scale factor.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Set the advisor — an `AdvisorKind` value or any [`AdvisorSpec`]
    /// naming a registered kind id.
    pub fn advisor(mut self, advisor: impl Into<AdvisorSpec>) -> Self {
        self.advisor = advisor.into();
        self
    }

    /// Set the advisor speed preset.
    pub fn preset(mut self, preset: SpeedPreset) -> Self {
        self.preset = preset;
        self
    }

    /// Set the cost backend.
    pub fn backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Queue one session.
    pub fn session(mut self, request: SessionRequest) -> Self {
        self.sessions.push(request);
        self
    }

    /// Queue `n` copies of a session request.
    pub fn repeat_session(mut self, request: SessionRequest, n: usize) -> Self {
        self.sessions.extend(vec![request; n]);
        self
    }

    /// The experiment-cell view of this tenant (shared with the
    /// `pipa-core` harness plumbing: workload generation, injector
    /// construction, probe sizing).
    pub(crate) fn cell_config(&self) -> CellConfig {
        let mut cfg = CellConfig::quick(self.benchmark);
        cfg.scale = self.scale;
        cfg.preset = self.preset;
        cfg.probe_epochs = match self.preset {
            SpeedPreset::Paper => 20,
            SpeedPreset::Quick => 8,
            SpeedPreset::Test => 2,
        };
        cfg
    }
}

/// The fleet: a root seed, a worker-pool bound, and the tenant roster.
///
/// Per-tenant seeds derive from the root with the runner's SplitMix64
/// scheme (`CellSeed::derive(root, tenant index)`), so tenants draw
/// statistically independent streams and the worker count never touches
/// the numbers: [`FleetSpec::run`](crate::fleet) returns bit-identical
/// reports for every `workers` setting.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Root seed for the whole fleet.
    pub root_seed: u64,
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
    /// Tenant roster, in admission order.
    pub tenants: Vec<TenantSpec>,
}

impl FleetSpec {
    /// An empty fleet with the given root seed and one worker.
    pub fn new(root_seed: u64) -> Self {
        FleetSpec {
            root_seed,
            workers: 1,
            tenants: Vec::new(),
        }
    }

    /// Set the worker-pool size (0 = available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Admit one tenant.
    pub fn tenant(mut self, tenant: TenantSpec) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Total queued sessions across the roster.
    pub fn total_sessions(&self) -> usize {
        self.tenants.iter().map(|t| t.sessions.len()).sum()
    }
}
