//! # pipa-serve — a concurrent multi-tenant session fleet
//!
//! The serving layer over the PIPA stack: N independent tenants — each
//! with its own schema statistics, advisor (an
//! [`AdvisorSpec`](pipa_ia::AdvisorSpec) resolved through the target
//! registry, so custom registered kinds serve alongside the built-ins),
//! and cost backend (simulator, recording, replay tape, or learned-index
//! models) — driven through a work-stealing session scheduler inside one
//! process, all cost access behind the object-safe `dyn CostBackend`
//! seam.
//!
//! The public surface is a typed request/response vocabulary:
//!
//! * [`TenantSpec`] — who a tenant is (benchmark, scale, advisor,
//!   [`BackendSpec`]) and which [`SessionRequest`]s it queues;
//! * [`FleetSpec`] — the roster plus a root seed and a worker bound;
//!   [`FleetSpec::run`] materializes and drives everything;
//! * [`FleetRun`] — the response: a deterministic [`FleetReport`]
//!   (bit-identical across worker counts), the wall-clock
//!   [`FleetTiming`], and any recorded tapes.
//!
//! ```
//! use pipa_serve::{FleetSpec, SessionRequest, TenantSpec};
//! use pipa_workload::Benchmark;
//!
//! let run = FleetSpec::new(7)
//!     .workers(2)
//!     .tenant(
//!         TenantSpec::new("acme", Benchmark::TpcH)
//!             .session(SessionRequest::WhatIf { configs: 4 }),
//!     )
//!     .run(&pipa_obs::TraceOutputs::disabled());
//! assert_eq!(run.report.completed_sessions(), 1);
//! ```
//!
//! ## Determinism
//!
//! Per-tenant seeds derive from the fleet's root seed with the runner's
//! SplitMix64 scheme; tenants share no mutable state; sessions of one
//! tenant run serially in request order on whatever worker claims them.
//! So every [`FleetReport`] value — and the merged `pipa-obs` trace,
//! flushed in (tenant, session) order — is a pure function of the
//! [`FleetSpec`], regardless of worker count.
//!
//! ## Failure isolation
//!
//! A session that returns a `CostError` or panics marks **its own**
//! tenant [`Degraded`] (remaining sessions skipped, the error recorded
//! verbatim) and the fleet keeps serving; sibling tenants' reports are
//! bit-exactly what they would have been without the failure.

#![warn(missing_docs)]

pub mod fleet;
pub mod report;
pub mod scheduler;
pub mod spec;

pub use report::{Degraded, FleetReport, FleetRun, FleetTiming, SessionReport, TenantReport};
pub use scheduler::TenantOutcome;
pub use spec::{BackendSpec, FleetSpec, InjectorKind, SessionRequest, TenantSpec};
