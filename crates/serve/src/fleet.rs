//! Materializing and running a [`FleetSpec`].
//!
//! [`FleetSpec::run`] builds one runtime per tenant (schema statistics,
//! advisor, backend, workload — all derived from the tenant's own seed),
//! drives the queued sessions through the
//! [`scheduler`](crate::scheduler), and assembles the deterministic
//! [`FleetReport`] next to the wall-clock [`FleetTiming`].
//!
//! Observability: each session runs inside a `pipa-obs` recording scope
//! whose context names the tenant and session index. The buffered cell
//! traces are flushed **in (tenant, session) order** after the run —
//! never in completion order — so the merged fleet trace is
//! byte-identical across worker counts, exactly like the experiment
//! runner's per-cell stream. That includes the trace of a session that
//! degraded its tenant — by returning `Err` *or by panicking*: the
//! session body runs under `catch_unwind` **inside** the recording
//! scope, so the events recorded before an unwind are flushed as the
//! degraded session's trace right after the tenant's completed
//! sessions, instead of being discarded with the unwound buffer.

use crate::report::{Degraded, FleetReport, FleetRun, FleetTiming, SessionReport, TenantReport};
use crate::scheduler::{panic_message, run_tenants};
use crate::spec::{BackendSpec, FleetSpec, SessionRequest, TenantSpec};
use pipa_core::experiment::{make_injector, normal_workload, CellConfig};
use pipa_core::harness::StressTest;
use pipa_core::runner::{par_map, CellSeed};
use pipa_cost::{
    CostBackend, CostResult, LearnedIndexBackend, LearnedIndexConfig, RecordingBackend,
    ReplayBackend, SimBackend, Tape,
};
use pipa_ia::{BuildCtx, ClearBoxAdvisor, IndexAdvisor, UnknownTarget};
use pipa_obs::{record_cell, CellCtx, CellTrace, Event, TraceOutputs};
use pipa_sim::{Index, IndexConfig, Workload};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// A materialized tenant: owned state the scheduler migrates between
/// workers. No two runtimes share anything mutable.
struct TenantRuntime {
    name: String,
    seed: CellSeed,
    cfg: CellConfig,
    advisor_label: String,
    backend_label: &'static str,
    advisor: Box<dyn ClearBoxAdvisor>,
    backend: OwnedBackend,
    workload: Workload,
    sessions: Vec<SessionRequest>,
    /// Trace of the session that degraded this tenant, if any. The
    /// scheduler only carries the error string back, so the events the
    /// failing session recorded before erroring ride home here and are
    /// flushed after the tenant's completed sessions.
    failed_trace: Option<CellTrace>,
}

/// The tenant's cost backend, owned. Sessions only ever see it as
/// `&dyn CostBackend`.
enum OwnedBackend {
    Sim(SimBackend),
    /// The simulator plus the tape accumulated across this tenant's
    /// recorded sessions (each session stacks a fresh `RecordingBackend`
    /// over the simulator and merges its tape in afterwards).
    Recording(SimBackend, Tape),
    Replay(ReplayBackend),
    /// Learned-index cost models over the tenant's catalog; refit on
    /// every workload the tenant trains on.
    Learned(LearnedIndexBackend),
}

/// Stand-in for an advisor whose spec named an unregistered kind id.
/// Materialization never fails the fleet: the stub carries the
/// [`UnknownTarget`] error and surfaces it from every advisor call, so
/// the tenant degrades at its first session — same path as any other
/// per-tenant failure — while the rest of the fleet runs on.
struct UnresolvedAdvisor(UnknownTarget);

impl UnresolvedAdvisor {
    fn err(&self) -> pipa_cost::CostError {
        self.0.clone().into()
    }
}

impl IndexAdvisor for UnresolvedAdvisor {
    fn name(&self) -> String {
        format!("unresolved:{}", self.0.kind)
    }
    fn train(&mut self, _cost: &dyn CostBackend, _w: &Workload) -> CostResult<()> {
        Err(self.err())
    }
    fn retrain(&mut self, _cost: &dyn CostBackend, _w: &Workload) -> CostResult<()> {
        Err(self.err())
    }
    fn recommend(&mut self, _cost: &dyn CostBackend, _w: &Workload) -> CostResult<IndexConfig> {
        Err(self.err())
    }
    fn budget(&self) -> usize {
        0
    }
    fn is_trial_based(&self) -> bool {
        false
    }
}

impl ClearBoxAdvisor for UnresolvedAdvisor {
    fn column_preferences(&self, _cost: &dyn CostBackend) -> Vec<(pipa_sim::ColumnId, f64)> {
        Vec::new()
    }
}

fn materialize(spec: &TenantSpec, seed: CellSeed) -> TenantRuntime {
    let cfg = spec.cell_config();
    let workload = normal_workload(&cfg, seed.get());
    // Registry resolution happens here, per tenant: a spec naming an
    // unregistered kind materializes the UnresolvedAdvisor stub instead
    // of failing the whole fleet.
    let advisor: Box<dyn ClearBoxAdvisor> = spec
        .advisor
        .build_with(BuildCtx::new(spec.preset, seed.get()))
        .unwrap_or_else(|e| Box::new(UnresolvedAdvisor(e)));
    let backend = match &spec.backend {
        BackendSpec::Sim => OwnedBackend::Sim(SimBackend::new(
            spec.benchmark.database(spec.scale, None),
        )),
        BackendSpec::SimRecording => OwnedBackend::Recording(
            SimBackend::new(spec.benchmark.database(spec.scale, None)),
            Tape::default(),
        ),
        BackendSpec::Replay(tape) => {
            // The tape answers the costs; the catalog (schema plus
            // statistics, cloned into owned storage) comes from a
            // throwaway simulator build so advisors can still extract
            // features.
            let sim = SimBackend::new(spec.benchmark.database(spec.scale, None));
            OwnedBackend::Replay(ReplayBackend::new(sim.catalog(), tape.clone()))
        }
        BackendSpec::LearnedIndex => {
            // Same catalog-cloning trick: a throwaway simulator provides
            // schema and statistics, the learned models own everything.
            let sim = SimBackend::new(spec.benchmark.database(spec.scale, None));
            OwnedBackend::Learned(LearnedIndexBackend::new(
                sim.catalog(),
                LearnedIndexConfig {
                    seed: seed.get(),
                    ..LearnedIndexConfig::fast()
                },
            ))
        }
    };
    TenantRuntime {
        name: spec.name.clone(),
        seed,
        cfg,
        advisor_label: advisor.name(),
        backend_label: spec.backend.label(),
        advisor,
        backend,
        workload,
        sessions: spec.sessions.clone(),
        failed_trace: None,
    }
}

/// The candidate configurations a `WhatIf` session costs: single-column
/// indexes cycled over the workload's indexable columns, widening to
/// two-column configurations once every column has been covered. A pure
/// function of `(workload, configs)`, so the record and replay phases of
/// a fleet ask for exactly the same `(query, config)` pairs.
fn whatif_configs(w: &Workload, n: usize) -> Vec<IndexConfig> {
    let cols = w.candidate_columns();
    (0..n)
        .map(|i| {
            if cols.is_empty() {
                return IndexConfig::empty();
            }
            let k = i % cols.len();
            let mut indexes = vec![Index::single(cols[k])];
            let j = (k + 1) % cols.len();
            if i >= cols.len() && j != k {
                indexes.push(Index::single(cols[j]));
            }
            IndexConfig::from_indexes(indexes)
        })
        .collect()
}

/// Run one session against the tenant's backend-as-a-seam. Every failure
/// comes back as a rendered `CostError` string; panics are the
/// scheduler's department.
fn exec_session(
    request: &SessionRequest,
    cost: &dyn CostBackend,
    advisor: &mut dyn ClearBoxAdvisor,
    workload: &Workload,
    cfg: &CellConfig,
    session_seed: CellSeed,
) -> Result<SessionReport, String> {
    match request {
        SessionRequest::WhatIf { configs } => {
            let candidates = whatif_configs(workload, *configs);
            let mut total_cost = 0.0;
            let mut best_cost = f64::INFINITY;
            for candidate in &candidates {
                let c = cost
                    .workload_cost(workload, candidate)
                    .map_err(|e| e.to_string())?;
                total_cost += c;
                if c < best_cost {
                    best_cost = c;
                }
            }
            let evals = (candidates.len() * workload.len()) as u64;
            pipa_obs::emit(
                Event::new("whatif_batch")
                    .field("configs", candidates.len())
                    .field("evals", evals)
                    .field("best_cost", best_cost),
            );
            Ok(SessionReport::WhatIf {
                evals,
                total_cost,
                best_cost,
            })
        }
        SessionRequest::Recommend => {
            // Learned cost backends refit on what the tenant trains on
            // (no-op for the stateless backends), mirroring the stress
            // harness's train stage.
            cost.observe_training(workload).map_err(|e| e.to_string())?;
            advisor.train(cost, workload).map_err(|e| e.to_string())?;
            let recommended = advisor
                .recommend(cost, workload)
                .map_err(|e| e.to_string())?;
            let c = cost
                .workload_cost(workload, &recommended)
                .map_err(|e| e.to_string())?;
            let schema = cost.catalog().schema;
            let indexes: Vec<String> =
                recommended.indexes().iter().map(|i| i.name(schema)).collect();
            Ok(SessionReport::Recommend { indexes, cost: c })
        }
        SessionRequest::Stress {
            injector,
            injection_size,
        } => {
            let mut injector = make_injector(*injector, cfg, session_seed);
            let outcome = StressTest::new(cost, workload)
                .injection_size(*injection_size)
                .actual_cost(false)
                .seed(session_seed)
                .run(advisor, injector.as_mut())
                .map_err(|e| e.to_string())?;
            Ok(SessionReport::Stress(outcome))
        }
        SessionRequest::ChaosPanic { message } => {
            pipa_obs::emit(Event::new("chaos_panic").field("message", message.clone()));
            panic!("{}", message);
        }
    }
}

/// One scheduler step: session `s` of a tenant, inside its recording
/// scope. Recording-backend tenants stack a fresh [`RecordingBackend`]
/// per session and merge the captured tape into the tenant's.
///
/// On a failure the trace still survives — it is parked on the runtime
/// (`failed_trace`) because the scheduler's error channel only carries
/// the string. That holds for *panics* too: the session body runs under
/// `catch_unwind` inside the recording scope, so `record_cell` returns
/// normally with the buffer recorded up to the unwind, and the payload
/// degrades the tenant as `session panicked: …` — the same rendering
/// the scheduler's outer backstop (which stays in place for panics
/// outside the session body) would produce.
fn run_session(
    rt: &mut TenantRuntime,
    s: usize,
    trace_active: bool,
) -> Result<(SessionReport, CellTrace), String> {
    let request = rt.sessions[s].clone();
    let session_seed = CellSeed::derive(rt.seed.get(), s as u64);
    let ctx = CellCtx::new(rt.seed.get())
        .field("tenant", rt.name.clone())
        .field("session", s);
    let TenantRuntime {
        advisor,
        backend,
        workload,
        cfg,
        ..
    } = rt;
    let (result, trace) = record_cell(trace_active, ctx, || {
        pipa_obs::phase("session");
        let body = catch_unwind(AssertUnwindSafe(|| match backend {
            OwnedBackend::Sim(sim) => {
                exec_session(&request, &*sim, advisor.as_mut(), workload, cfg, session_seed)
            }
            OwnedBackend::Recording(sim, tape) => {
                let recorder = RecordingBackend::new(&*sim);
                let r = exec_session(
                    &request,
                    &recorder,
                    advisor.as_mut(),
                    workload,
                    cfg,
                    session_seed,
                );
                tape.merge(recorder.tape());
                r
            }
            OwnedBackend::Replay(replay) => exec_session(
                &request,
                &*replay,
                advisor.as_mut(),
                workload,
                cfg,
                session_seed,
            ),
            OwnedBackend::Learned(learned) => exec_session(
                &request,
                &*learned,
                advisor.as_mut(),
                workload,
                cfg,
                session_seed,
            ),
        }));
        // Catching here — inside the recording scope — is what keeps a
        // panicking session's partial trace: record_cell returns
        // normally and the unwound buffer rides the normal Err path.
        body.unwrap_or_else(|payload| Err(panic_message(payload)))
    });
    match result {
        Ok(report) => Ok((report, trace)),
        Err(e) => {
            rt.failed_trace = Some(trace);
            Err(e)
        }
    }
}

impl FleetSpec {
    /// Materialize and run the fleet.
    ///
    /// Tenants are built in parallel (each from its own derived seed),
    /// their sessions are driven by the work-stealing scheduler under
    /// the spec's worker bound, and the per-session traces are flushed
    /// to `out` in (tenant, session) order. The returned
    /// [`FleetRun::report`] is a pure function of the spec: any two runs
    /// — at any worker counts — agree on it bit for bit.
    pub fn run(&self, out: &TraceOutputs) -> FleetRun {
        let started = Instant::now();
        let trace_active = out.active();
        let seeds: Vec<CellSeed> = (0..self.tenants.len())
            .map(|i| CellSeed::derive(self.root_seed, i as u64))
            .collect();
        let runtimes = par_map(
            self.workers,
            self.tenants.iter().zip(&seeds).collect(),
            |_, (spec, &seed)| materialize(spec, seed),
        );
        let session_counts: Vec<usize> = runtimes.iter().map(|rt| rt.sessions.len()).collect();
        let (runtimes, outcomes) = run_tenants(
            self.workers,
            runtimes,
            &session_counts,
            |rt: &mut TenantRuntime, s| run_session(rt, s, trace_active),
        );

        let mut tenants = Vec::with_capacity(runtimes.len());
        let mut tapes = Vec::with_capacity(runtimes.len());
        let mut session_nanos = Vec::new();
        for (rt, outcome) in runtimes.into_iter().zip(outcomes) {
            let mut sessions = Vec::with_capacity(outcome.results.len());
            for (report, trace) in outcome.results {
                out.write_cell(&trace);
                sessions.push(report);
            }
            // The degraded session (if any) comes right after the
            // completed ones, so the merged stream stays in (tenant,
            // session) order even for tenants that failed partway.
            if let Some(trace) = &rt.failed_trace {
                out.write_cell(trace);
            }
            session_nanos.extend(outcome.session_nanos);
            tenants.push(TenantReport {
                tenant: rt.name,
                advisor: rt.advisor_label,
                backend: rt.backend_label.to_string(),
                seed: rt.seed.get(),
                sessions,
                degraded: outcome
                    .degraded
                    .map(|(session, error)| Degraded { session, error }),
            });
            tapes.push(match rt.backend {
                OwnedBackend::Recording(_, tape) => Some(tape),
                _ => None,
            });
        }
        out.flush();
        FleetRun {
            report: FleetReport {
                root_seed: self.root_seed,
                tenants,
            },
            timing: FleetTiming {
                wall_nanos: started.elapsed().as_nanos() as u64,
                session_nanos,
            },
            tapes,
        }
    }
}
