//! Drift schedules: how a streaming workload's template mix evolves
//! across windows.
//!
//! The paper's harness draws one normal workload and holds it fixed; a
//! *streaming* scenario (ROADMAP item 2) instead delivers the workload
//! as an ordered sequence of windows whose template mix may drift. A
//! [`DriftSchedule`] is a pure function `(generator, window, seed) →
//! workload`, so streams are exactly as deterministic as the static
//! pipeline: the same schedule, window index, and seed always yield the
//! bit-identical workload, on any thread.

use crate::generator::WorkloadGenerator;
use pipa_sim::{SimResult, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SplitMix64 mix of a base seed and a window index — the same
/// derivation `pipa_core::runner::derive_seed` uses for experiment
/// cells (duplicated here because `pipa-workload` sits below
/// `pipa-core` in the crate graph), so adjacent windows draw
/// statistically independent parameter streams. Shared with
/// [`crate::traffic`], which derives per-template and per-slot
/// parameter streams from the same mix.
pub(crate) fn window_seed(base: u64, window: u64) -> u64 {
    let mut z = base.wrapping_add(window.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the template mix of a workload stream drifts over windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftSchedule {
    /// No drift at all: every window replays the *identical* workload
    /// (same instantiations, same frequencies — generated once from the
    /// base seed, ignoring the window index). A zero-drift stream is
    /// therefore the paper's static setting delivered window by window,
    /// which is what lets the stream mode reproduce the static pipeline
    /// bit for bit.
    Static,
    /// The template *mix* drifts: window `w` instantiates the cyclic
    /// template subset `[w·stride, w·stride + span)` of the generator's
    /// pool, with fresh parameters and frequencies per window. Small
    /// `stride` models gradual traffic migration; `stride >= span`
    /// models hard mix changes.
    Rotate {
        /// Templates per window.
        span: usize,
        /// Template-index shift between consecutive windows.
        stride: usize,
    },
    /// The template mix stays the full pool, but every window
    /// re-instantiates all templates with fresh parameters and
    /// frequencies — parameter drift without mix drift.
    Resample,
}

impl DriftSchedule {
    /// Short stable label for artifacts and traces.
    pub fn label(self) -> &'static str {
        match self {
            DriftSchedule::Static => "static",
            DriftSchedule::Rotate { .. } => "rotate",
            DriftSchedule::Resample => "resample",
        }
    }

    /// Indexes (into a template pool of `pool` entries) of the
    /// templates active in `window`, in instantiation order. `Static`
    /// and `Resample` keep the full pool; `Rotate` yields the cyclic
    /// subset `[window·stride, window·stride + span)`. This is the
    /// template-mix half of [`Self::window_workload`], exposed so the
    /// [`crate::traffic`] layer can weight exactly the templates a
    /// drifting stream would instantiate.
    pub fn window_template_indices(self, pool: usize, window: u64) -> Vec<usize> {
        match self {
            DriftSchedule::Static | DriftSchedule::Resample => (0..pool).collect(),
            DriftSchedule::Rotate { span, stride } => {
                if pool == 0 {
                    return Vec::new();
                }
                let span = span.clamp(1, pool);
                let base = (window as usize).wrapping_mul(stride);
                (0..span).map(|i| (base + i) % pool).collect()
            }
        }
    }

    /// The clean workload arriving in window `window` of a stream
    /// seeded with `seed`. Pure: same `(schedule, generator, window,
    /// seed)` → bit-identical workload.
    pub fn window_workload(
        self,
        gen: &WorkloadGenerator,
        window: u64,
        seed: u64,
    ) -> SimResult<Workload> {
        match self {
            DriftSchedule::Static => gen.normal(&mut ChaCha8Rng::seed_from_u64(seed)),
            DriftSchedule::Resample => {
                gen.normal(&mut ChaCha8Rng::seed_from_u64(window_seed(seed, window)))
            }
            DriftSchedule::Rotate { .. } => {
                let templates = gen.templates();
                let mut rng = ChaCha8Rng::seed_from_u64(window_seed(seed, window));
                let mut w = Workload::new();
                for ti in self.window_template_indices(templates.len(), window) {
                    w.push(
                        templates[ti].instantiate(gen.schema(), &mut rng)?,
                        rng.gen_range(1..=crate::generator::MAX_FREQUENCY),
                    );
                }
                Ok(w)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch;

    fn gen() -> WorkloadGenerator {
        WorkloadGenerator::new(tpch::schema(), tpch::default_templates())
    }

    #[test]
    fn static_schedule_ignores_the_window_index() {
        let g = gen();
        let w0 = DriftSchedule::Static.window_workload(&g, 0, 9).unwrap();
        let w5 = DriftSchedule::Static.window_workload(&g, 5, 9).unwrap();
        assert_eq!(w0, w5, "zero drift must replay the identical workload");
        // And it is exactly the generator's normal workload for the seed.
        let direct = g.normal(&mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(w0, direct);
    }

    #[test]
    fn resample_drifts_parameters_but_not_the_mix() {
        let g = gen();
        let w0 = DriftSchedule::Resample.window_workload(&g, 0, 9).unwrap();
        let w1 = DriftSchedule::Resample.window_workload(&g, 1, 9).unwrap();
        assert_eq!(w0.len(), w1.len(), "full pool every window");
        assert!(w0.is_disjoint_from(&w1), "fresh parameters per window");
    }

    #[test]
    fn rotate_shifts_the_template_subset() {
        let g = gen();
        let d = DriftSchedule::Rotate { span: 6, stride: 2 };
        let w0 = d.window_workload(&g, 0, 3).unwrap();
        let w1 = d.window_workload(&g, 1, 3).unwrap();
        assert_eq!(w0.len(), 6);
        assert_eq!(w1.len(), 6);
        assert_ne!(
            w0.filter_columns(),
            w1.filter_columns(),
            "a stride-2 rotation over distinct templates moves the column mix"
        );
    }

    #[test]
    fn rotate_span_clamps_to_the_pool() {
        let g = gen();
        let d = DriftSchedule::Rotate { span: 999, stride: 1 };
        let w = d.window_workload(&g, 0, 3).unwrap();
        assert_eq!(w.len(), g.templates().len());
    }

    #[test]
    fn schedules_are_pure_functions_of_their_inputs() {
        let g = gen();
        for d in [
            DriftSchedule::Static,
            DriftSchedule::Resample,
            DriftSchedule::Rotate { span: 4, stride: 3 },
        ] {
            let a = d.window_workload(&g, 7, 11).unwrap();
            let b = d.window_workload(&g, 7, 11).unwrap();
            assert_eq!(a, b, "{}", d.label());
        }
    }

    #[test]
    fn window_template_indices_match_the_rotate_subset() {
        let d = DriftSchedule::Rotate { span: 3, stride: 2 };
        assert_eq!(d.window_template_indices(5, 0), vec![0, 1, 2]);
        assert_eq!(d.window_template_indices(5, 1), vec![2, 3, 4]);
        assert_eq!(d.window_template_indices(5, 2), vec![4, 0, 1]);
        assert_eq!(DriftSchedule::Static.window_template_indices(3, 9), vec![0, 1, 2]);
        assert!(DriftSchedule::Rotate { span: 2, stride: 1 }
            .window_template_indices(0, 4)
            .is_empty());
    }

    #[test]
    fn window_seed_matches_the_runner_derivation() {
        // Keep the local SplitMix64 in lock-step with
        // `pipa_core::runner::derive_seed` (reference value of the
        // published algorithm for seed 0, first output).
        assert_eq!(window_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(window_seed(10, 1), window_seed(11, 0));
    }
}
