//! Traffic models: Zipf-skewed template popularity, diurnal load
//! curves, and bursty multi-tenant arrival processes.
//!
//! The paper's generator draws one query per template with a uniform
//! frequency — every template is equally hot and every parameter
//! binding is seen exactly once. Production traffic is nothing like
//! that (ROADMAP item 4, after spyne-ide's `column_usage_patterns`
//! metadata): a handful of templates carry most of the load, queries
//! *repeat* (the same dashboards fire the same parameter bindings all
//! day), load swings over the day, and bursty tenants pile on top of
//! each other. A [`TrafficModel`] captures those axes as pure,
//! seed-deterministic functions:
//!
//! * [`Popularity`] — how template/parameter mass concentrates
//!   (uniform or Zipf with a configurable exponent);
//! * [`Diurnal`] — a piecewise-linear day curve (pure integer/float
//!   arithmetic, no transcendental functions, so the multiplier is
//!   bit-stable across platforms);
//! * [`Arrivals`] — steady or bursty multi-tenant arrivals, each
//!   tenant's burst phase derived from the stream seed;
//! * an embedded [`DriftSchedule`] — which templates are live in a
//!   window (composes with the PR 8 streaming layer).
//!
//! [`TrafficModel::window_traffic`] compiles one window into a
//! [`WindowTraffic`]: a finite pool of `templates × param_slots`
//! concrete queries (each `(template, slot)` pair instantiates from its
//! own derived seed, so the same pair always yields the bit-identical
//! query — this is what makes caches *hit* under repetition) plus the
//! popularity CDFs to sample them from. Sampling a million queries
//! touches only this pool, which is how a bounded what-if cache sees a
//! realistic skewed key distribution.
//!
//! Determinism: everything here is a pure function of `(model,
//! generator, window, seed)`. Samples come from a caller-provided
//! seeded RNG, so `--jobs 1` and `--jobs N` runs that hand each cell
//! the same derived seed draw byte-identical streams
//! (`tests/scale_properties.rs` pins this).

use crate::drift::{window_seed, DriftSchedule};
use crate::generator::WorkloadGenerator;
use pipa_sim::{ColumnId, Query, SimResult, Workload};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How popularity mass distributes over a ranked pool (templates or
/// parameter slots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every item equally likely (the paper's implicit model).
    Uniform,
    /// Zipf: item at rank `r` (0-based) has weight `(r+1)^-exponent`.
    /// Exponents near 1.0 match web/OLAP template skew; larger values
    /// concentrate harder.
    Zipf {
        /// Skew exponent (`s` in `(r+1)^-s`); 0 degenerates to uniform.
        exponent: f64,
    },
}

impl Popularity {
    /// Short stable label for artifacts and traces.
    pub fn label(self) -> &'static str {
        match self {
            Popularity::Uniform => "uniform",
            Popularity::Zipf { .. } => "zipf",
        }
    }

    /// Cumulative distribution over `n` ranked items (ascending, last
    /// entry exactly 1.0). Empty for `n = 0`.
    pub fn cdf(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let weights: Vec<f64> = match self {
            Popularity::Uniform => vec![1.0; n],
            Popularity::Zipf { exponent } => (0..n)
                .map(|r| ((r + 1) as f64).powf(-exponent))
                .collect(),
        };
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Guard the tail against float round-down so sampling with
        // `u < 1.0` can never fall off the end.
        cdf[n - 1] = 1.0;
        cdf
    }

    /// Probability mass of rank `r` out of `n` items.
    pub fn share(self, r: usize, n: usize) -> f64 {
        let cdf = self.cdf(n);
        if r >= n {
            return 0.0;
        }
        if r == 0 {
            cdf[0]
        } else {
            cdf[r] - cdf[r - 1]
        }
    }
}

/// A piecewise-linear diurnal load curve: a triangle wave peaking at
/// `peak_hour` with multiplier 1.0 and bottoming out 12 hours away at
/// `trough`. Pure arithmetic — no `sin` — so the curve is bit-stable
/// everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Load multiplier at the quietest hour, in `(0, 1]`.
    pub trough: f64,
    /// Hour of day (0–23) at which the multiplier is 1.0.
    pub peak_hour: u64,
}

impl Diurnal {
    /// A flat curve (multiplier 1.0 at every hour).
    pub fn flat() -> Self {
        Diurnal {
            trough: 1.0,
            peak_hour: 0,
        }
    }

    /// Business-hours shape: peak at 14:00, trough 0.25 at 02:00.
    pub fn business() -> Self {
        Diurnal {
            trough: 0.25,
            peak_hour: 14,
        }
    }

    /// Load multiplier for an hour of day (hours beyond 23 wrap).
    pub fn multiplier(&self, hour: u64) -> f64 {
        let h = hour % 24;
        let d = {
            let raw = (h as i64 - self.peak_hour as i64).rem_euclid(24);
            raw.min(24 - raw) as f64
        };
        1.0 - (1.0 - self.trough.clamp(0.0, 1.0)) * d / 12.0
    }

    /// Hours whose multiplier is within 10% of the peak — the
    /// `peak_access_hours` of a spyne-style usage profile.
    pub fn peak_hours(&self) -> Vec<u64> {
        (0..24).filter(|&h| self.multiplier(h) >= 0.9).collect()
    }
}

/// Multi-tenant arrival process: how many tenants are active and how
/// their load spikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// One steady stream (multiplier 1.0 every window).
    Steady,
    /// `tenants` independent streams, each bursting for `burst_len`
    /// consecutive windows out of every `burst_every` (phase derived
    /// from the stream seed, so tenants de-synchronize). During a
    /// burst a tenant contributes `burst_mult ×` its steady share.
    Bursty {
        /// Number of tenant streams.
        tenants: usize,
        /// Burst period, in windows.
        burst_every: u64,
        /// Burst duration, in windows.
        burst_len: u64,
        /// Load multiplier while bursting.
        burst_mult: f64,
    },
}

impl Arrivals {
    /// Short stable label for artifacts and traces.
    pub fn label(self) -> &'static str {
        match self {
            Arrivals::Steady => "steady",
            Arrivals::Bursty { .. } => "bursty",
        }
    }

    /// Aggregate load multiplier across tenants for one window. Pure in
    /// `(self, window, seed)`.
    pub fn multiplier(self, window: u64, seed: u64) -> f64 {
        match self {
            Arrivals::Steady => 1.0,
            Arrivals::Bursty {
                tenants,
                burst_every,
                burst_len,
                burst_mult,
            } => {
                let tenants = tenants.max(1);
                let period = burst_every.max(1);
                let len = burst_len.clamp(1, period);
                let mut total = 0.0;
                for t in 0..tenants {
                    let phase = window_seed(seed, t as u64) % period;
                    let in_burst = (window + period - phase) % period < len;
                    total += if in_burst { burst_mult } else { 1.0 };
                }
                total / tenants as f64
            }
        }
    }
}

/// A complete traffic model: popularity skew × day curve × arrivals ×
/// template drift, plus the parameter-slot pool that makes queries
/// repeat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficModel {
    /// How template (and slot) popularity concentrates.
    pub popularity: Popularity,
    /// Day curve scaling per-window load.
    pub diurnal: Diurnal,
    /// Multi-tenant arrival process.
    pub arrivals: Arrivals,
    /// Which templates are live per window.
    pub drift: DriftSchedule,
    /// Distinct parameter bindings per template. Real traffic repeats
    /// bindings (dashboards, canned reports); `param_slots` bounds the
    /// distinct-query universe so repetition actually occurs.
    pub param_slots: usize,
}

impl TrafficModel {
    /// Uniform popularity, flat day, steady arrivals, no drift — the
    /// paper's implicit traffic model, expressed in this layer (the
    /// skew baseline in benchmarks).
    pub fn uniform(param_slots: usize) -> Self {
        TrafficModel {
            popularity: Popularity::Uniform,
            diurnal: Diurnal::flat(),
            arrivals: Arrivals::Steady,
            drift: DriftSchedule::Static,
            param_slots: param_slots.max(1),
        }
    }

    /// Zipf-skewed popularity with a flat day and steady arrivals.
    pub fn zipf(exponent: f64, param_slots: usize) -> Self {
        TrafficModel {
            popularity: Popularity::Zipf { exponent },
            ..Self::uniform(param_slots)
        }
    }

    /// Queries arriving in `window` given a steady-state `base` rate:
    /// `base × diurnal(window mod 24) × arrivals(window)`, floored at 1.
    pub fn window_load(&self, window: u64, base: usize, seed: u64) -> usize {
        let m = self.diurnal.multiplier(window) * self.arrivals.multiplier(window, seed);
        ((base as f64 * m).round() as usize).max(1)
    }

    /// Compile one window's traffic: instantiate the live templates ×
    /// parameter slots and attach the popularity CDFs. Pure in
    /// `(model, generator, window, seed)` — every `(template, slot)`
    /// pair draws its parameters from a seed derived from both, so the
    /// pool is bit-identical no matter when or where it is built.
    pub fn window_traffic(
        &self,
        gen: &WorkloadGenerator,
        window: u64,
        seed: u64,
    ) -> SimResult<WindowTraffic> {
        let pool_seed = window_seed(seed, window);
        let templates = gen.templates();
        let live = self.drift.window_template_indices(templates.len(), window);
        let slots = self.param_slots.max(1);
        let mut queries = Vec::with_capacity(live.len() * slots);
        for (rank, &ti) in live.iter().enumerate() {
            let tseed = window_seed(pool_seed, rank as u64);
            for s in 0..slots {
                let mut rng = ChaCha8Rng::seed_from_u64(window_seed(tseed, s as u64));
                queries.push(templates[ti].instantiate(gen.schema(), &mut rng)?);
            }
        }
        Ok(WindowTraffic {
            queries,
            template_cdf: self.popularity.cdf(live.len()),
            slot_cdf: self.popularity.cdf(slots),
            templates: live.len(),
            slots,
        })
    }
}

/// One window's compiled traffic: the `templates × slots` query pool
/// (template-major) and the popularity CDFs to sample it from.
#[derive(Debug, Clone)]
pub struct WindowTraffic {
    queries: Vec<Query>,
    template_cdf: Vec<f64>,
    slot_cdf: Vec<f64>,
    templates: usize,
    slots: usize,
}

impl WindowTraffic {
    /// Number of distinct queries in the pool.
    pub fn distinct_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of live templates this window.
    pub fn templates(&self) -> usize {
        self.templates
    }

    /// Parameter slots per template.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The pool query at index `i` (template-major:
    /// `i = template_rank × slots + slot`).
    pub fn query(&self, i: usize) -> &Query {
        &self.queries[i]
    }

    /// Template rank (0 = hottest under Zipf) of pool index `i`.
    pub fn template_of(&self, i: usize) -> usize {
        i / self.slots.max(1)
    }

    /// Probability mass of template rank `t`.
    pub fn template_share(&self, t: usize) -> f64 {
        if t >= self.templates {
            return 0.0;
        }
        if t == 0 {
            self.template_cdf[0]
        } else {
            self.template_cdf[t] - self.template_cdf[t - 1]
        }
    }

    /// Draw one pool index: template rank by the template CDF, slot by
    /// the slot CDF (both inverse-CDF over `[0, 1)` draws, so two
    /// `f64`s per sample).
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        let t = pick(&self.template_cdf, rng.gen::<f64>());
        let s = pick(&self.slot_cdf, rng.gen::<f64>());
        t * self.slots + s
    }

    /// Draw `n` queries and aggregate them into a frequency-weighted
    /// [`Workload`] over the distinct pool (pool order, zero-draw
    /// entries skipped). Also returns the raw per-pool-index draw
    /// counts. This is how a million-query stream becomes a workload an
    /// advisor can train on without holding a million query objects.
    pub fn sample_workload<R: RngCore>(&self, n: usize, rng: &mut R) -> (Workload, Vec<u64>) {
        let mut draws = vec![0u64; self.queries.len()];
        for _ in 0..n {
            draws[self.sample(rng)] += 1;
        }
        (self.aggregate(&draws), draws)
    }

    /// Aggregate per-pool-index draw counts into a frequency-weighted
    /// [`Workload`] (counts clamp to `u32`).
    pub fn aggregate(&self, draws: &[u64]) -> Workload {
        let mut w = Workload::new();
        for (i, &c) in draws.iter().enumerate().take(self.queries.len()) {
            if c > 0 {
                w.push(self.queries[i].clone(), c.min(u32::MAX as u64) as u32);
            }
        }
        w
    }
}

/// First rank whose cumulative mass exceeds `u ∈ [0, 1)`.
fn pick(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

/// Spyne-style per-column usage profile of a workload: how often each
/// column is selected, filtered on, or joined through, frequency
/// weighted, with hot columns flagged (≥ 2× the mean nonzero total).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnUsage {
    /// The column.
    pub col: ColumnId,
    /// Frequency-weighted appearances in projections.
    pub select_count: u64,
    /// Frequency-weighted appearances in filter predicates.
    pub filter_count: u64,
    /// Frequency-weighted appearances on either side of a join.
    pub join_count: u64,
    /// Whether this column's total usage is ≥ 2× the mean.
    pub hot: bool,
}

impl ColumnUsage {
    /// Total usage across the three roles.
    pub fn total(&self) -> u64 {
        self.select_count + self.filter_count + self.join_count
    }
}

/// Profile a workload's column usage (columns with any usage, ascending
/// by column id).
pub fn column_usage(w: &Workload) -> Vec<ColumnUsage> {
    use std::collections::BTreeMap;
    let mut map: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
    for wq in w.iter() {
        let f = wq.frequency as u64;
        for c in &wq.query.projection {
            map.entry(c.0).or_default().0 += f;
        }
        for p in &wq.query.predicates {
            map.entry(p.col.0).or_default().1 += f;
        }
        for j in &wq.query.joins {
            map.entry(j.left.0).or_default().2 += f;
            map.entry(j.right.0).or_default().2 += f;
        }
    }
    let totals: Vec<u64> = map.values().map(|&(s, f, j)| s + f + j).collect();
    let mean = if totals.is_empty() {
        0.0
    } else {
        totals.iter().sum::<u64>() as f64 / totals.len() as f64
    };
    map.into_iter()
        .map(|(col, (select_count, filter_count, join_count))| ColumnUsage {
            col: ColumnId(col),
            select_count,
            filter_count,
            join_count,
            hot: (select_count + filter_count + join_count) as f64 >= 2.0 * mean && mean > 0.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch;

    fn gen() -> WorkloadGenerator {
        WorkloadGenerator::new(tpch::schema(), tpch::default_templates())
    }

    #[test]
    fn zipf_cdf_is_monotone_and_skewed() {
        let cdf = Popularity::Zipf { exponent: 1.1 }.cdf(100);
        assert_eq!(cdf.len(), 100);
        assert_eq!(cdf[99], 1.0);
        for i in 1..100 {
            assert!(cdf[i] >= cdf[i - 1]);
        }
        // Rank 0 alone carries far more than the uniform 1%.
        assert!(cdf[0] > 0.1, "zipf head share {}", cdf[0]);
        let u = Popularity::Uniform.cdf(100);
        assert!((u[0] - 0.01).abs() < 1e-12);
        assert!(Popularity::Uniform.cdf(0).is_empty());
    }

    #[test]
    fn shares_sum_to_one() {
        for p in [Popularity::Uniform, Popularity::Zipf { exponent: 0.9 }] {
            let total: f64 = (0..18).map(|r| p.share(r, 18)).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", p.label());
            assert_eq!(p.share(18, 18), 0.0);
        }
    }

    #[test]
    fn diurnal_curve_peaks_and_troughs() {
        let d = Diurnal::business();
        assert!((d.multiplier(14) - 1.0).abs() < 1e-12);
        assert!((d.multiplier(2) - 0.25).abs() < 1e-12);
        // Symmetric around the peak, wraps midnight.
        assert!((d.multiplier(10) - d.multiplier(18)).abs() < 1e-12);
        assert!(d.peak_hours().contains(&14));
        let flat = Diurnal::flat();
        for h in 0..48 {
            assert_eq!(flat.multiplier(h), 1.0);
        }
    }

    #[test]
    fn bursty_arrivals_average_above_one_and_are_pure() {
        let a = Arrivals::Bursty {
            tenants: 8,
            burst_every: 10,
            burst_len: 2,
            burst_mult: 5.0,
        };
        let ms: Vec<f64> = (0..40).map(|w| a.multiplier(w, 7)).collect();
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        assert!(mean > 1.0, "bursts must add load: mean {mean}");
        assert!(ms.iter().any(|&m| m > 1.0) && ms.iter().any(|&m| m >= 1.0));
        assert_eq!(a.multiplier(3, 7), a.multiplier(3, 7));
        assert_eq!(Arrivals::Steady.multiplier(3, 7), 1.0);
    }

    #[test]
    fn window_load_composes_curves() {
        let m = TrafficModel {
            diurnal: Diurnal::business(),
            ..TrafficModel::zipf(1.1, 4)
        };
        // Hour 14 is the peak, hour 2 the trough.
        assert!(m.window_load(14, 1000, 3) > m.window_load(2, 1000, 3));
        assert!(m.window_load(2, 0, 3) >= 1, "load floors at 1");
    }

    #[test]
    fn window_traffic_pool_is_deterministic_and_template_major() {
        let g = gen();
        let m = TrafficModel::zipf(1.1, 3);
        let a = m.window_traffic(&g, 0, 42).unwrap();
        let b = m.window_traffic(&g, 0, 42).unwrap();
        assert_eq!(a.distinct_queries(), 18 * 3);
        assert_eq!(a.templates(), 18);
        assert_eq!(a.slots(), 3);
        for i in 0..a.distinct_queries() {
            assert_eq!(a.query(i), b.query(i), "pool entry {i}");
            assert_eq!(a.template_of(i), i / 3);
        }
        // A different seed re-parameterizes the pool.
        let c = m.window_traffic(&g, 0, 43).unwrap();
        assert!((0..a.distinct_queries()).any(|i| a.query(i) != c.query(i)));
    }

    #[test]
    fn sampling_is_seed_stable_and_skew_concentrates() {
        let g = gen();
        let m = TrafficModel::zipf(1.1, 4);
        let tr = m.window_traffic(&g, 0, 9).unwrap();
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        let a: Vec<usize> = (0..1000).map(|_| tr.sample(&mut r1)).collect();
        let b: Vec<usize> = (0..1000).map(|_| tr.sample(&mut r2)).collect();
        assert_eq!(a, b, "same seed, same draw sequence");
        // Rank-0 template must dominate rank-17 under Zipf 1.1.
        let hot = a.iter().filter(|&&i| tr.template_of(i) == 0).count();
        let cold = a.iter().filter(|&&i| tr.template_of(i) == 17).count();
        assert!(hot > 5 * cold.max(1), "hot {hot} vs cold {cold}");
        assert!(tr.template_share(0) > tr.template_share(17));
    }

    #[test]
    fn sample_workload_aggregates_draws() {
        let g = gen();
        let m = TrafficModel::zipf(1.0, 2);
        let tr = m.window_traffic(&g, 1, 11).unwrap();
        let (w, draws) = tr.sample_workload(500, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(draws.iter().sum::<u64>(), 500);
        let total: u64 = w.iter().map(|wq| wq.frequency as u64).sum();
        assert_eq!(total, 500, "aggregation preserves the draw count");
        assert!(w.len() <= tr.distinct_queries());
    }

    #[test]
    fn drift_composition_rotates_the_live_pool() {
        let g = gen();
        let m = TrafficModel {
            drift: DriftSchedule::Rotate { span: 4, stride: 2 },
            ..TrafficModel::zipf(1.1, 2)
        };
        let w0 = m.window_traffic(&g, 0, 9).unwrap();
        let w1 = m.window_traffic(&g, 1, 9).unwrap();
        assert_eq!(w0.templates(), 4);
        assert_eq!(w1.templates(), 4);
        assert_eq!(w0.distinct_queries(), 8);
    }

    #[test]
    fn column_usage_profiles_hot_columns() {
        let g = gen();
        let m = TrafficModel::zipf(1.2, 2);
        let tr = m.window_traffic(&g, 0, 9).unwrap();
        let (w, _) = tr.sample_workload(2000, &mut ChaCha8Rng::seed_from_u64(1));
        let usage = column_usage(&w);
        assert!(!usage.is_empty());
        assert!(usage.iter().any(|u| u.filter_count > 0));
        assert!(usage.iter().any(|u| u.hot), "skew must surface hot columns");
        let total: u64 = usage.iter().map(|u| u.total()).sum();
        assert!(total > 0);
        // Sorted by column id.
        for pair in usage.windows(2) {
            assert!(pair[0].col.0 < pair[1].col.0);
        }
        assert!(column_usage(&Workload::new()).is_empty());
    }
}
