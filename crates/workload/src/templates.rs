//! Parameterized query templates.
//!
//! A [`TemplateSpec`] is the structural skeleton of a benchmark query:
//! tables, join edges, and *parameterizable* predicates whose literals are
//! drawn fresh at instantiation time. This mirrors how TPC query templates
//! work (`qgen`/`dsqgen` substitute random parameters) and how the paper's
//! TP baseline generates injection workloads ("each query is generated
//! from the Templates of the target workload").

use pipa_sim::{Aggregate, ColumnId, Predicate, Query, QueryBuilder, Schema, SimResult};
use rand::Rng;

/// How a predicate's literal(s) are drawn at instantiation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamKind {
    /// `col = ?` with `?` uniform over the domain.
    Eq,
    /// `col between ? and ?+w` with `w` uniform in `[width_min, width_max]`
    /// (domain fractions).
    Range {
        /// Minimum range width (domain fraction).
        width_min: f64,
        /// Maximum range width (domain fraction).
        width_max: f64,
    },
    /// `col <= ?` with `?` uniform in `[lo, hi]` fractions.
    Le {
        /// Lower bound on the drawn fraction.
        lo: f64,
        /// Upper bound on the drawn fraction.
        hi: f64,
    },
    /// `col >= ?` with `?` uniform in `[lo, hi]` fractions.
    Ge {
        /// Lower bound on the drawn fraction.
        lo: f64,
        /// Upper bound on the drawn fraction.
        hi: f64,
    },
    /// `col in (?, ... k values)`.
    In {
        /// Number of IN-list members.
        k: usize,
    },
}

/// One parameterizable predicate slot.
#[derive(Debug, Clone)]
pub struct ParamPredicate {
    /// Filtered column (by name; resolved against the schema).
    pub column: String,
    /// Literal-drawing rule.
    pub kind: ParamKind,
}

/// Shorthand constructor for a [`ParamPredicate`].
pub fn pred(column: &str, kind: ParamKind) -> ParamPredicate {
    ParamPredicate {
        column: column.to_string(),
        kind,
    }
}

/// Convert a name list into owned strings.
pub fn names(xs: &[&str]) -> Vec<String> {
    xs.iter().map(|x| x.to_string()).collect()
}

/// Aggregate slot in a template.
#[derive(Debug, Clone)]
pub enum AggSpec {
    /// `count(*)`.
    CountStar,
    /// `sum(col)`.
    Sum(String),
    /// `avg(col)`.
    Avg(String),
    /// `min(col)`.
    Min(String),
    /// `max(col)`.
    Max(String),
}

/// Shorthand for [`AggSpec::Sum`].
pub fn sum(c: &str) -> AggSpec {
    AggSpec::Sum(c.to_string())
}

/// Shorthand for [`AggSpec::Avg`].
pub fn avg(c: &str) -> AggSpec {
    AggSpec::Avg(c.to_string())
}

/// Shorthand for [`AggSpec::Min`].
pub fn min_of(c: &str) -> AggSpec {
    AggSpec::Min(c.to_string())
}

/// Shorthand for [`AggSpec::Max`].
pub fn max_of(c: &str) -> AggSpec {
    AggSpec::Max(c.to_string())
}

/// A benchmark query template.
#[derive(Debug, Clone)]
pub struct TemplateSpec {
    /// Template number within its benchmark (1-based, e.g. TPC-H Q6 = 6).
    pub id: usize,
    /// Short label, e.g. `"q6_forecast_revenue"`.
    pub label: String,
    /// Join edges as `(left column, right column)` names. Tables are
    /// implied by the referenced columns.
    pub joins: Vec<(String, String)>,
    /// Parameterized predicates.
    pub predicates: Vec<ParamPredicate>,
    /// Plain projected columns.
    pub select: Vec<String>,
    /// Aggregates.
    pub aggregates: Vec<AggSpec>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
    /// ORDER BY columns.
    pub order_by: Vec<String>,
}

impl TemplateSpec {
    /// Instantiate with fresh random parameters.
    pub fn instantiate<R: Rng + ?Sized>(&self, schema: &Schema, rng: &mut R) -> SimResult<Query> {
        let col = |n: &str| schema.column_id(n);
        let mut b = QueryBuilder::new();
        for (l, r) in &self.joins {
            b = b.join(schema, col(l)?, col(r)?);
        }
        for p in &self.predicates {
            b = b.filter(schema, instantiate_predicate(col(&p.column)?, p.kind, rng));
        }
        for s in &self.select {
            let c = col(s)?;
            b = b.table(schema.table_of(c)).select(c);
        }
        for a in &self.aggregates {
            let agg = match a {
                AggSpec::CountStar => Aggregate::CountStar,
                AggSpec::Sum(c) => Aggregate::Sum(col(c)?),
                AggSpec::Avg(c) => Aggregate::Avg(col(c)?),
                AggSpec::Min(c) => Aggregate::Min(col(c)?),
                AggSpec::Max(c) => Aggregate::Max(col(c)?),
            };
            if let Some(c) = agg.column() {
                b = b.table(schema.table_of(c));
            }
            b = b.aggregate(agg);
        }
        for g in &self.group_by {
            b = b.group_by(col(g)?);
        }
        for o in &self.order_by {
            b = b.order_by(col(o)?);
        }
        b.build(schema)
    }

    /// Columns this template can filter on (its indexable surface).
    pub fn filter_column_names(&self) -> Vec<&str> {
        self.predicates.iter().map(|p| p.column.as_str()).collect()
    }
}

/// Draw a concrete predicate for a slot.
pub fn instantiate_predicate<R: Rng + ?Sized>(
    col: ColumnId,
    kind: ParamKind,
    rng: &mut R,
) -> Predicate {
    match kind {
        ParamKind::Eq => Predicate::eq(col, rng.gen::<f64>()),
        ParamKind::Range {
            width_min,
            width_max,
        } => {
            let w = rng.gen_range(width_min..=width_max);
            let lo = rng.gen_range(0.0..=(1.0 - w).max(0.0));
            Predicate::between(col, lo, lo + w)
        }
        ParamKind::Le { lo, hi } => Predicate::le(col, rng.gen_range(lo..=hi)),
        ParamKind::Ge { lo, hi } => Predicate::ge(col, rng.gen_range(lo..=hi)),
        ParamKind::In { k } => {
            let fracs = (0..k.max(1)).map(|_| rng.gen::<f64>()).collect();
            Predicate::in_list(col, fracs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_sim::DataType;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            "orders",
            1000,
            &[
                ("o_orderkey", DataType::BigInt),
                ("o_custkey", DataType::Int),
                ("o_totalprice", DataType::Decimal),
            ],
        );
        s.add_table(
            "customer",
            100,
            &[
                ("c_custkey", DataType::Int),
                ("c_acctbal", DataType::Decimal),
            ],
        );
        s
    }

    fn template() -> TemplateSpec {
        TemplateSpec {
            id: 1,
            label: "toy".to_string(),
            joins: vec![("o_custkey".to_string(), "c_custkey".to_string())],
            predicates: vec![
                pred(
                    "o_totalprice",
                    ParamKind::Range {
                        width_min: 0.1,
                        width_max: 0.2,
                    },
                ),
                pred("c_acctbal", ParamKind::Ge { lo: 0.5, hi: 0.9 }),
            ],
            select: names(&["o_orderkey"]),
            aggregates: vec![sum("o_totalprice")],
            group_by: names(&["o_orderkey"]),
            order_by: names(&["o_orderkey"]),
        }
    }

    #[test]
    fn instantiation_produces_valid_queries() {
        let s = schema();
        let t = template();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            let q = t.instantiate(&s, &mut rng).unwrap();
            assert!(q.validate(&s).is_ok());
            assert_eq!(q.tables.len(), 2);
            assert_eq!(q.predicates.len(), 2);
        }
    }

    #[test]
    fn instantiations_vary_parameters() {
        let s = schema();
        let t = template();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = t.instantiate(&s, &mut rng).unwrap();
        let b = t.instantiate(&s, &mut rng).unwrap();
        assert_ne!(a.predicates, b.predicates, "fresh literals each time");
    }

    #[test]
    fn deterministic_under_seed() {
        let s = schema();
        let t = template();
        let a = t
            .instantiate(&s, &mut ChaCha8Rng::seed_from_u64(9))
            .unwrap();
        let b = t
            .instantiate(&s, &mut ChaCha8Rng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn filter_surface_lists_predicates() {
        assert_eq!(
            template().filter_column_names(),
            vec!["o_totalprice", "c_acctbal"]
        );
    }

    #[test]
    fn unknown_column_is_an_error() {
        let s = schema();
        let mut t = template();
        t.predicates.push(pred("nonexistent", ParamKind::Eq));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(t.instantiate(&s, &mut rng).is_err());
    }

    #[test]
    fn in_list_has_k_members() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = instantiate_predicate(ColumnId(0), ParamKind::In { k: 4 }, &mut rng);
        match p.op {
            pipa_sim::PredOp::In(ref v) => assert_eq!(v.len(), 4),
            _ => panic!("expected IN"),
        }
    }
}
