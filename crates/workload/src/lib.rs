//! # pipa-workload — benchmark schemas, statistics, and workload generation
//!
//! Encodes the two analytic benchmarks the paper evaluates on:
//!
//! * [`tpch`] — the full 8-table / 61-column TPC-H schema, per-column
//!   statistics scaled by scale factor, and structural equivalents of the
//!   22 query templates (18 used by default, as in SWIRL);
//! * [`tpcds`] — the 24-table / 425-column TPC-DS schema with a
//!   deterministic pool of 99 derived templates (90 used by default).
//!
//! [`generator`] produces *normal workloads* the way the paper does:
//! every template is instantiated once and assigned a uniformly random
//! frequency. [`Benchmark`] bundles everything behind one enum.

#![warn(missing_docs)]

pub mod drift;
pub mod generator;
pub mod templates;
pub mod tpcds;
pub mod tpch;
pub mod traffic;

pub use drift::DriftSchedule;
pub use generator::{generate_normal_workload, WorkloadGenerator};
pub use templates::{AggSpec, ParamKind, ParamPredicate, TemplateSpec};
pub use traffic::{column_usage, Arrivals, ColumnUsage, Diurnal, Popularity, TrafficModel, WindowTraffic};

use pipa_sim::{Database, Schema};

/// The benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// TPC-H (8 tables, 61 columns, N = 18).
    TpcH,
    /// TPC-DS (24 tables, 425 columns, N = 90).
    TpcDs,
}

impl Benchmark {
    /// The benchmark's schema.
    pub fn schema(self) -> Schema {
        match self {
            Benchmark::TpcH => tpch::schema(),
            Benchmark::TpcDs => tpcds::schema(),
        }
    }

    /// Query templates (full pool).
    pub fn templates(self) -> Vec<TemplateSpec> {
        match self {
            Benchmark::TpcH => tpch::templates(),
            Benchmark::TpcDs => tpcds::templates(),
        }
    }

    /// Default template subset used for normal workloads (the paper's
    /// `N = 18` / `N = 90`).
    pub fn default_templates(self) -> Vec<TemplateSpec> {
        match self {
            Benchmark::TpcH => tpch::default_templates(),
            Benchmark::TpcDs => tpcds::default_templates(),
        }
    }

    /// Default normal-workload size.
    pub fn default_workload_size(self) -> usize {
        match self {
            Benchmark::TpcH => tpch::DEFAULT_WORKLOAD_SIZE,
            Benchmark::TpcDs => tpcds::DEFAULT_WORKLOAD_SIZE,
        }
    }

    /// Short name (`"tpch"` / `"tpcds"`).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::TpcH => "tpch",
            Benchmark::TpcDs => "tpcds",
        }
    }

    /// Build a [`Database`] for this benchmark at a scale factor, with
    /// statistics matched to the benchmark's data characteristics.
    ///
    /// `materialize` optionally provides `(seed, row_cap)` to generate
    /// synthetic data for actual execution. The paper's "1GB" and "10GB"
    /// configurations correspond to `scale = 1.0` and `scale = 10.0`.
    pub fn database(self, scale: f64, materialize: Option<(u64, u32)>) -> Database {
        let schema = self.schema();
        let stats = match self {
            Benchmark::TpcH => tpch::column_stats(&schema, scale),
            Benchmark::TpcDs => tpcds::column_stats(&schema, scale),
        };
        let mut b = Database::builder(schema).scale(scale).column_stats(stats);
        if let Some((seed, cap)) = materialize {
            b = b.materialize(seed, cap);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_benchmarks_build_databases() {
        for b in [Benchmark::TpcH, Benchmark::TpcDs] {
            let db = b.database(1.0, None);
            assert!(db.schema().num_columns() > 50, "{}", b.name());
            assert_eq!(db.column_stats().len(), db.schema().num_columns());
        }
    }

    #[test]
    fn default_sizes_match_paper() {
        assert_eq!(Benchmark::TpcH.default_workload_size(), 18);
        assert_eq!(Benchmark::TpcDs.default_workload_size(), 90);
        assert_eq!(Benchmark::TpcH.default_templates().len(), 18);
        assert_eq!(Benchmark::TpcDs.default_templates().len(), 90);
    }
}
