//! TPC-DS: the full 24-table, 425-column schema, statistics, and a
//! deterministic pool of 99 derived query templates (90 used by default,
//! matching the paper's `N = 90`).
//!
//! The official TPC-DS templates rely heavily on subqueries and window
//! functions outside our AST; following the substitution policy in
//! DESIGN.md, the template pool is *derived*: star-join skeletons over the
//! seven fact tables with filters drawn from curated per-dimension filter
//! surfaces. The pool is generated once with a fixed seed, so "template
//! 37" means the same query shape in every run — exactly like a numbered
//! benchmark template. What matters for the paper's experiments is that
//! the workload touches a wide, realistic column surface; the tests pin
//! that down.

use crate::templates::{avg, pred, sum, AggSpec, ParamKind, TemplateSpec};
use pipa_sim::{ColumnStats, DataType, Schema};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of indexable columns in our TPC-DS encoding.
pub const NUM_COLUMNS: usize = 425;

/// Default normal-workload size used by the paper on TPC-DS (`N = 90`).
pub const DEFAULT_WORKLOAD_SIZE: usize = 90;

/// Seed fixing the derived template pool.
const TEMPLATE_POOL_SEED: u64 = 0x7_9cd5;

/// Build the TPC-DS schema with base row counts at scale factor 1.
pub fn schema() -> Schema {
    use DataType::*;
    let mut s = Schema::new();
    s.add_table(
        "store_sales",
        2_880_404,
        &[
            ("ss_sold_date_sk", Int),
            ("ss_sold_time_sk", Int),
            ("ss_item_sk", Int),
            ("ss_customer_sk", Int),
            ("ss_cdemo_sk", Int),
            ("ss_hdemo_sk", Int),
            ("ss_addr_sk", Int),
            ("ss_store_sk", Int),
            ("ss_promo_sk", Int),
            ("ss_ticket_number", BigInt),
            ("ss_quantity", Int),
            ("ss_wholesale_cost", Decimal),
            ("ss_list_price", Decimal),
            ("ss_sales_price", Decimal),
            ("ss_ext_discount_amt", Decimal),
            ("ss_ext_sales_price", Decimal),
            ("ss_ext_wholesale_cost", Decimal),
            ("ss_ext_list_price", Decimal),
            ("ss_ext_tax", Decimal),
            ("ss_coupon_amt", Decimal),
            ("ss_net_paid", Decimal),
            ("ss_net_paid_inc_tax", Decimal),
            ("ss_net_profit", Decimal),
        ],
    );
    s.add_table(
        "store_returns",
        287_514,
        &[
            ("sr_returned_date_sk", Int),
            ("sr_return_time_sk", Int),
            ("sr_item_sk", Int),
            ("sr_customer_sk", Int),
            ("sr_cdemo_sk", Int),
            ("sr_hdemo_sk", Int),
            ("sr_addr_sk", Int),
            ("sr_store_sk", Int),
            ("sr_reason_sk", Int),
            ("sr_ticket_number", BigInt),
            ("sr_return_quantity", Int),
            ("sr_return_amt", Decimal),
            ("sr_return_tax", Decimal),
            ("sr_return_amt_inc_tax", Decimal),
            ("sr_fee", Decimal),
            ("sr_return_ship_cost", Decimal),
            ("sr_refunded_cash", Decimal),
            ("sr_reversed_charge", Decimal),
            ("sr_store_credit", Decimal),
            ("sr_net_loss", Decimal),
        ],
    );
    s.add_table(
        "catalog_sales",
        1_441_548,
        &[
            ("cs_sold_date_sk", Int),
            ("cs_sold_time_sk", Int),
            ("cs_ship_date_sk", Int),
            ("cs_bill_customer_sk", Int),
            ("cs_bill_cdemo_sk", Int),
            ("cs_bill_hdemo_sk", Int),
            ("cs_bill_addr_sk", Int),
            ("cs_ship_customer_sk", Int),
            ("cs_ship_cdemo_sk", Int),
            ("cs_ship_hdemo_sk", Int),
            ("cs_ship_addr_sk", Int),
            ("cs_call_center_sk", Int),
            ("cs_catalog_page_sk", Int),
            ("cs_ship_mode_sk", Int),
            ("cs_warehouse_sk", Int),
            ("cs_item_sk", Int),
            ("cs_promo_sk", Int),
            ("cs_order_number", BigInt),
            ("cs_quantity", Int),
            ("cs_wholesale_cost", Decimal),
            ("cs_list_price", Decimal),
            ("cs_sales_price", Decimal),
            ("cs_ext_discount_amt", Decimal),
            ("cs_ext_sales_price", Decimal),
            ("cs_ext_wholesale_cost", Decimal),
            ("cs_ext_list_price", Decimal),
            ("cs_ext_tax", Decimal),
            ("cs_coupon_amt", Decimal),
            ("cs_ext_ship_cost", Decimal),
            ("cs_net_paid", Decimal),
            ("cs_net_paid_inc_tax", Decimal),
            ("cs_net_paid_inc_ship", Decimal),
            ("cs_net_paid_inc_ship_tax", Decimal),
            ("cs_net_profit", Decimal),
        ],
    );
    s.add_table(
        "catalog_returns",
        144_067,
        &[
            ("cr_returned_date_sk", Int),
            ("cr_returned_time_sk", Int),
            ("cr_item_sk", Int),
            ("cr_refunded_customer_sk", Int),
            ("cr_refunded_cdemo_sk", Int),
            ("cr_refunded_hdemo_sk", Int),
            ("cr_refunded_addr_sk", Int),
            ("cr_returning_customer_sk", Int),
            ("cr_returning_cdemo_sk", Int),
            ("cr_returning_hdemo_sk", Int),
            ("cr_returning_addr_sk", Int),
            ("cr_call_center_sk", Int),
            ("cr_catalog_page_sk", Int),
            ("cr_ship_mode_sk", Int),
            ("cr_warehouse_sk", Int),
            ("cr_reason_sk", Int),
            ("cr_order_number", BigInt),
            ("cr_return_quantity", Int),
            ("cr_return_amount", Decimal),
            ("cr_return_tax", Decimal),
            ("cr_return_amt_inc_tax", Decimal),
            ("cr_fee", Decimal),
            ("cr_return_ship_cost", Decimal),
            ("cr_refunded_cash", Decimal),
            ("cr_reversed_charge", Decimal),
            ("cr_store_credit", Decimal),
            ("cr_net_loss", Decimal),
        ],
    );
    s.add_table(
        "web_sales",
        719_384,
        &[
            ("ws_sold_date_sk", Int),
            ("ws_sold_time_sk", Int),
            ("ws_ship_date_sk", Int),
            ("ws_item_sk", Int),
            ("ws_bill_customer_sk", Int),
            ("ws_bill_cdemo_sk", Int),
            ("ws_bill_hdemo_sk", Int),
            ("ws_bill_addr_sk", Int),
            ("ws_ship_customer_sk", Int),
            ("ws_ship_cdemo_sk", Int),
            ("ws_ship_hdemo_sk", Int),
            ("ws_ship_addr_sk", Int),
            ("ws_web_page_sk", Int),
            ("ws_web_site_sk", Int),
            ("ws_ship_mode_sk", Int),
            ("ws_warehouse_sk", Int),
            ("ws_promo_sk", Int),
            ("ws_order_number", BigInt),
            ("ws_quantity", Int),
            ("ws_wholesale_cost", Decimal),
            ("ws_list_price", Decimal),
            ("ws_sales_price", Decimal),
            ("ws_ext_discount_amt", Decimal),
            ("ws_ext_sales_price", Decimal),
            ("ws_ext_wholesale_cost", Decimal),
            ("ws_ext_list_price", Decimal),
            ("ws_ext_tax", Decimal),
            ("ws_coupon_amt", Decimal),
            ("ws_ext_ship_cost", Decimal),
            ("ws_net_paid", Decimal),
            ("ws_net_paid_inc_tax", Decimal),
            ("ws_net_paid_inc_ship", Decimal),
            ("ws_net_paid_inc_ship_tax", Decimal),
            ("ws_net_profit", Decimal),
        ],
    );
    s.add_table(
        "web_returns",
        71_763,
        &[
            ("wr_returned_date_sk", Int),
            ("wr_returned_time_sk", Int),
            ("wr_item_sk", Int),
            ("wr_refunded_customer_sk", Int),
            ("wr_refunded_cdemo_sk", Int),
            ("wr_refunded_hdemo_sk", Int),
            ("wr_refunded_addr_sk", Int),
            ("wr_returning_customer_sk", Int),
            ("wr_returning_cdemo_sk", Int),
            ("wr_returning_hdemo_sk", Int),
            ("wr_returning_addr_sk", Int),
            ("wr_web_page_sk", Int),
            ("wr_reason_sk", Int),
            ("wr_order_number", BigInt),
            ("wr_return_quantity", Int),
            ("wr_return_amt", Decimal),
            ("wr_return_tax", Decimal),
            ("wr_return_amt_inc_tax", Decimal),
            ("wr_fee", Decimal),
            ("wr_return_ship_cost", Decimal),
            ("wr_refunded_cash", Decimal),
            ("wr_reversed_charge", Decimal),
            ("wr_account_credit", Decimal),
            ("wr_net_loss", Decimal),
        ],
    );
    s.add_table(
        "inventory",
        11_745_000,
        &[
            ("inv_date_sk", Int),
            ("inv_item_sk", Int),
            ("inv_warehouse_sk", Int),
            ("inv_quantity_on_hand", Int),
        ],
    );
    s.add_table(
        "store",
        12,
        &[
            ("s_store_sk", Int),
            ("s_store_id", Char(16)),
            ("s_rec_start_date", Date),
            ("s_rec_end_date", Date),
            ("s_closed_date_sk", Int),
            ("s_store_name", Varchar(50)),
            ("s_number_employees", Int),
            ("s_floor_space", Int),
            ("s_hours", Char(20)),
            ("s_manager", Varchar(40)),
            ("s_market_id", Int),
            ("s_geography_class", Varchar(100)),
            ("s_market_desc", Varchar(100)),
            ("s_market_manager", Varchar(40)),
            ("s_division_id", Int),
            ("s_division_name", Varchar(50)),
            ("s_company_id", Int),
            ("s_company_name", Varchar(50)),
            ("s_street_number", Varchar(10)),
            ("s_street_name", Varchar(60)),
            ("s_street_type", Char(15)),
            ("s_suite_number", Char(10)),
            ("s_city", Varchar(60)),
            ("s_county", Varchar(30)),
            ("s_state", Char(2)),
            ("s_zip", Char(10)),
            ("s_country", Varchar(20)),
            ("s_gmt_offset", Decimal),
            ("s_tax_precentage", Decimal),
        ],
    );
    s.add_table(
        "call_center",
        6,
        &[
            ("cc_call_center_sk", Int),
            ("cc_call_center_id", Char(16)),
            ("cc_rec_start_date", Date),
            ("cc_rec_end_date", Date),
            ("cc_closed_date_sk", Int),
            ("cc_open_date_sk", Int),
            ("cc_name", Varchar(50)),
            ("cc_class", Varchar(50)),
            ("cc_employees", Int),
            ("cc_sq_ft", Int),
            ("cc_hours", Char(20)),
            ("cc_manager", Varchar(40)),
            ("cc_mkt_id", Int),
            ("cc_mkt_class", Char(50)),
            ("cc_mkt_desc", Varchar(100)),
            ("cc_market_manager", Varchar(40)),
            ("cc_division", Int),
            ("cc_division_name", Varchar(50)),
            ("cc_company", Int),
            ("cc_company_name", Char(50)),
            ("cc_street_number", Char(10)),
            ("cc_street_name", Varchar(60)),
            ("cc_street_type", Char(15)),
            ("cc_suite_number", Char(10)),
            ("cc_city", Varchar(60)),
            ("cc_county", Varchar(30)),
            ("cc_state", Char(2)),
            ("cc_zip", Char(10)),
            ("cc_country", Varchar(20)),
            ("cc_gmt_offset", Decimal),
            ("cc_tax_percentage", Decimal),
        ],
    );
    s.add_table(
        "catalog_page",
        11_718,
        &[
            ("cp_catalog_page_sk", Int),
            ("cp_catalog_page_id", Char(16)),
            ("cp_start_date_sk", Int),
            ("cp_end_date_sk", Int),
            ("cp_department", Varchar(50)),
            ("cp_catalog_number", Int),
            ("cp_catalog_page_number", Int),
            ("cp_description", Varchar(100)),
            ("cp_type", Varchar(100)),
        ],
    );
    s.add_table(
        "web_site",
        30,
        &[
            ("web_site_sk", Int),
            ("web_site_id", Char(16)),
            ("web_rec_start_date", Date),
            ("web_rec_end_date", Date),
            ("web_name", Varchar(50)),
            ("web_open_date_sk", Int),
            ("web_close_date_sk", Int),
            ("web_class", Varchar(50)),
            ("web_manager", Varchar(40)),
            ("web_mkt_id", Int),
            ("web_mkt_class", Varchar(50)),
            ("web_mkt_desc", Varchar(100)),
            ("web_market_manager", Varchar(40)),
            ("web_company_id", Int),
            ("web_company_name", Char(50)),
            ("web_street_number", Char(10)),
            ("web_street_name", Varchar(60)),
            ("web_street_type", Char(15)),
            ("web_suite_number", Char(10)),
            ("web_city", Varchar(60)),
            ("web_county", Varchar(30)),
            ("web_state", Char(2)),
            ("web_zip", Char(10)),
            ("web_country", Varchar(20)),
            ("web_gmt_offset", Decimal),
            ("web_tax_percentage", Decimal),
        ],
    );
    s.add_table(
        "web_page",
        60,
        &[
            ("wp_web_page_sk", Int),
            ("wp_web_page_id", Char(16)),
            ("wp_rec_start_date", Date),
            ("wp_rec_end_date", Date),
            ("wp_creation_date_sk", Int),
            ("wp_access_date_sk", Int),
            ("wp_autogen_flag", Char(1)),
            ("wp_customer_sk", Int),
            ("wp_url", Varchar(100)),
            ("wp_type", Char(50)),
            ("wp_char_count", Int),
            ("wp_link_count", Int),
            ("wp_image_count", Int),
            ("wp_max_ad_count", Int),
        ],
    );
    s.add_table(
        "warehouse",
        5,
        &[
            ("w_warehouse_sk", Int),
            ("w_warehouse_id", Char(16)),
            ("w_warehouse_name", Varchar(20)),
            ("w_warehouse_sq_ft", Int),
            ("w_street_number", Char(10)),
            ("w_street_name", Varchar(60)),
            ("w_street_type", Char(15)),
            ("w_suite_number", Char(10)),
            ("w_city", Varchar(60)),
            ("w_county", Varchar(30)),
            ("w_state", Char(2)),
            ("w_zip", Char(10)),
            ("w_country", Varchar(20)),
            ("w_gmt_offset", Decimal),
        ],
    );
    s.add_table(
        "customer",
        100_000,
        &[
            ("c_customer_sk", Int),
            ("c_customer_id", Char(16)),
            ("c_current_cdemo_sk", Int),
            ("c_current_hdemo_sk", Int),
            ("c_current_addr_sk", Int),
            ("c_first_shipto_date_sk", Int),
            ("c_first_sales_date_sk", Int),
            ("c_salutation", Char(10)),
            ("c_first_name", Char(20)),
            ("c_last_name", Char(30)),
            ("c_preferred_cust_flag", Char(1)),
            ("c_birth_day", Int),
            ("c_birth_month", Int),
            ("c_birth_year", Int),
            ("c_birth_country", Varchar(20)),
            ("c_login", Char(13)),
            ("c_email_address", Char(50)),
            ("c_last_review_date_sk", Int),
        ],
    );
    s.add_table(
        "customer_address",
        50_000,
        &[
            ("ca_address_sk", Int),
            ("ca_address_id", Char(16)),
            ("ca_street_number", Char(10)),
            ("ca_street_name", Varchar(60)),
            ("ca_street_type", Char(15)),
            ("ca_suite_number", Char(10)),
            ("ca_city", Varchar(60)),
            ("ca_county", Varchar(30)),
            ("ca_state", Char(2)),
            ("ca_zip", Char(10)),
            ("ca_country", Varchar(20)),
            ("ca_gmt_offset", Decimal),
            ("ca_location_type", Char(20)),
        ],
    );
    s.add_table(
        "customer_demographics",
        1_920_800,
        &[
            ("cd_demo_sk", Int),
            ("cd_gender", Char(1)),
            ("cd_marital_status", Char(1)),
            ("cd_education_status", Char(20)),
            ("cd_purchase_estimate", Int),
            ("cd_credit_rating", Char(10)),
            ("cd_dep_count", Int),
            ("cd_dep_employed_count", Int),
            ("cd_dep_college_count", Int),
        ],
    );
    s.add_table(
        "date_dim",
        73_049,
        &[
            ("d_date_sk", Int),
            ("d_date_id", Char(16)),
            ("d_date", Date),
            ("d_month_seq", Int),
            ("d_week_seq", Int),
            ("d_quarter_seq", Int),
            ("d_year", Int),
            ("d_dow", Int),
            ("d_moy", Int),
            ("d_dom", Int),
            ("d_qoy", Int),
            ("d_fy_year", Int),
            ("d_fy_quarter_seq", Int),
            ("d_fy_week_seq", Int),
            ("d_day_name", Char(9)),
            ("d_quarter_name", Char(6)),
            ("d_holiday", Char(1)),
            ("d_weekend", Char(1)),
            ("d_following_holiday", Char(1)),
            ("d_first_dom", Int),
            ("d_last_dom", Int),
            ("d_same_day_ly", Int),
            ("d_same_day_lq", Int),
            ("d_current_day", Char(1)),
            ("d_current_week", Char(1)),
            ("d_current_month", Char(1)),
            ("d_current_quarter", Char(1)),
            ("d_current_year", Char(1)),
        ],
    );
    s.add_table(
        "household_demographics",
        7_200,
        &[
            ("hd_demo_sk", Int),
            ("hd_income_band_sk", Int),
            ("hd_buy_potential", Char(15)),
            ("hd_dep_count", Int),
            ("hd_vehicle_count", Int),
        ],
    );
    s.add_table(
        "income_band",
        20,
        &[
            ("ib_income_band_sk", Int),
            ("ib_lower_bound", Int),
            ("ib_upper_bound", Int),
        ],
    );
    s.add_table(
        "item",
        18_000,
        &[
            ("i_item_sk", Int),
            ("i_item_id", Char(16)),
            ("i_rec_start_date", Date),
            ("i_rec_end_date", Date),
            ("i_item_desc", Varchar(100)),
            ("i_current_price", Decimal),
            ("i_wholesale_cost", Decimal),
            ("i_brand_id", Int),
            ("i_brand", Char(50)),
            ("i_class_id", Int),
            ("i_class", Char(50)),
            ("i_category_id", Int),
            ("i_category", Char(50)),
            ("i_manufact_id", Int),
            ("i_manufact", Char(50)),
            ("i_size", Char(20)),
            ("i_formulation", Char(20)),
            ("i_color", Char(20)),
            ("i_units", Char(10)),
            ("i_container", Char(10)),
            ("i_manager_id", Int),
            ("i_product_name", Char(50)),
        ],
    );
    s.add_table(
        "promotion",
        300,
        &[
            ("p_promo_sk", Int),
            ("p_promo_id", Char(16)),
            ("p_start_date_sk", Int),
            ("p_end_date_sk", Int),
            ("p_item_sk", Int),
            ("p_cost", Decimal),
            ("p_response_target", Int),
            ("p_promo_name", Char(50)),
            ("p_channel_dmail", Char(1)),
            ("p_channel_email", Char(1)),
            ("p_channel_catalog", Char(1)),
            ("p_channel_tv", Char(1)),
            ("p_channel_radio", Char(1)),
            ("p_channel_press", Char(1)),
            ("p_channel_event", Char(1)),
            ("p_channel_demo", Char(1)),
            ("p_channel_details", Varchar(100)),
            ("p_purpose", Char(15)),
            ("p_discount_active", Char(1)),
        ],
    );
    s.add_table(
        "reason",
        35,
        &[
            ("r_reason_sk", Int),
            ("r_reason_id", Char(16)),
            ("r_reason_desc", Char(100)),
        ],
    );
    s.add_table(
        "ship_mode",
        20,
        &[
            ("sm_ship_mode_sk", Int),
            ("sm_ship_mode_id", Char(16)),
            ("sm_type", Char(30)),
            ("sm_code", Char(10)),
            ("sm_carrier", Char(20)),
            ("sm_contract", Char(20)),
        ],
    );
    s.add_table(
        "time_dim",
        86_400,
        &[
            ("t_time_sk", Int),
            ("t_time_id", Char(16)),
            ("t_time", Int),
            ("t_hour", Int),
            ("t_minute", Int),
            ("t_second", Int),
            ("t_am_pm", Char(2)),
            ("t_shift", Char(20)),
            ("t_sub_shift", Char(20)),
            ("t_meal_time", Char(20)),
        ],
    );
    for (from, to) in foreign_keys() {
        s.add_foreign_key(from, to);
    }
    debug_assert_eq!(s.num_columns(), NUM_COLUMNS);
    s
}

/// The foreign-key edges our templates navigate (fact → dimension).
fn foreign_keys() -> Vec<(&'static str, &'static str)> {
    vec![
        // store_sales
        ("ss_sold_date_sk", "d_date_sk"),
        ("ss_sold_time_sk", "t_time_sk"),
        ("ss_item_sk", "i_item_sk"),
        ("ss_customer_sk", "c_customer_sk"),
        ("ss_cdemo_sk", "cd_demo_sk"),
        ("ss_hdemo_sk", "hd_demo_sk"),
        ("ss_addr_sk", "ca_address_sk"),
        ("ss_store_sk", "s_store_sk"),
        ("ss_promo_sk", "p_promo_sk"),
        // store_returns
        ("sr_returned_date_sk", "d_date_sk"),
        ("sr_item_sk", "i_item_sk"),
        ("sr_customer_sk", "c_customer_sk"),
        ("sr_store_sk", "s_store_sk"),
        ("sr_reason_sk", "r_reason_sk"),
        // catalog_sales
        ("cs_sold_date_sk", "d_date_sk"),
        ("cs_ship_date_sk", "d_date_sk"),
        ("cs_bill_customer_sk", "c_customer_sk"),
        ("cs_bill_cdemo_sk", "cd_demo_sk"),
        ("cs_bill_addr_sk", "ca_address_sk"),
        ("cs_call_center_sk", "cc_call_center_sk"),
        ("cs_catalog_page_sk", "cp_catalog_page_sk"),
        ("cs_ship_mode_sk", "sm_ship_mode_sk"),
        ("cs_warehouse_sk", "w_warehouse_sk"),
        ("cs_item_sk", "i_item_sk"),
        ("cs_promo_sk", "p_promo_sk"),
        // catalog_returns
        ("cr_returned_date_sk", "d_date_sk"),
        ("cr_item_sk", "i_item_sk"),
        ("cr_refunded_customer_sk", "c_customer_sk"),
        ("cr_reason_sk", "r_reason_sk"),
        ("cr_warehouse_sk", "w_warehouse_sk"),
        // web_sales
        ("ws_sold_date_sk", "d_date_sk"),
        ("ws_item_sk", "i_item_sk"),
        ("ws_bill_customer_sk", "c_customer_sk"),
        ("ws_web_page_sk", "wp_web_page_sk"),
        ("ws_web_site_sk", "web_site_sk"),
        ("ws_ship_mode_sk", "sm_ship_mode_sk"),
        ("ws_warehouse_sk", "w_warehouse_sk"),
        ("ws_promo_sk", "p_promo_sk"),
        // web_returns
        ("wr_returned_date_sk", "d_date_sk"),
        ("wr_item_sk", "i_item_sk"),
        ("wr_refunded_customer_sk", "c_customer_sk"),
        ("wr_web_page_sk", "wp_web_page_sk"),
        ("wr_reason_sk", "r_reason_sk"),
        // inventory
        ("inv_date_sk", "d_date_sk"),
        ("inv_item_sk", "i_item_sk"),
        ("inv_warehouse_sk", "w_warehouse_sk"),
        // snowflake
        ("c_current_cdemo_sk", "cd_demo_sk"),
        ("c_current_hdemo_sk", "hd_demo_sk"),
        ("c_current_addr_sk", "ca_address_sk"),
        ("hd_income_band_sk", "ib_income_band_sk"),
    ]
}

/// TPC-DS column statistics at a given scale factor.
///
/// Rules: a table's surrogate key (`*_sk` first column) is unique and
/// heap-correlated; foreign-key `*_sk` columns inherit the referenced
/// key's NDV; fact-table date keys are correlated with heap order;
/// monetary columns get high NDV; curated categorical columns get their
/// spec domains; everything else falls back on type-based defaults.
pub fn column_stats(schema: &Schema, scale: f64) -> Vec<ColumnStats> {
    let sf = |n: u64| ((n as f64 * scale).round() as u64).max(1);
    // FK map: column name -> referenced table base rows.
    let fk_rows: std::collections::HashMap<&str, u64> = foreign_keys()
        .into_iter()
        .map(|(from, to)| {
            let to_col = schema.column_id(to).expect("fk target");
            let rows = schema.table(schema.table_of(to_col)).base_rows;
            (from, rows)
        })
        .collect();

    schema
        .columns()
        .iter()
        .map(|c| {
            let table = schema.table(c.table);
            let rows = table.base_rows;
            let name = c.name.as_str();
            let is_surrogate_key = table.columns.first().is_some_and(|&first| first == c.id);
            let scales = dimension_scales(&table.name);

            let (ndv, corr): (u64, f64) = if is_surrogate_key && name.ends_with("_sk") {
                (if scales { sf(rows) } else { rows }, 1.0)
            } else if let Some(&target_rows) = fk_rows.get(name) {
                let target_scales = !is_fixed_dimension_rows(target_rows);
                let nd = if target_scales {
                    sf(target_rows)
                } else {
                    target_rows
                };
                let corr = if name.contains("date_sk") { 0.9 } else { 0.0 };
                (nd, corr)
            } else if let Some(nd) = curated_ndv(name) {
                (nd, 0.0)
            } else {
                type_default_ndv(c.ty, if scales { sf(rows) } else { rows })
            };
            let mut st = ColumnStats::uniform(c.id, c.ty, ndv, 0, ndv as i64 - 1);
            st.correlation = corr;
            st
        })
        .collect()
}

/// Dimensions with fixed cardinality regardless of scale factor.
fn dimension_scales(table: &str) -> bool {
    !matches!(
        table,
        "store"
            | "call_center"
            | "web_site"
            | "web_page"
            | "warehouse"
            | "income_band"
            | "reason"
            | "ship_mode"
            | "date_dim"
            | "time_dim"
            | "customer_demographics"
            | "household_demographics"
    )
}

fn is_fixed_dimension_rows(rows: u64) -> bool {
    // The fixed dimensions above all have ≤ 1 920 800 rows and are matched
    // by exact row counts; anything at/below date_dim size that equals one
    // of the fixed tables' counts is treated as fixed.
    matches!(
        rows,
        12 | 6 | 30 | 60 | 5 | 20 | 35 | 73_049 | 86_400 | 1_920_800 | 7_200
    )
}

/// Curated NDVs for the categorical / semantic columns our templates
/// filter on (TPC-DS spec domains).
fn curated_ndv(name: &str) -> Option<u64> {
    Some(match name {
        "d_year" => 201,
        "d_moy" | "t_hour" => 24,
        "d_dow" => 7,
        "d_dom" => 31,
        "d_qoy" => 4,
        "d_month_seq" => 2400,
        "d_week_seq" | "d_fy_week_seq" => 10_436,
        "d_quarter_seq" | "d_fy_quarter_seq" => 801,
        "d_date" => 73_049,
        "d_holiday"
        | "d_weekend"
        | "d_following_holiday"
        | "d_current_day"
        | "d_current_week"
        | "d_current_month"
        | "d_current_quarter"
        | "d_current_year" => 2,
        "d_day_name" => 7,
        "d_quarter_name" => 804,
        "t_minute" | "t_second" => 60,
        "t_am_pm" => 2,
        "t_shift" | "t_sub_shift" => 3,
        "t_meal_time" => 4,
        "cd_gender" => 2,
        "cd_marital_status" => 5,
        "cd_education_status" => 7,
        "cd_purchase_estimate" => 20,
        "cd_credit_rating" => 4,
        "cd_dep_count" | "cd_dep_employed_count" | "cd_dep_college_count" => 7,
        "hd_buy_potential" => 6,
        "hd_dep_count" => 10,
        "hd_vehicle_count" => 6,
        "ib_lower_bound" | "ib_upper_bound" => 20,
        "i_brand_id" | "i_brand" => 1000,
        "i_class_id" | "i_class" => 100,
        "i_category_id" | "i_category" => 10,
        "i_manufact_id" | "i_manufact" => 1000,
        "i_size" => 7,
        "i_color" => 92,
        "i_units" => 21,
        "i_container" => 2,
        "i_manager_id" => 100,
        "i_current_price" | "i_wholesale_cost" => 9900,
        "ca_state" | "s_state" | "cc_state" | "web_state" | "w_state" => 51,
        "ca_city" | "s_city" | "cc_city" | "web_city" | "w_city" => 1000,
        "ca_county" | "s_county" | "cc_county" | "web_county" | "w_county" => 1850,
        "ca_zip" | "s_zip" | "cc_zip" | "web_zip" | "w_zip" => 10_000,
        "ca_country" | "s_country" | "cc_country" | "web_country" | "w_country" => 1,
        "ca_gmt_offset" | "s_gmt_offset" | "cc_gmt_offset" | "web_gmt_offset" | "w_gmt_offset" => 5,
        "ca_location_type" => 3,
        "c_salutation" => 6,
        "c_preferred_cust_flag" | "wp_autogen_flag" | "p_discount_active" => 2,
        "c_birth_day" => 31,
        "c_birth_month" => 12,
        "c_birth_year" => 69,
        "c_birth_country" => 211,
        "s_number_employees" => 100,
        "s_floor_space" => 1000,
        "s_market_id" | "cc_mkt_id" | "web_mkt_id" => 10,
        "s_division_id" | "cc_division" => 2,
        "s_company_id" | "cc_company" | "web_company_id" => 6,
        "s_tax_precentage" | "cc_tax_percentage" | "web_tax_percentage" => 12,
        "sm_type" => 6,
        "sm_code" => 4,
        "sm_carrier" => 20,
        "r_reason_desc" => 35,
        "p_purpose" => 10,
        "p_cost" => 1,
        "p_response_target" => 1,
        "cp_department" => 1,
        "cp_catalog_number" => 109,
        "cp_catalog_page_number" => 188,
        "cp_type" => 3,
        "wp_type" => 7,
        "wp_char_count" => 5000,
        "wp_link_count" => 24,
        "wp_image_count" => 7,
        "wp_max_ad_count" => 5,
        "ss_quantity" | "cs_quantity" | "ws_quantity" => 100,
        "sr_return_quantity" | "cr_return_quantity" | "wr_return_quantity" => 100,
        "inv_quantity_on_hand" => 1000,
        _ => return None,
    })
}

/// Type-based fallback NDV.
fn type_default_ndv(ty: DataType, rows: u64) -> (u64, f64) {
    let ndv = match ty {
        DataType::Int | DataType::BigInt => rows.min(1_000_000),
        DataType::Decimal => rows.clamp(100, 500_000),
        DataType::Date => 2556,
        DataType::Char(w) if w <= 2 => 3,
        DataType::Char(_) => rows.clamp(10, 10_000),
        DataType::Varchar(_) => rows.clamp(10, 100_000),
    };
    (ndv.max(1), 0.0)
}

/// Per-fact-table template ingredients: `(fact, date fk, measure columns,
/// dimension joins as (fact fk, dim pk, dim filter columns))`.
struct FactSpec {
    fact: &'static str,
    measures: Vec<&'static str>,
    dims: Vec<(&'static str, &'static str, Vec<&'static str>)>,
}

fn fact_specs() -> Vec<FactSpec> {
    vec![
        FactSpec {
            fact: "store_sales",
            measures: vec![
                "ss_quantity",
                "ss_sales_price",
                "ss_ext_sales_price",
                "ss_net_profit",
                "ss_wholesale_cost",
                "ss_list_price",
                "ss_coupon_amt",
            ],
            dims: vec![
                (
                    "ss_sold_date_sk",
                    "d_date_sk",
                    vec!["d_year", "d_moy", "d_qoy", "d_dow"],
                ),
                (
                    "ss_item_sk",
                    "i_item_sk",
                    vec![
                        "i_category",
                        "i_brand_id",
                        "i_class",
                        "i_color",
                        "i_manager_id",
                        "i_current_price",
                    ],
                ),
                (
                    "ss_customer_sk",
                    "c_customer_sk",
                    vec!["c_birth_month", "c_birth_year", "c_preferred_cust_flag"],
                ),
                ("ss_store_sk", "s_store_sk", vec!["s_state", "s_market_id"]),
                (
                    "ss_cdemo_sk",
                    "cd_demo_sk",
                    vec!["cd_gender", "cd_marital_status", "cd_education_status"],
                ),
                (
                    "ss_hdemo_sk",
                    "hd_demo_sk",
                    vec!["hd_buy_potential", "hd_dep_count", "hd_vehicle_count"],
                ),
                (
                    "ss_addr_sk",
                    "ca_address_sk",
                    vec!["ca_state", "ca_gmt_offset", "ca_city"],
                ),
                (
                    "ss_promo_sk",
                    "p_promo_sk",
                    vec!["p_channel_dmail", "p_channel_email"],
                ),
            ],
        },
        FactSpec {
            fact: "store_returns",
            measures: vec![
                "sr_return_quantity",
                "sr_return_amt",
                "sr_net_loss",
                "sr_fee",
            ],
            dims: vec![
                ("sr_returned_date_sk", "d_date_sk", vec!["d_year", "d_moy"]),
                ("sr_item_sk", "i_item_sk", vec!["i_category", "i_brand_id"]),
                ("sr_customer_sk", "c_customer_sk", vec!["c_birth_year"]),
                ("sr_store_sk", "s_store_sk", vec!["s_state"]),
                ("sr_reason_sk", "r_reason_sk", vec!["r_reason_desc"]),
            ],
        },
        FactSpec {
            fact: "catalog_sales",
            measures: vec![
                "cs_quantity",
                "cs_sales_price",
                "cs_ext_sales_price",
                "cs_net_profit",
                "cs_wholesale_cost",
                "cs_coupon_amt",
            ],
            dims: vec![
                (
                    "cs_sold_date_sk",
                    "d_date_sk",
                    vec!["d_year", "d_moy", "d_qoy"],
                ),
                (
                    "cs_item_sk",
                    "i_item_sk",
                    vec!["i_category", "i_brand_id", "i_class", "i_current_price"],
                ),
                (
                    "cs_bill_customer_sk",
                    "c_customer_sk",
                    vec!["c_birth_month", "c_preferred_cust_flag"],
                ),
                (
                    "cs_bill_cdemo_sk",
                    "cd_demo_sk",
                    vec!["cd_gender", "cd_education_status"],
                ),
                (
                    "cs_call_center_sk",
                    "cc_call_center_sk",
                    vec!["cc_state", "cc_mkt_id"],
                ),
                (
                    "cs_catalog_page_sk",
                    "cp_catalog_page_sk",
                    vec!["cp_catalog_number", "cp_type"],
                ),
                (
                    "cs_ship_mode_sk",
                    "sm_ship_mode_sk",
                    vec!["sm_type", "sm_carrier"],
                ),
                ("cs_warehouse_sk", "w_warehouse_sk", vec!["w_state"]),
            ],
        },
        FactSpec {
            fact: "catalog_returns",
            measures: vec!["cr_return_quantity", "cr_return_amount", "cr_net_loss"],
            dims: vec![
                ("cr_returned_date_sk", "d_date_sk", vec!["d_year", "d_moy"]),
                ("cr_item_sk", "i_item_sk", vec!["i_category"]),
                ("cr_reason_sk", "r_reason_sk", vec!["r_reason_desc"]),
                ("cr_warehouse_sk", "w_warehouse_sk", vec!["w_state"]),
            ],
        },
        FactSpec {
            fact: "web_sales",
            measures: vec![
                "ws_quantity",
                "ws_sales_price",
                "ws_ext_sales_price",
                "ws_net_profit",
                "ws_ext_ship_cost",
            ],
            dims: vec![
                (
                    "ws_sold_date_sk",
                    "d_date_sk",
                    vec!["d_year", "d_moy", "d_qoy"],
                ),
                (
                    "ws_item_sk",
                    "i_item_sk",
                    vec!["i_category", "i_brand_id", "i_current_price"],
                ),
                (
                    "ws_bill_customer_sk",
                    "c_customer_sk",
                    vec!["c_birth_year", "c_preferred_cust_flag"],
                ),
                (
                    "ws_web_site_sk",
                    "web_site_sk",
                    vec!["web_state", "web_mkt_id"],
                ),
                (
                    "ws_web_page_sk",
                    "wp_web_page_sk",
                    vec!["wp_type", "wp_char_count"],
                ),
                ("ws_ship_mode_sk", "sm_ship_mode_sk", vec!["sm_type"]),
                ("ws_warehouse_sk", "w_warehouse_sk", vec!["w_state"]),
            ],
        },
        FactSpec {
            fact: "web_returns",
            measures: vec!["wr_return_quantity", "wr_return_amt", "wr_net_loss"],
            dims: vec![
                ("wr_returned_date_sk", "d_date_sk", vec!["d_year", "d_moy"]),
                ("wr_item_sk", "i_item_sk", vec!["i_category", "i_brand_id"]),
                ("wr_reason_sk", "r_reason_sk", vec!["r_reason_desc"]),
                ("wr_web_page_sk", "wp_web_page_sk", vec!["wp_type"]),
            ],
        },
        FactSpec {
            fact: "inventory",
            measures: vec!["inv_quantity_on_hand"],
            dims: vec![
                ("inv_date_sk", "d_date_sk", vec!["d_year", "d_moy"]),
                (
                    "inv_item_sk",
                    "i_item_sk",
                    vec!["i_category", "i_current_price"],
                ),
                ("inv_warehouse_sk", "w_warehouse_sk", vec!["w_state"]),
            ],
        },
    ]
}

/// The derived 99-template pool (deterministic; see module docs).
pub fn templates() -> Vec<TemplateSpec> {
    let facts = fact_specs();
    let mut rng = ChaCha8Rng::seed_from_u64(TEMPLATE_POOL_SEED);
    let mut out = Vec::with_capacity(99);
    for id in 1..=99usize {
        let f = &facts[(id - 1) % facts.len()];
        // 1..=3 dimensions, favouring 2.
        let n_dims = *[1usize, 2, 2, 3].choose(&mut rng).expect("nonempty");
        let n_dims = n_dims.min(f.dims.len());
        let mut dims: Vec<&(&str, &str, Vec<&str>)> =
            f.dims.choose_multiple(&mut rng, n_dims).collect();
        dims.sort_by_key(|d| d.0); // stable ordering for readability

        let mut joins = Vec::new();
        let mut predicates = Vec::new();
        let mut group_by = Vec::new();
        for (fk, pk, filters) in dims.iter() {
            joins.push((fk.to_string(), pk.to_string()));
            let fcol = filters.choose(&mut rng).expect("nonempty filter list");
            let kind = filter_kind(fcol, &mut rng);
            predicates.push(pred(fcol, kind));
            if group_by.is_empty() && rng.gen_bool(0.5) {
                group_by.push(fcol.to_string());
            }
        }
        // Optionally a measure filter on the fact table.
        if rng.gen_bool(0.6) {
            let m = f.measures.choose(&mut rng).expect("nonempty measures");
            predicates.push(pred(
                m,
                ParamKind::Range {
                    width_min: 0.05,
                    width_max: 0.3,
                },
            ));
        }
        let agg_measure = f.measures.choose(&mut rng).expect("nonempty measures");
        let mut aggregates = vec![sum(agg_measure)];
        if rng.gen_bool(0.3) {
            aggregates.push(avg(agg_measure));
        }
        if rng.gen_bool(0.3) {
            aggregates.push(AggSpec::CountStar);
        }
        out.push(TemplateSpec {
            id,
            label: format!("dsq{id}_{}", f.fact),
            joins,
            predicates,
            select: vec![],
            aggregates,
            group_by: group_by.clone(),
            order_by: group_by,
        });
    }
    out
}

/// Kind of filter for a curated dimension filter column.
fn filter_kind<R: Rng>(col: &str, rng: &mut R) -> ParamKind {
    match col {
        // Year / sequence columns: small ranges.
        "d_year" | "c_birth_year" => ParamKind::Range {
            width_min: 0.005,
            width_max: 0.02,
        },
        // Prices and counts: ranges.
        "i_current_price" | "wp_char_count" => ParamKind::Range {
            width_min: 0.05,
            width_max: 0.2,
        },
        // Moderate-cardinality categoricals: IN lists sometimes.
        "i_brand_id" | "i_manufact_id" | "ca_city" => {
            if rng.gen_bool(0.5) {
                ParamKind::In { k: 3 }
            } else {
                ParamKind::Eq
            }
        }
        _ => ParamKind::Eq,
    }
}

/// The first 90 templates (the paper's default TPC-DS workload size).
pub fn default_templates() -> Vec<TemplateSpec> {
    templates()
        .into_iter()
        .take(DEFAULT_WORKLOAD_SIZE)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_425_columns_and_24_tables() {
        let s = schema();
        assert_eq!(s.num_columns(), NUM_COLUMNS);
        assert_eq!(s.num_tables(), 24);
    }

    #[test]
    fn stats_cover_every_column_and_follow_convention() {
        let s = schema();
        let st = column_stats(&s, 1.0);
        assert_eq!(st.len(), NUM_COLUMNS);
        for c in &st {
            assert!(c.ndv >= 1);
            assert_eq!(c.max, c.ndv as i64 - 1);
        }
        // Surrogate keys unique.
        let ss = s.column_id("ss_ticket_number").unwrap();
        assert!(st[ss.0 as usize].ndv > 100_000);
        let i_sk = s.column_id("i_item_sk").unwrap();
        assert_eq!(st[i_sk.0 as usize].ndv, 18_000);
        // FK inherits referenced NDV.
        let ss_item = s.column_id("ss_item_sk").unwrap();
        assert_eq!(st[ss_item.0 as usize].ndv, 18_000);
    }

    #[test]
    fn fixed_dimensions_do_not_scale() {
        let s = schema();
        let st1 = column_stats(&s, 1.0);
        let st10 = column_stats(&s, 10.0);
        let dd = s.column_id("d_date_sk").unwrap();
        assert_eq!(st1[dd.0 as usize].ndv, st10[dd.0 as usize].ndv);
        let item = s.column_id("i_item_sk").unwrap();
        assert_eq!(st10[item.0 as usize].ndv, 180_000);
    }

    #[test]
    fn template_pool_is_deterministic_and_large() {
        let a = templates();
        let b = templates();
        assert_eq!(a.len(), 99);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.joins, y.joins);
        }
        assert_eq!(default_templates().len(), 90);
    }

    #[test]
    fn all_templates_instantiate() {
        let s = schema();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for t in templates() {
            let q = t
                .instantiate(&s, &mut rng)
                .unwrap_or_else(|e| panic!("template {} ({}): {e}", t.id, t.label));
            assert!(q.validate(&s).is_ok());
            assert!(!q.tables.is_empty());
        }
    }

    #[test]
    fn templates_cover_a_wide_column_surface() {
        let mut cols: Vec<String> = templates()
            .iter()
            .flat_map(|t| {
                t.filter_column_names()
                    .into_iter()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .collect();
        cols.sort();
        cols.dedup();
        assert!(
            cols.len() >= 25,
            "only {} distinct filter columns",
            cols.len()
        );
    }

    #[test]
    fn every_fact_table_appears() {
        let s = schema();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut facts: Vec<String> = Vec::new();
        for t in templates() {
            // Label encodes the anchoring fact table: dsq{id}_{fact}.
            let fact = t.label.split_once('_').expect("label format").1.to_string();
            let q = t.instantiate(&s, &mut rng).unwrap();
            let fact_tid = s.table_id(&fact).expect("fact exists");
            assert!(q.tables.contains(&fact_tid), "{} misses {fact}", t.label);
            facts.push(fact);
        }
        facts.sort();
        facts.dedup();
        assert_eq!(facts.len(), 7, "all seven fact tables used: {facts:?}");
    }
}
