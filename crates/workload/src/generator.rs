//! Normal-workload generation, following the paper's setup (§6.1):
//! "we create a workload of N queries by populating all available query
//! templates of the benchmark and randomly specifying the query
//! frequencies according to a uniform distribution."

use crate::templates::TemplateSpec;
use pipa_sim::{Schema, SimResult, Workload};
use rand::{Rng, RngCore};

/// Maximum frequency drawn for a workload query (frequencies are uniform
/// in `1..=MAX_FREQUENCY`).
pub const MAX_FREQUENCY: u32 = 10;

/// Generate a normal workload: one instantiation per template, each with a
/// uniformly random frequency.
pub fn generate_normal_workload<R: RngCore>(
    schema: &Schema,
    templates: &[TemplateSpec],
    rng: &mut R,
) -> SimResult<Workload> {
    let mut w = Workload::new();
    for t in templates {
        let q = t.instantiate(schema, rng)?;
        w.push(q, rng.gen_range(1..=MAX_FREQUENCY));
    }
    Ok(w)
}

/// Reusable generator bundling a schema and a template pool.
///
/// Also produces *template-based injection workloads* (the paper's TP
/// baseline): fresh instantiations of the target workload's templates with
/// fresh uniform frequencies.
pub struct WorkloadGenerator {
    schema: Schema,
    templates: Vec<TemplateSpec>,
}

impl WorkloadGenerator {
    /// New generator over a schema and template pool.
    pub fn new(schema: Schema, templates: Vec<TemplateSpec>) -> Self {
        WorkloadGenerator { schema, templates }
    }

    /// The template pool.
    pub fn templates(&self) -> &[TemplateSpec] {
        &self.templates
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A normal workload (one query per template, uniform frequencies).
    pub fn normal<R: RngCore>(&self, rng: &mut R) -> SimResult<Workload> {
        generate_normal_workload(&self.schema, &self.templates, rng)
    }

    /// A workload of exactly `n` queries: templates are cycled (and
    /// re-instantiated with fresh parameters each cycle).
    pub fn of_size<R: RngCore>(&self, n: usize, rng: &mut R) -> SimResult<Workload> {
        let mut w = Workload::new();
        for i in 0..n {
            let t = &self.templates[i % self.templates.len()];
            w.push(
                t.instantiate(&self.schema, rng)?,
                rng.gen_range(1..=MAX_FREQUENCY),
            );
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_workload_has_one_query_per_template() {
        let s = tpch::schema();
        let ts = tpch::default_templates();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = generate_normal_workload(&s, &ts, &mut rng).unwrap();
        assert_eq!(w.len(), 18);
        for wq in w.iter() {
            assert!((1..=MAX_FREQUENCY).contains(&wq.frequency));
        }
    }

    #[test]
    fn workloads_differ_across_runs() {
        let s = tpch::schema();
        let ts = tpch::default_templates();
        let g = WorkloadGenerator::new(s, ts);
        let a = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        let b = g.normal(&mut ChaCha8Rng::seed_from_u64(2)).unwrap();
        assert!(a.is_disjoint_from(&b), "different seeds → disjoint params");
    }

    #[test]
    fn of_size_cycles_templates() {
        let s = tpch::schema();
        let ts = tpch::default_templates();
        let g = WorkloadGenerator::new(s, ts);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = g.of_size(40, &mut rng).unwrap();
        assert_eq!(w.len(), 40);
    }

    #[test]
    fn deterministic_under_seed() {
        let s = tpch::schema();
        let ts = tpch::default_templates();
        let g = WorkloadGenerator::new(s, ts);
        let a = g.normal(&mut ChaCha8Rng::seed_from_u64(4)).unwrap();
        let b = g.normal(&mut ChaCha8Rng::seed_from_u64(4)).unwrap();
        assert_eq!(a, b);
    }
}
