//! TPC-H: the full 8-table, 61-column schema, per-column statistics, and
//! structural equivalents of the 22 benchmark query templates.
//!
//! Row counts and NDVs follow the TPC-H specification at scale factor 1
//! and scale linearly (keys) or stay fixed (categorical domains) with the
//! scale factor. Domains use the `[0, ndv-1]` convention from
//! `pipa_sim::datagen`, so equality literals always hit real values.

use crate::templates::{avg, names, pred, sum, AggSpec, ParamKind, TemplateSpec};
use pipa_sim::{ColumnStats, DataType, Schema};

/// Number of indexable columns in TPC-H (the paper's `L = 61`).
pub const NUM_COLUMNS: usize = 61;

/// Default normal-workload size used by the paper on TPC-H (`N = 18`).
pub const DEFAULT_WORKLOAD_SIZE: usize = 18;

/// Build the TPC-H schema with base row counts at scale factor 1.
pub fn schema() -> Schema {
    use DataType::*;
    let mut s = Schema::new();
    s.add_table(
        "region",
        5,
        &[
            ("r_regionkey", Int),
            ("r_name", Char(25)),
            ("r_comment", Varchar(152)),
        ],
    );
    s.add_table(
        "nation",
        25,
        &[
            ("n_nationkey", Int),
            ("n_name", Char(25)),
            ("n_regionkey", Int),
            ("n_comment", Varchar(152)),
        ],
    );
    s.add_table(
        "supplier",
        10_000,
        &[
            ("s_suppkey", Int),
            ("s_name", Char(25)),
            ("s_address", Varchar(40)),
            ("s_nationkey", Int),
            ("s_phone", Char(15)),
            ("s_acctbal", Decimal),
            ("s_comment", Varchar(101)),
        ],
    );
    s.add_table(
        "customer",
        150_000,
        &[
            ("c_custkey", Int),
            ("c_name", Varchar(25)),
            ("c_address", Varchar(40)),
            ("c_nationkey", Int),
            ("c_phone", Char(15)),
            ("c_acctbal", Decimal),
            ("c_mktsegment", Char(10)),
            ("c_comment", Varchar(117)),
        ],
    );
    s.add_table(
        "part",
        200_000,
        &[
            ("p_partkey", Int),
            ("p_name", Varchar(55)),
            ("p_mfgr", Char(25)),
            ("p_brand", Char(10)),
            ("p_type", Varchar(25)),
            ("p_size", Int),
            ("p_container", Char(10)),
            ("p_retailprice", Decimal),
            ("p_comment", Varchar(23)),
        ],
    );
    s.add_table(
        "partsupp",
        800_000,
        &[
            ("ps_partkey", Int),
            ("ps_suppkey", Int),
            ("ps_availqty", Int),
            ("ps_supplycost", Decimal),
            ("ps_comment", Varchar(199)),
        ],
    );
    s.add_table(
        "orders",
        1_500_000,
        &[
            ("o_orderkey", BigInt),
            ("o_custkey", Int),
            ("o_orderstatus", Char(1)),
            ("o_totalprice", Decimal),
            ("o_orderdate", Date),
            ("o_orderpriority", Char(15)),
            ("o_clerk", Char(15)),
            ("o_shippriority", Int),
            ("o_comment", Varchar(79)),
        ],
    );
    s.add_table(
        "lineitem",
        6_000_000,
        &[
            ("l_orderkey", BigInt),
            ("l_partkey", Int),
            ("l_suppkey", Int),
            ("l_linenumber", Int),
            ("l_quantity", Decimal),
            ("l_extendedprice", Decimal),
            ("l_discount", Decimal),
            ("l_tax", Decimal),
            ("l_returnflag", Char(1)),
            ("l_linestatus", Char(1)),
            ("l_shipdate", Date),
            ("l_commitdate", Date),
            ("l_receiptdate", Date),
            ("l_shipinstruct", Char(25)),
            ("l_shipmode", Char(10)),
            ("l_comment", Varchar(44)),
        ],
    );
    for (from, to) in [
        ("n_regionkey", "r_regionkey"),
        ("s_nationkey", "n_nationkey"),
        ("c_nationkey", "n_nationkey"),
        ("ps_partkey", "p_partkey"),
        ("ps_suppkey", "s_suppkey"),
        ("o_custkey", "c_custkey"),
        ("l_orderkey", "o_orderkey"),
        ("l_partkey", "p_partkey"),
        ("l_suppkey", "s_suppkey"),
    ] {
        s.add_foreign_key(from, to);
    }
    debug_assert_eq!(s.num_columns(), NUM_COLUMNS);
    s
}

/// TPC-H column statistics at a given scale factor.
///
/// NDV rules per the spec: keys are unique per table; foreign keys inherit
/// the referenced key's NDV; dates span 1992-01-01..1998-12-31 (2557 days,
/// mapped to 0..2556); categorical columns have fixed small domains.
/// Correlations reflect generation order (keys and dates are appended in
/// order).
pub fn column_stats(schema: &Schema, scale: f64) -> Vec<ColumnStats> {
    let sf = |n: u64| ((n as f64 * scale).round() as u64).max(1);
    schema
        .columns()
        .iter()
        .map(|c| {
            let (ndv, corr, null_frac): (u64, f64, f64) = match c.name.as_str() {
                "r_regionkey" => (5, 1.0, 0.0),
                "r_name" => (5, 0.0, 0.0),
                "r_comment" => (5, 0.0, 0.0),
                "n_nationkey" => (25, 1.0, 0.0),
                "n_name" => (25, 0.0, 0.0),
                "n_regionkey" => (5, 0.0, 0.0),
                "n_comment" => (25, 0.0, 0.0),
                "s_suppkey" => (sf(10_000), 1.0, 0.0),
                "s_name" => (sf(10_000), 0.95, 0.0),
                "s_address" => (sf(10_000), 0.0, 0.0),
                "s_nationkey" => (25, 0.0, 0.0),
                "s_phone" => (sf(10_000), 0.0, 0.0),
                "s_acctbal" => (sf(9_000), 0.0, 0.0),
                "s_comment" => (sf(10_000), 0.0, 0.0),
                "c_custkey" => (sf(150_000), 1.0, 0.0),
                "c_name" => (sf(150_000), 0.95, 0.0),
                "c_address" => (sf(150_000), 0.0, 0.0),
                "c_nationkey" => (25, 0.0, 0.0),
                "c_phone" => (sf(150_000), 0.0, 0.0),
                "c_acctbal" => (sf(9_000), 0.0, 0.0),
                "c_mktsegment" => (5, 0.0, 0.0),
                "c_comment" => (sf(150_000), 0.0, 0.0),
                "p_partkey" => (sf(200_000), 1.0, 0.0),
                "p_name" => (sf(200_000), 0.0, 0.0),
                "p_mfgr" => (5, 0.0, 0.0),
                "p_brand" => (25, 0.0, 0.0),
                "p_type" => (150, 0.0, 0.0),
                "p_size" => (50, 0.0, 0.0),
                "p_container" => (40, 0.0, 0.0),
                "p_retailprice" => (sf(20_000), 0.0, 0.0),
                "p_comment" => (sf(130_000), 0.0, 0.0),
                "ps_partkey" => (sf(200_000), 0.95, 0.0),
                "ps_suppkey" => (sf(10_000), 0.0, 0.0),
                "ps_availqty" => (10_000, 0.0, 0.0),
                "ps_supplycost" => (sf(100_000), 0.0, 0.0),
                "ps_comment" => (sf(800_000), 0.0, 0.0),
                "o_orderkey" => (sf(1_500_000), 1.0, 0.0),
                "o_custkey" => (sf(100_000), 0.0, 0.0),
                "o_orderstatus" => (3, 0.0, 0.0),
                "o_totalprice" => (sf(1_400_000), 0.0, 0.0),
                "o_orderdate" => (2406, 0.95, 0.0),
                "o_orderpriority" => (5, 0.0, 0.0),
                "o_clerk" => (sf(1_000), 0.0, 0.0),
                "o_shippriority" => (1, 0.0, 0.0),
                "o_comment" => (sf(1_400_000), 0.0, 0.0),
                "l_orderkey" => (sf(1_500_000), 1.0, 0.0),
                "l_partkey" => (sf(200_000), 0.0, 0.0),
                "l_suppkey" => (sf(10_000), 0.0, 0.0),
                "l_linenumber" => (7, 0.0, 0.0),
                "l_quantity" => (50, 0.0, 0.0),
                "l_extendedprice" => (sf(900_000), 0.0, 0.0),
                "l_discount" => (11, 0.0, 0.0),
                "l_tax" => (9, 0.0, 0.0),
                "l_returnflag" => (3, 0.0, 0.0),
                "l_linestatus" => (2, 0.0, 0.0),
                "l_shipdate" => (2526, 0.95, 0.0),
                "l_commitdate" => (2466, 0.95, 0.0),
                "l_receiptdate" => (2554, 0.95, 0.0),
                "l_shipinstruct" => (4, 0.0, 0.0),
                "l_shipmode" => (7, 0.0, 0.0),
                "l_comment" => (sf(4_500_000), 0.0, 0.0),
                other => panic!("unmapped TPC-H column {other}"),
            };
            let mut st = ColumnStats::uniform(c.id, c.ty, ndv, 0, ndv as i64 - 1);
            st.correlation = corr;
            st.null_frac = null_frac;
            st
        })
        .collect()
}

/// Structural equivalents of the 22 TPC-H query templates, expressed in
/// the `pipa-sim` AST (no subqueries: correlated subqueries are folded
/// into joins + filters, as is standard in index-selection evaluations).
pub fn templates() -> Vec<TemplateSpec> {
    use AggSpec::CountStar;
    use ParamKind::*;
    let pp = pred;
    let range = |a: f64, b: f64| Range {
        width_min: a,
        width_max: b,
    };
    vec![
        TemplateSpec {
            id: 1,
            label: "q1_pricing_summary".to_string(),
            joins: vec![],
            predicates: vec![pp("l_shipdate", Le { lo: 0.7, hi: 0.99 })],
            select: vec![],
            aggregates: vec![
                sum("l_quantity"),
                sum("l_extendedprice"),
                avg("l_discount"),
                CountStar,
            ],
            group_by: names(&["l_returnflag", "l_linestatus"]),
            order_by: names(&["l_returnflag", "l_linestatus"]),
        },
        TemplateSpec {
            id: 2,
            label: "q2_minimum_cost_supplier".to_string(),
            joins: vec![
                ("ps_partkey".to_string(), "p_partkey".to_string()),
                ("ps_suppkey".to_string(), "s_suppkey".to_string()),
                ("s_nationkey".to_string(), "n_nationkey".to_string()),
                ("n_regionkey".to_string(), "r_regionkey".to_string()),
            ],
            predicates: vec![pp("p_size", Eq), pp("p_type", Eq), pp("r_name", Eq)],
            select: names(&["s_acctbal", "s_name", "n_name", "p_partkey"]),
            aggregates: vec![],
            group_by: vec![],
            order_by: names(&["s_acctbal"]),
        },
        TemplateSpec {
            id: 3,
            label: "q3_shipping_priority".to_string(),
            joins: vec![
                ("c_custkey".to_string(), "o_custkey".to_string()),
                ("l_orderkey".to_string(), "o_orderkey".to_string()),
            ],
            predicates: vec![
                pp("c_mktsegment", Eq),
                pp("o_orderdate", range(0.01, 0.03)),
                pp("l_shipdate", range(0.01, 0.03)),
            ],
            select: names(&["l_orderkey", "o_orderdate", "o_shippriority"]),
            aggregates: vec![sum("l_extendedprice")],
            group_by: names(&["l_orderkey", "o_orderdate", "o_shippriority"]),
            order_by: names(&["o_orderdate"]),
        },
        TemplateSpec {
            id: 4,
            label: "q4_order_priority".to_string(),
            joins: vec![("l_orderkey".to_string(), "o_orderkey".to_string())],
            predicates: vec![
                pp("o_orderdate", range(0.01, 0.02)),
                pp("l_receiptdate", range(0.02, 0.05)),
            ],
            select: vec![],
            aggregates: vec![CountStar],
            group_by: names(&["o_orderpriority"]),
            order_by: names(&["o_orderpriority"]),
        },
        TemplateSpec {
            id: 5,
            label: "q5_local_supplier_volume".to_string(),
            joins: vec![
                ("c_custkey".to_string(), "o_custkey".to_string()),
                ("l_orderkey".to_string(), "o_orderkey".to_string()),
                ("l_suppkey".to_string(), "s_suppkey".to_string()),
                ("s_nationkey".to_string(), "n_nationkey".to_string()),
                ("n_regionkey".to_string(), "r_regionkey".to_string()),
            ],
            predicates: vec![pp("r_name", Eq), pp("o_orderdate", range(0.02, 0.04))],
            select: vec![],
            aggregates: vec![sum("l_extendedprice")],
            group_by: names(&["n_name"]),
            order_by: vec![],
        },
        TemplateSpec {
            id: 6,
            label: "q6_forecast_revenue".to_string(),
            joins: vec![],
            predicates: vec![
                pp("l_shipdate", range(0.01, 0.03)),
                pp("l_discount", range(0.15, 0.25)),
                pp("l_quantity", Le { lo: 0.4, hi: 0.5 }),
            ],
            select: vec![],
            aggregates: vec![sum("l_extendedprice")],
            group_by: vec![],
            order_by: vec![],
        },
        TemplateSpec {
            id: 7,
            label: "q7_volume_shipping".to_string(),
            joins: vec![
                ("l_suppkey".to_string(), "s_suppkey".to_string()),
                ("l_orderkey".to_string(), "o_orderkey".to_string()),
                ("o_custkey".to_string(), "c_custkey".to_string()),
                ("s_nationkey".to_string(), "n_nationkey".to_string()),
            ],
            predicates: vec![
                pp("l_shipdate", range(0.02, 0.04)),
                pp("n_name", In { k: 2 }),
            ],
            select: vec![],
            aggregates: vec![sum("l_extendedprice")],
            group_by: names(&["n_name"]),
            order_by: names(&["n_name"]),
        },
        TemplateSpec {
            id: 8,
            label: "q8_market_share".to_string(),
            joins: vec![
                ("l_partkey".to_string(), "p_partkey".to_string()),
                ("l_suppkey".to_string(), "s_suppkey".to_string()),
                ("l_orderkey".to_string(), "o_orderkey".to_string()),
                ("o_custkey".to_string(), "c_custkey".to_string()),
                ("c_nationkey".to_string(), "n_nationkey".to_string()),
                ("n_regionkey".to_string(), "r_regionkey".to_string()),
            ],
            predicates: vec![
                pp("p_type", Eq),
                pp("r_name", Eq),
                pp("o_orderdate", range(0.02, 0.05)),
            ],
            select: vec![],
            aggregates: vec![sum("l_extendedprice"), avg("l_discount")],
            group_by: vec![],
            order_by: vec![],
        },
        TemplateSpec {
            id: 9,
            label: "q9_product_type_profit".to_string(),
            joins: vec![
                ("l_partkey".to_string(), "p_partkey".to_string()),
                ("l_suppkey".to_string(), "s_suppkey".to_string()),
                ("ps_partkey".to_string(), "p_partkey".to_string()),
                ("l_orderkey".to_string(), "o_orderkey".to_string()),
                ("s_nationkey".to_string(), "n_nationkey".to_string()),
            ],
            predicates: vec![pp("p_name", range(0.01, 0.03))],
            select: vec![],
            aggregates: vec![sum("l_extendedprice")],
            group_by: names(&["n_name"]),
            order_by: names(&["n_name"]),
        },
        TemplateSpec {
            id: 10,
            label: "q10_returned_items".to_string(),
            joins: vec![
                ("c_custkey".to_string(), "o_custkey".to_string()),
                ("l_orderkey".to_string(), "o_orderkey".to_string()),
                ("c_nationkey".to_string(), "n_nationkey".to_string()),
            ],
            predicates: vec![pp("o_orderdate", range(0.01, 0.02)), pp("l_returnflag", Eq)],
            select: names(&["c_custkey", "c_name", "c_acctbal", "n_name"]),
            aggregates: vec![sum("l_extendedprice")],
            group_by: names(&["c_custkey", "c_name", "c_acctbal", "n_name"]),
            order_by: vec![],
        },
        TemplateSpec {
            id: 11,
            label: "q11_important_stock".to_string(),
            joins: vec![
                ("ps_suppkey".to_string(), "s_suppkey".to_string()),
                ("s_nationkey".to_string(), "n_nationkey".to_string()),
            ],
            predicates: vec![pp("n_name", Eq)],
            select: names(&["ps_partkey"]),
            aggregates: vec![sum("ps_supplycost")],
            group_by: names(&["ps_partkey"]),
            order_by: vec![],
        },
        TemplateSpec {
            id: 12,
            label: "q12_shipping_modes".to_string(),
            joins: vec![("l_orderkey".to_string(), "o_orderkey".to_string())],
            predicates: vec![
                pp("l_shipmode", In { k: 2 }),
                pp("l_receiptdate", range(0.01, 0.03)),
            ],
            select: vec![],
            aggregates: vec![CountStar],
            group_by: names(&["l_shipmode"]),
            order_by: names(&["l_shipmode"]),
        },
        TemplateSpec {
            id: 13,
            label: "q13_customer_distribution".to_string(),
            joins: vec![("c_custkey".to_string(), "o_custkey".to_string())],
            predicates: vec![pp("o_orderpriority", Eq)],
            select: vec![],
            aggregates: vec![CountStar],
            group_by: names(&["c_custkey"]),
            order_by: vec![],
        },
        TemplateSpec {
            id: 14,
            label: "q14_promotion_effect".to_string(),
            joins: vec![("l_partkey".to_string(), "p_partkey".to_string())],
            predicates: vec![pp("l_shipdate", range(0.01, 0.02))],
            select: vec![],
            aggregates: vec![sum("l_extendedprice")],
            group_by: vec![],
            order_by: vec![],
        },
        TemplateSpec {
            id: 15,
            label: "q15_top_supplier".to_string(),
            joins: vec![("l_suppkey".to_string(), "s_suppkey".to_string())],
            predicates: vec![pp("l_shipdate", range(0.01, 0.02))],
            select: names(&["s_suppkey", "s_name"]),
            aggregates: vec![sum("l_extendedprice")],
            group_by: names(&["s_suppkey", "s_name"]),
            order_by: vec![],
        },
        TemplateSpec {
            id: 16,
            label: "q16_parts_supplier_relationship".to_string(),
            joins: vec![("ps_partkey".to_string(), "p_partkey".to_string())],
            predicates: vec![
                pp("p_brand", Eq),
                pp("p_type", Eq),
                pp("p_size", In { k: 8 }),
            ],
            select: names(&["p_brand", "p_type", "p_size"]),
            aggregates: vec![CountStar],
            group_by: names(&["p_brand", "p_type", "p_size"]),
            order_by: vec![],
        },
        TemplateSpec {
            id: 17,
            label: "q17_small_quantity_order".to_string(),
            joins: vec![("l_partkey".to_string(), "p_partkey".to_string())],
            predicates: vec![
                pp("p_brand", Eq),
                pp("p_container", Eq),
                pp("l_quantity", Le { lo: 0.0, hi: 0.1 }),
            ],
            select: vec![],
            aggregates: vec![avg("l_extendedprice")],
            group_by: vec![],
            order_by: vec![],
        },
        TemplateSpec {
            id: 18,
            label: "q18_large_volume_customer".to_string(),
            joins: vec![
                ("c_custkey".to_string(), "o_custkey".to_string()),
                ("l_orderkey".to_string(), "o_orderkey".to_string()),
            ],
            predicates: vec![pp("l_quantity", Ge { lo: 0.96, hi: 0.99 })],
            select: names(&["c_name", "c_custkey", "o_orderkey", "o_orderdate"]),
            aggregates: vec![sum("l_quantity")],
            group_by: names(&["c_name", "c_custkey", "o_orderkey", "o_orderdate"]),
            order_by: names(&["o_orderdate"]),
        },
        TemplateSpec {
            id: 19,
            label: "q19_discounted_revenue".to_string(),
            joins: vec![("l_partkey".to_string(), "p_partkey".to_string())],
            predicates: vec![
                pp("p_brand", Eq),
                pp("p_container", In { k: 4 }),
                pp("l_quantity", range(0.05, 0.1)),
                pp("l_shipmode", In { k: 2 }),
            ],
            select: vec![],
            aggregates: vec![sum("l_extendedprice")],
            group_by: vec![],
            order_by: vec![],
        },
        TemplateSpec {
            id: 20,
            label: "q20_potential_part_promotion".to_string(),
            joins: vec![
                ("ps_suppkey".to_string(), "s_suppkey".to_string()),
                ("ps_partkey".to_string(), "p_partkey".to_string()),
                ("s_nationkey".to_string(), "n_nationkey".to_string()),
            ],
            predicates: vec![
                pp("p_name", range(0.04, 0.06)),
                pp("n_name", Eq),
                pp("ps_availqty", Ge { lo: 0.4, hi: 0.6 }),
            ],
            select: names(&["s_name", "s_address"]),
            aggregates: vec![],
            group_by: vec![],
            order_by: names(&["s_name"]),
        },
        TemplateSpec {
            id: 21,
            label: "q21_suppliers_kept_waiting".to_string(),
            joins: vec![
                ("l_suppkey".to_string(), "s_suppkey".to_string()),
                ("l_orderkey".to_string(), "o_orderkey".to_string()),
                ("s_nationkey".to_string(), "n_nationkey".to_string()),
            ],
            predicates: vec![pp("o_orderstatus", Eq), pp("n_name", Eq)],
            select: names(&["s_name"]),
            aggregates: vec![CountStar],
            group_by: names(&["s_name"]),
            order_by: vec![],
        },
        TemplateSpec {
            id: 22,
            label: "q22_global_sales_opportunity".to_string(),
            joins: vec![("c_custkey".to_string(), "o_custkey".to_string())],
            predicates: vec![
                pp("c_phone", range(0.02, 0.06)),
                pp("c_acctbal", Ge { lo: 0.5, hi: 0.7 }),
            ],
            select: vec![],
            aggregates: vec![CountStar, sum("c_acctbal")],
            group_by: vec![],
            order_by: vec![],
        },
    ]
}

/// The 18 templates used as the default workload (following SWIRL's setup,
/// the paper's `N = 18`): the heavy nested templates 2, 17, 20, 21 are
/// excluded, as index-selection papers commonly do.
pub fn default_templates() -> Vec<TemplateSpec> {
    templates()
        .into_iter()
        .filter(|t| ![2, 17, 20, 21].contains(&t.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn schema_has_61_columns() {
        let s = schema();
        assert_eq!(s.num_columns(), 61);
        assert_eq!(s.num_tables(), 8);
        assert_eq!(s.foreign_keys().len(), 9);
    }

    #[test]
    fn stats_cover_every_column() {
        let s = schema();
        let st = column_stats(&s, 1.0);
        assert_eq!(st.len(), 61);
        // Keys are unique.
        let ok = s.column_id("o_orderkey").unwrap();
        assert_eq!(st[ok.0 as usize].ndv, 1_500_000);
        // Categorical stays fixed under scaling.
        let st10 = column_stats(&s, 10.0);
        let flag = s.column_id("l_returnflag").unwrap();
        assert_eq!(st10[flag.0 as usize].ndv, 3);
        assert_eq!(st10[ok.0 as usize].ndv, 15_000_000);
    }

    #[test]
    fn domains_follow_ndv_convention() {
        let s = schema();
        for st in column_stats(&s, 1.0) {
            assert_eq!(st.min, 0);
            assert_eq!(st.max, st.ndv as i64 - 1);
        }
    }

    #[test]
    fn all_22_templates_instantiate() {
        let s = schema();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ts = templates();
        assert_eq!(ts.len(), 22);
        for t in &ts {
            for _ in 0..3 {
                let q = t
                    .instantiate(&s, &mut rng)
                    .unwrap_or_else(|e| panic!("template {} failed: {e}", t.id));
                assert!(q.validate(&s).is_ok(), "template {}", t.id);
            }
        }
    }

    #[test]
    fn default_set_has_18() {
        let ts = default_templates();
        assert_eq!(ts.len(), DEFAULT_WORKLOAD_SIZE);
        assert!(ts.iter().all(|t| ![2, 17, 20, 21].contains(&t.id)));
    }

    #[test]
    fn fk_closure_of_l_partkey_reaches_part() {
        let s = schema();
        let lp = s.column_id("l_partkey").unwrap();
        let closure = s.foreign_key_closure(lp);
        assert!(closure.contains(&s.column_id("p_partkey").unwrap()));
        assert!(closure.contains(&s.column_id("ps_partkey").unwrap()));
    }

    #[test]
    fn templates_touch_many_columns() {
        // The workload must exercise a diverse indexable surface for the
        // probing stage to be meaningful.
        let ts = templates();
        let mut cols: Vec<&str> = ts.iter().flat_map(|t| t.filter_column_names()).collect();
        cols.sort_unstable();
        cols.dedup();
        assert!(cols.len() >= 15, "only {} filter columns", cols.len());
    }
}
