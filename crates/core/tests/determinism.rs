//! The tentpole guarantee: a parallel grid run is bit-identical to a
//! serial one, all the way through JSON serialization (the form the
//! `results/*.json` artifacts take).

use pipa_core::experiment::{build_db, CellConfig, GridSpec, InjectorKind};
use pipa_core::stream::{
    run_stream_grid, run_stream_grid_traced, AttackerStrategy, Cadence, DefensePolicy,
    StreamGridSpec,
};
use pipa_core::{run_grid, run_grid_traced, CellSeed};
use pipa_ia::{AdvisorKind, SpeedPreset, TrajectoryMode};
use pipa_obs::{MemorySink, TraceOutputs};
use pipa_workload::{Benchmark, DriftSchedule};

fn small_spec() -> (CellConfig, GridSpec) {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg.injection_size = 4;
    let spec = GridSpec::new(
        vec![
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            AdvisorKind::Swirl,
        ],
        vec![InjectorKind::Fsm, InjectorKind::Pipa],
        1,
        7,
    );
    (cfg, spec)
}

#[test]
fn parallel_grid_is_bit_identical_to_serial() {
    let (cfg, spec) = small_spec();
    assert!(spec.len() >= 4, "grid must exercise several cells");

    // Fresh database per mode so the what-if caches start cold in both.
    let serial = {
        let db = build_db(&cfg);
        run_grid(&db, &cfg, &spec, 1).unwrap()
    };
    let parallel = {
        let db = build_db(&cfg);
        run_grid(&db, &cfg, &spec, 4).unwrap()
    };

    let ser = |rs: &[(pipa_core::GridCell, pipa_core::StressOutcome)]| {
        let outcomes: Vec<&pipa_core::StressOutcome> = rs.iter().map(|(_, o)| o).collect();
        serde_json::to_string_pretty(&outcomes).expect("serializable")
    };
    assert_eq!(
        ser(&serial),
        ser(&parallel),
        "--jobs 1 and --jobs 4 must serialize identically"
    );

    // Cells come back in spec order regardless of scheduling.
    for ((a, _), (b, _)) in serial.iter().zip(&parallel) {
        assert_eq!(a, b);
    }
    let cells = spec.cells();
    for (got, want) in parallel.iter().map(|(c, _)| c).zip(&cells) {
        assert_eq!(got, want);
    }
}

#[test]
fn grid_reruns_reproduce_and_caching_is_observable() {
    let (cfg, spec) = small_spec();
    let db = build_db(&cfg);
    let first = run_grid(&db, &cfg, &spec, 2).unwrap();
    // Since the join-aware benefit matrix, every decomposable probe is
    // answered from matrix cells (the scalar cost cache only serves
    // non-decomposable fallbacks), so cell hits are where re-issued
    // what-if probes become observable.
    let stats = db.database().whatif_matrix_stats();
    assert!(
        stats.entry_hits > 0,
        "a grid re-issues what-if probes; hits: {stats:?}"
    );

    // Re-running the same grid on the now-warm database changes nothing:
    // cached costs are bit-identical to computed ones.
    let second = run_grid(&db, &cfg, &spec, 2).unwrap();
    let ads =
        |rs: &[(pipa_core::GridCell, pipa_core::StressOutcome)]| -> Vec<f64> {
            rs.iter().map(|(_, o)| o.ad).collect()
        };
    assert_eq!(ads(&first), ads(&second));
    assert!(db.database().whatif_matrix_stats().entry_hits > stats.entry_hits);
}

#[test]
fn seeds_pair_cells_within_a_run() {
    let spec = GridSpec::new(
        vec![AdvisorKind::Swirl],
        vec![InjectorKind::Fsm, InjectorKind::Pipa],
        2,
        99,
    );
    let cells = spec.cells();
    // Same run, different injector → same seed (RD pairing).
    assert_eq!(cells[0].seed, cells[2].seed);
    assert_eq!(cells[1].seed, cells[3].seed);
    // Different runs → different seeds.
    assert_ne!(cells[0].seed, cells[1].seed);
    assert_eq!(cells[0].seed, CellSeed::derive(99, 0));
    assert_eq!(cells[0].seed.get(), pipa_core::derive_seed(99, 0));
}

/// The PR-2 golden-trace guarantee: with a trace sink attached, the JSONL
/// event stream is byte-identical between `--jobs 1` and `--jobs 4`, and
/// the outcomes match the untraced run (observing a cell never perturbs
/// it).
#[test]
fn trace_stream_is_bit_identical_across_job_counts() {
    let (cfg, spec) = small_spec();

    let traced = |jobs: usize| {
        let db = build_db(&cfg);
        let sink = MemorySink::new();
        let out = TraceOutputs::with_sinks(Some(Box::new(sink.clone())), None);
        let results = run_grid_traced(&db, &cfg, &spec, jobs, &out).unwrap();
        (results, sink.contents())
    };
    let (serial, serial_trace) = traced(1);
    let (parallel, parallel_trace) = traced(4);

    assert!(!serial_trace.is_empty(), "trace must capture events");
    assert_eq!(
        serial_trace, parallel_trace,
        "--jobs 1 and --jobs 4 traces must be byte-identical"
    );
    // Every cell contributes its phase walk and outcome.
    assert_eq!(
        serial_trace.matches("\"event\":\"stress_outcome\"").count(),
        spec.len()
    );
    for line in serial_trace.lines() {
        let keys = pipa_obs::json::top_level_keys(line).expect("valid JSON line");
        for req in ["event", "cell_seed", "phase"] {
            assert!(keys.iter().any(|k| k == req), "missing {req} in {line}");
        }
    }

    // Tracing does not perturb the experiment itself.
    let untraced = {
        let db = build_db(&cfg);
        run_grid(&db, &cfg, &spec, 1).unwrap()
    };
    let ads = |rs: &[(pipa_core::GridCell, pipa_core::StressOutcome)]| -> Vec<f64> {
        rs.iter().map(|(_, o)| o.ad).collect()
    };
    assert_eq!(ads(&serial), ads(&parallel));
    assert_eq!(ads(&serial), ads(&untraced));
}

fn small_stream_spec() -> (CellConfig, StreamGridSpec) {
    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    let spec = StreamGridSpec {
        advisor: AdvisorKind::DbaBandit(TrajectoryMode::Best).into(),
        attackers: vec![
            AttackerStrategy::Spread(InjectorKind::Pipa),
            AttackerStrategy::Burst(InjectorKind::Pipa),
        ],
        defenses: vec![DefensePolicy::None, DefensePolicy::Canary { tolerance: 0.02 }],
        cadences: vec![Cadence::Every(1), Cadence::EndOnly],
        windows: 2,
        drift: DriftSchedule::Resample,
        budget: 3,
        runs: 1,
        root_seed: 13,
    };
    (cfg, spec)
}

/// The streaming arms race inherits the grid guarantees: results and the
/// serialized artifact form are bit-identical across `--jobs 1/4/8`.
#[test]
fn stream_grid_is_bit_identical_across_job_counts() {
    let (cfg, spec) = small_stream_spec();
    assert!(spec.len() >= 8, "grid must exercise several cells");

    let run = |jobs: usize| {
        let db = build_db(&cfg);
        run_stream_grid(&db, &cfg, &spec, jobs).unwrap()
    };
    let serial = run(1);
    let ser = |rs: &[(pipa_core::StreamCell, pipa_core::StreamOutcome)]| {
        let outcomes: Vec<&pipa_core::StreamOutcome> = rs.iter().map(|(_, o)| o).collect();
        serde_json::to_string_pretty(&outcomes).expect("serializable")
    };
    let golden = ser(&serial);
    for jobs in [4, 8] {
        let parallel = run(jobs);
        assert_eq!(
            golden,
            ser(&parallel),
            "--jobs 1 and --jobs {jobs} must serialize identically"
        );
        for ((a, _), (b, _)) in serial.iter().zip(&parallel) {
            assert_eq!(a, b);
        }
    }
    // Cells come back in spec order regardless of scheduling.
    for (got, want) in serial.iter().map(|(c, _)| c).zip(&spec.cells()) {
        assert_eq!(got, want);
    }
}

/// Golden-trace determinism for the stream grid: the merged JSONL event
/// stream is byte-identical across `--jobs 1/4/8`, every line carries the
/// cell context, and tracing never perturbs the outcomes.
#[test]
fn stream_trace_is_bit_identical_across_job_counts() {
    let (cfg, spec) = small_stream_spec();

    let traced = |jobs: usize| {
        let db = build_db(&cfg);
        let sink = MemorySink::new();
        let out = TraceOutputs::with_sinks(Some(Box::new(sink.clone())), None);
        let results = run_stream_grid_traced(&db, &cfg, &spec, jobs, &out).unwrap();
        (results, sink.contents())
    };
    let (serial, golden_trace) = traced(1);
    assert!(!golden_trace.is_empty(), "trace must capture events");
    for jobs in [4, 8] {
        let (parallel, trace) = traced(jobs);
        assert_eq!(
            golden_trace, trace,
            "--jobs 1 and --jobs {jobs} traces must be byte-identical"
        );
        let ads = |rs: &[(pipa_core::StreamCell, pipa_core::StreamOutcome)]| -> Vec<f64> {
            rs.iter().map(|(_, o)| o.mean_ad).collect()
        };
        assert_eq!(ads(&serial), ads(&parallel));
    }

    // Every cell contributes its windows and closing outcome, each line
    // tagged with the full arms-race context.
    assert_eq!(
        golden_trace.matches("\"event\":\"stream_outcome\"").count(),
        spec.len()
    );
    assert_eq!(
        golden_trace.matches("\"event\":\"stream_window\"").count(),
        spec.len() * spec.windows
    );
    for line in golden_trace.lines() {
        let keys = pipa_obs::json::top_level_keys(line).expect("valid JSON line");
        for req in ["event", "cell_seed", "attacker", "defense", "cadence", "run"] {
            assert!(keys.iter().any(|k| k == req), "missing {req} in {line}");
        }
    }

    // Tracing does not perturb the scenarios.
    let untraced = {
        let db = build_db(&cfg);
        run_stream_grid(&db, &cfg, &spec, 1).unwrap()
    };
    for ((a, x), (b, y)) in serial.iter().zip(&untraced) {
        assert_eq!(a, b);
        assert_eq!(x, y);
    }
}

/// The registry-opened target classes inherit the determinism
/// guarantee: a grid mixing a built-in advisor with the in-context
/// kind, and learned-index-backend cells mapped with fresh per-cell
/// backends (a learned backend mutates under `observe_training`, so
/// sharing one across cells would leak refits), all serialize
/// bit-identically across worker counts.
#[test]
fn mixed_target_classes_stay_bit_identical_across_job_counts() {
    use pipa_core::experiment::{normal_workload, run_cell};
    use pipa_core::runner::par_map;
    use pipa_cost::{CostBackend, LearnedIndexBackend, LearnedIndexConfig};
    use pipa_ia::AdvisorSpec;

    let mut cfg = CellConfig::quick(Benchmark::TpcH);
    cfg.preset = SpeedPreset::Test;
    cfg.probe_epochs = 2;
    cfg.injection_size = 4;

    // Built-in + in-context through the shared-simulator grid.
    let spec = GridSpec::new(
        vec![
            AdvisorSpec::from(AdvisorKind::DbaBandit(TrajectoryMode::Best)),
            AdvisorSpec::new("incontext"),
        ],
        vec![InjectorKind::Pipa],
        1,
        21,
    );
    let grid = |jobs: usize| {
        let db = build_db(&cfg);
        run_grid(&db, &cfg, &spec, jobs).unwrap()
    };
    let ser = |rs: &[(pipa_core::GridCell, pipa_core::StressOutcome)]| {
        let outcomes: Vec<&pipa_core::StressOutcome> = rs.iter().map(|(_, o)| o).collect();
        serde_json::to_string_pretty(&outcomes).expect("serializable")
    };
    let serial = grid(1);
    assert_eq!(
        ser(&serial),
        ser(&grid(4)),
        "the mixed advisor grid must serialize identically across --jobs"
    );
    assert!(serial.iter().any(|(_, o)| o.advisor == "InContext"));

    // Learned-index cells: one fresh bulk-loaded backend per cell.
    let learned = |jobs: usize| -> Vec<pipa_core::StressOutcome> {
        par_map(jobs, vec![0u64, 1], |_, run| {
            let seed = CellSeed::derive(21, run);
            let sim = build_db(&cfg);
            let backend = LearnedIndexBackend::new(
                sim.catalog(),
                LearnedIndexConfig {
                    seed: seed.get(),
                    ..LearnedIndexConfig::fast()
                },
            );
            let normal = normal_workload(&cfg, seed.get());
            run_cell(
                &backend,
                &normal,
                AdvisorSpec::new("dbabandit"),
                InjectorKind::Pipa,
                &cfg,
                seed,
            )
            .unwrap()
        })
    };
    let learned_serial = learned(1);
    let ser_cells = |outs: &[pipa_core::StressOutcome]| {
        serde_json::to_string_pretty(&outs.iter().collect::<Vec<_>>()).expect("serializable")
    };
    assert_eq!(
        ser_cells(&learned_serial),
        ser_cells(&learned(4)),
        "learned-index cells must serialize identically across worker counts"
    );
    assert!(learned_serial.iter().all(|o| o.ad.is_finite()));
}

/// The in-context advisor runs the streaming arms race under the same
/// cross-jobs guarantee as the built-ins.
#[test]
fn incontext_stream_grid_is_bit_identical_across_job_counts() {
    use pipa_ia::AdvisorSpec;

    let (cfg, mut spec) = small_stream_spec();
    spec.advisor = AdvisorSpec::new("incontext");
    spec.attackers = vec![AttackerStrategy::Spread(InjectorKind::Pipa)];
    spec.cadences = vec![Cadence::Every(1)];

    let run = |jobs: usize| {
        let db = build_db(&cfg);
        run_stream_grid(&db, &cfg, &spec, jobs).unwrap()
    };
    let ser = |rs: &[(pipa_core::StreamCell, pipa_core::StreamOutcome)]| {
        let outcomes: Vec<&pipa_core::StreamOutcome> = rs.iter().map(|(_, o)| o).collect();
        serde_json::to_string_pretty(&outcomes).expect("serializable")
    };
    let serial = run(1);
    assert_eq!(
        ser(&serial),
        ser(&run(4)),
        "the in-context stream grid must serialize identically across --jobs"
    );
    assert!(serial.iter().all(|(_, o)| o.advisor == "InContext"));
}

/// With no sink attached the recorder never switches on: the traced entry
/// point degrades to exactly the plain one.
#[test]
fn disabled_outputs_record_nothing_and_match_the_plain_path() {
    let (cfg, spec) = small_spec();
    assert!(!pipa_obs::is_recording());
    let db = build_db(&cfg);
    let disabled = TraceOutputs::disabled();
    let via_traced = run_grid_traced(&db, &cfg, &spec, 2, &disabled).unwrap();
    assert!(!pipa_obs::is_recording());
    let plain = run_grid(&db, &cfg, &spec, 2).unwrap();
    for ((a, x), (b, y)) in via_traced.iter().zip(&plain) {
        assert_eq!(a, b);
        assert_eq!(x.ad, y.ad);
        assert_eq!(x.baseline_cost, y.baseline_cost);
    }
}
