//! The probing stage (paper §4, Algorithm 1).
//!
//! Each epoch samples a column set from the probability vector `μ`, asks
//! the query generator for a probing workload that those columns would
//! optimize, submits it to the opaque-box advisor, observes the
//! recommended configuration's benefit, and updates the per-column `K`
//! accumulators (Eq. 8) plus `μ` (Eq. 9).
//!
//! Equation 9 as printed in the paper is partly garbled; this module
//! implements the mechanism its surrounding text describes precisely:
//!
//! * a column whose average observed reward is high gets *less* probing
//!   probability (its rank is already established);
//! * a column that was probed repeatedly and never produced any reward is
//!   *retired* (`μ = 0`) — the `β` sparsity rule, operationalized as a
//!   dead-probe threshold derived from `β = 1/(i + n)`;
//! * everything else keeps exploring, with `α` scaling how strongly new
//!   observations move the distribution.

use crate::preference::IndexingPreference;
use pipa_cost::{CostBackend, CostResult};
use pipa_ia::IndexAdvisor;
use pipa_qgen::QueryGenerator;
use pipa_sim::{ColumnId, IndexConfig, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Probing hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// Probing epochs `P` (paper default: 20).
    pub epochs: usize,
    /// Queries per probing workload `N_p` (paper: the normal-workload
    /// size).
    pub queries_per_epoch: usize,
    /// Columns specified per generated query `|{c}|` (paper default: 4).
    pub columns_per_query: usize,
    /// Learning rate `α` (paper default: 0.1 after reward normalization).
    pub alpha: f64,
    /// Sparsity parameter `β = 1/(i + n)`; this stores `i` (paper default:
    /// `i = 10`).
    pub beta_i: f64,
    /// Requested benefit for generated probing queries.
    pub target_reward: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            epochs: 20,
            queries_per_epoch: 18,
            columns_per_query: 4,
            alpha: 0.1,
            beta_i: 10.0,
            target_reward: 0.6,
            seed: 0,
        }
    }
}

impl ProbeConfig {
    /// `β` itself, given the number of indexable columns.
    pub fn beta(&self, num_columns: usize) -> f64 {
        1.0 / (self.beta_i + num_columns as f64)
    }

    /// Dead-probe threshold derived from `β`: larger `β` (smaller `i`)
    /// retires unproductive columns sooner — reproducing Figure 12b's
    /// speed/accuracy trade-off.
    pub fn dead_probe_threshold(&self) -> usize {
        ((self.beta_i / 3.0).ceil() as usize + 1).max(2)
    }
}

/// Probing outcome.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// The estimated indexing preference.
    pub preference: IndexingPreference,
    /// Final sampling distribution `μ`.
    pub mu: Vec<f64>,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Per-epoch history of the top-ranked column (convergence analysis).
    pub best_trace: Vec<ColumnId>,
    /// Number of retired (dead) columns.
    pub retired: usize,
}

/// Run the probing stage (Algorithm 1).
pub fn probe(
    advisor: &mut dyn IndexAdvisor,
    cost: &dyn CostBackend,
    generator: &mut dyn QueryGenerator,
    cfg: &ProbeConfig,
) -> CostResult<ProbeResult> {
    pipa_obs::phase("probe");
    let l = cost.catalog().schema.num_columns();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x9806);
    let mut mu = vec![1.0 / l as f64; l];
    let mut k_sum = vec![0.0f64; l];
    let mut reward_sum = vec![0.0f64; l];
    let mut reward_count = vec![0u32; l];
    let mut zero_probes = vec![0u32; l];
    let dead_threshold = cfg.dead_probe_threshold() as u32;
    let mut best_trace = Vec::with_capacity(cfg.epochs);

    for p in 1..=cfg.epochs {
        // Build the probing workload PW^p.
        let mut pw = Workload::new();
        let mut targeted: Vec<ColumnId> = Vec::new();
        for _ in 0..cfg.queries_per_epoch {
            let cols = sample_columns(&mu, cfg.columns_per_query, &mut rng);
            if cols.is_empty() {
                break;
            }
            if let Some(q) = generator.generate(cost, &cols, cfg.target_reward)? {
                // Probing queries carry unit frequency (§6.5).
                pw.push(q, 1);
                targeted.extend(cols);
            }
        }
        if pw.is_empty() {
            break;
        }
        targeted.sort_unstable();
        targeted.dedup();

        // Observe the advisor's output on PW (opaque-box interaction).
        // Both configs are costed in one matrix-backed batch: the benefit
        // rows built here are the same ones the advisor's own candidate
        // scoring warmed during `recommend`.
        let rec: IndexConfig = advisor.recommend(cost, &pw)?;
        let costs = cost.batch_workload_cost(&pw, &[IndexConfig::empty(), rec.clone()])?;
        let (base, with) = (costs[0], costs[1]);
        let benefit = if base > 0.0 {
            ((base - with) / base).max(0.0)
        } else {
            0.0
        };
        let leading = rec.leading_columns();
        let share = if leading.is_empty() {
            0.0
        } else {
            benefit / leading.len() as f64
        };

        // Eq. 8: accumulate K for recommended leading columns.
        for &c in &leading {
            k_sum[c.0 as usize] += share;
            reward_sum[c.0 as usize] += share;
            reward_count[c.0 as usize] += 1;
        }
        // Targeted-but-unrewarded columns move toward retirement.
        for &c in &targeted {
            if !leading.contains(&c) {
                zero_probes[c.0 as usize] += 1;
            } else {
                zero_probes[c.0 as usize] = 0;
            }
        }

        // Eq. 9 (as described): damp well-observed columns, retire dead
        // ones, renormalize.
        for j in 0..l {
            if zero_probes[j] >= dead_threshold {
                mu[j] = 0.0;
                continue;
            }
            if mu[j] == 0.0 {
                continue;
            }
            let avg_r = if reward_count[j] > 0 {
                reward_sum[j] / f64::from(reward_count[j])
            } else {
                0.0
            };
            // Higher observed reward → lower future probing probability.
            mu[j] = (mu[j] * (1.0 - cfg.alpha * avg_r.clamp(0.0, 1.0))).max(1e-12);
        }
        let total: f64 = mu.iter().sum();
        if total <= 0.0 {
            // Everything retired: stop early.
            let best = current_best(&k_sum);
            best_trace.push(best);
            emit_epoch(p, pw.len(), benefit, best);
            return finish(cost, k_sum, mu, p, best_trace, &zero_probes, dead_threshold);
        }
        for m in &mut mu {
            *m /= total;
        }
        let best = current_best(&k_sum);
        best_trace.push(best);
        emit_epoch(p, pw.len(), benefit, best);
    }

    let epochs_run = best_trace.len();
    finish(
        cost,
        k_sum,
        mu,
        epochs_run,
        best_trace,
        &zero_probes,
        dead_threshold,
    )
}

/// One `probe_epoch` trace event: the epoch index, probing-workload
/// size, observed benefit, and the currently top-ranked column.
fn emit_epoch(epoch: usize, queries: usize, benefit: f64, best: ColumnId) {
    if pipa_obs::is_recording() {
        pipa_obs::emit(
            pipa_obs::Event::new("probe_epoch")
                .field("epoch", epoch)
                .field("queries", queries)
                .field("benefit", benefit)
                .field("best_col", u64::from(best.0)),
        );
    }
}

fn finish(
    cost: &dyn CostBackend,
    mut k_sum: Vec<f64>,
    mu: Vec<f64>,
    epochs_run: usize,
    best_trace: Vec<ColumnId>,
    zero_probes: &[u32],
    dead_threshold: u32,
) -> CostResult<ProbeResult> {
    // Normalize K by epochs (Eq. 8's 1/P factor; ordering-invariant).
    if epochs_run > 0 {
        for k in &mut k_sum {
            *k /= epochs_run as f64;
        }
    }
    // Columns the probing budget never observed are ranked below every
    // observed column, ordered by the *evaluator-side* indexability
    // prior: the evaluator owns replica tables (§3 trains IABART on "the
    // evaluator's own data tables d"), so it can judge which unobserved
    // columns are plausible indexes. This breaks the K = 0 ties the way
    // the paper's denser probing does, instead of by column id.
    let retired = zero_probes.iter().filter(|&&z| z >= dead_threshold).count();
    Ok(ProbeResult {
        preference: crate::preference::preference_with_prior(cost, k_sum)?,
        mu,
        epochs_run,
        best_trace,
        retired,
    })
}

/// Evaluator-side indexability of each column: the what-if benefit of a
/// single-column index for an equality probe on that column, weighted by
/// the table's absolute scan cost (expensive tables matter more to a
/// training set).
pub fn indexability_prior(cost: &dyn CostBackend) -> CostResult<Vec<f64>> {
    use pipa_sim::{Aggregate, Index, Predicate, QueryBuilder};
    let schema = cost.catalog().schema;
    let cols = schema.indexable_columns();
    let mut out = Vec::with_capacity(cols.len());
    for c in cols {
        let q = QueryBuilder::new()
            .filter(schema, Predicate::eq(c, 0.5))
            .aggregate(Aggregate::CountStar)
            .build(schema)
            .expect("probe query");
        // Single-table equality probes: the simulator backend answers
        // them from the benefit matrix (one row per column, shared with
        // later phases).
        let base = cost.query_cost(&q, &IndexConfig::empty())?;
        let with = cost.query_cost(&q, &IndexConfig::from_indexes([Index::single(c)]))?;
        out.push((base - with).max(0.0));
    }
    Ok(out)
}

fn current_best(k_sum: &[f64]) -> ColumnId {
    let mut best = 0usize;
    for (i, &v) in k_sum.iter().enumerate() {
        if v > k_sum[best] {
            best = i;
        }
    }
    ColumnId(best as u32)
}

/// Sample `k` distinct columns from `μ` (without replacement).
fn sample_columns<R: Rng>(mu: &[f64], k: usize, rng: &mut R) -> Vec<ColumnId> {
    let mut weights: Vec<f64> = mu.to_vec();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut r = rng.gen::<f64>() * total;
        let mut pick = weights.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            r -= w;
            if r <= 0.0 {
                pick = i;
                break;
            }
        }
        out.push(ColumnId(pick as u32));
        weights[pick] = 0.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_ia::{AutoAdminGreedy, SpeedPreset};
    use pipa_qgen::StGenerator;
    use pipa_workload::Benchmark;

    fn setup() -> (pipa_cost::SimBackend, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        (pipa_cost::SimBackend::new(db), w)
    }

    #[test]
    fn sample_columns_respects_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mu = vec![0.0, 0.0, 1.0, 0.0];
        let cols = sample_columns(&mu, 1, &mut rng);
        assert_eq!(cols, vec![ColumnId(2)]);
        // Without replacement; zero-weight columns are never drawn, so
        // only the two positive-weight columns come back.
        let mu = vec![0.5, 0.5, 0.0, 0.0];
        let cols = sample_columns(&mu, 3, &mut rng);
        let mut dedup = cols.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup, vec![ColumnId(0), ColumnId(1)]);
    }

    #[test]
    fn probing_a_greedy_advisor_finds_its_preferences() {
        // AutoAdmin recommends purely by what-if benefit, so probing it
        // must surface genuinely selective columns at the top.
        let (cost, _) = setup();
        let mut advisor = AutoAdminGreedy::new(4);
        let mut generator = StGenerator::new(3);
        let cfg = ProbeConfig {
            epochs: 8,
            queries_per_epoch: 6,
            ..Default::default()
        };
        let res = probe(&mut advisor, &cost, &mut generator, &cfg).unwrap();
        assert!(res.epochs_run >= 1);
        assert!(res.preference.num_positive() >= 3, "saw some columns");
        // The top column must have actually been rewarded.
        let best = res.preference.best();
        assert!(res.preference.k_values[best.0 as usize] > 0.0);
    }

    #[test]
    fn probing_is_deterministic_under_seed() {
        let (cost, _) = setup();
        let run = |seed| {
            let mut advisor = AutoAdminGreedy::new(4);
            let mut generator = StGenerator::new(77);
            let cfg = ProbeConfig {
                epochs: 4,
                queries_per_epoch: 4,
                seed,
                ..Default::default()
            };
            probe(&mut advisor, &cost, &mut generator, &cfg)
                .unwrap()
                .preference
                .ranking
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn dead_probe_threshold_tracks_beta() {
        let tight = ProbeConfig {
            beta_i: 4.0 / 3.0,
            ..Default::default()
        };
        let loose = ProbeConfig {
            beta_i: 20.0,
            ..Default::default()
        };
        assert!(tight.dead_probe_threshold() < loose.dead_probe_threshold());
        assert!(tight.beta(61) > loose.beta(61));
    }

    #[test]
    fn probing_respects_learned_advisors_too() {
        // Smoke test against a learned advisor (opaque-box path).
        let (cost, w) = setup();
        let mut advisor = pipa_ia::build_advisor(
            pipa_ia::AdvisorKind::DbaBandit(pipa_ia::TrajectoryMode::Best),
            SpeedPreset::Test,
            1,
        );
        advisor.train(&cost, &w).unwrap();
        let mut generator = StGenerator::new(4);
        let cfg = ProbeConfig {
            epochs: 3,
            queries_per_epoch: 4,
            ..Default::default()
        };
        let res = probe(advisor.as_mut(), &cost, &mut generator, &cfg).unwrap();
        assert_eq!(res.mu.len(), 61);
        assert!(res.epochs_run >= 1);
    }
}
