//! Robustness metrics: Absolute and Relative performance Degradation
//! (paper Definitions 2.3–2.5) plus the aggregation statistics the
//! figures report (means, standard deviations, box-plot quartiles).

/// Absolute performance Degradation: the relative increase in the target
/// workload's execution cost after the advisor is retrained on the
/// polluted training set (Definition 2.3).
pub fn absolute_degradation(poisoned_cost: f64, baseline_cost: f64) -> f64 {
    if baseline_cost <= 0.0 {
        return 0.0;
    }
    (poisoned_cost - baseline_cost) / baseline_cost
}

/// Relative performance Degradation: how much a toxic injection exceeds
/// the degradation expected from random injections (Definition 2.5).
pub fn relative_degradation(ad_toxic: f64, ad_random_mean: f64) -> f64 {
    ad_toxic - ad_random_mean
}

/// Whether an injection was toxic (Definition 2.4).
pub fn is_toxic(poisoned_cost: f64, baseline_cost: f64) -> bool {
    poisoned_cost > baseline_cost
}

/// Summary statistics over repeated runs (box-plot material).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Stats {
    /// Compute over a sample (empty input yields zeros).
    pub fn from_samples(xs: &[f64]) -> Stats {
        if xs.is_empty() {
            return Stats {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
            };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Stats {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[n - 1],
        }
    }
}

/// Linear-interpolated quantile of a sorted sample.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ad_is_relative_increase() {
        assert!((absolute_degradation(120.0, 100.0) - 0.2).abs() < 1e-12);
        assert!((absolute_degradation(80.0, 100.0) + 0.2).abs() < 1e-12);
        assert_eq!(absolute_degradation(50.0, 0.0), 0.0);
    }

    #[test]
    fn toxicity_matches_definition() {
        assert!(is_toxic(101.0, 100.0));
        assert!(!is_toxic(100.0, 100.0));
        assert!(!is_toxic(90.0, 100.0));
    }

    #[test]
    fn rd_subtracts_random_expectation() {
        assert!((relative_degradation(0.5, 0.1) - 0.4).abs() < 1e-12);
        assert!(relative_degradation(0.1, 0.5) < 0.0);
    }

    #[test]
    fn stats_over_known_sample() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.q1 - 2.0).abs() < 1e-12);
        assert!((s.q3 - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn stats_handle_empty_and_singleton() {
        let e = Stats::from_samples(&[]);
        assert_eq!(e.n, 0);
        let s = Stats::from_samples(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
