//! Injection-workload strategies: PIPA plus the five baselines of §6.2.
//!
//! | name | columns targeted                         | generator  |
//! |------|------------------------------------------|------------|
//! | TP   | (template instantiations, no targeting)  | templates  |
//! | FSM  | (random queries, no targeting)           | FSM        |
//! | I-R  | random columns                           | index-aware|
//! | I-L  | low-ranked (bottom 50% of probed rank)   | index-aware|
//! | P-C  | mid-ranked by the *clear-box* parameters | index-aware|
//! | PIPA | mid-ranked by the *probed* rank + filter | index-aware|

use crate::inject::{inject, InjectConfig};
use crate::preference::{segment, IndexingPreference, SegmentConfig, Segments};
use crate::probe::{probe, ProbeConfig};
use pipa_cost::{CostBackend, CostResult};
use pipa_ia::ClearBoxAdvisor;
use pipa_qgen::QueryGenerator;
use pipa_sim::{ColumnId, Workload};
use pipa_workload::TemplateSpec;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An injection-workload builder. `advisor` is the (already trained)
/// victim; opaque-box strategies only call its public interface, the
/// clear-box baseline also reads its internal preferences.
pub trait Injector {
    /// Display name matching the paper's figures.
    fn name(&self) -> &str;

    /// Build an injection workload of `n` queries.
    fn build(
        &mut self,
        advisor: &mut dyn ClearBoxAdvisor,
        cost: &dyn CostBackend,
        n: usize,
        seed: u64,
    ) -> CostResult<Workload>;
}

/// TP: fresh template instantiations with uniform random frequencies.
pub struct TpInjector {
    templates: Vec<TemplateSpec>,
}

impl TpInjector {
    /// Over a benchmark's template pool.
    pub fn new(templates: Vec<TemplateSpec>) -> Self {
        TpInjector { templates }
    }
}

impl Injector for TpInjector {
    fn name(&self) -> &str {
        "TP"
    }

    fn build(
        &mut self,
        _advisor: &mut dyn ClearBoxAdvisor,
        cost: &dyn CostBackend,
        n: usize,
        seed: u64,
    ) -> CostResult<Workload> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x79);
        let schema = cost.catalog().schema;
        let mut w = Workload::new();
        for i in 0..n {
            let t = &self.templates[i % self.templates.len()];
            if let Ok(q) = t.instantiate(schema, &mut rng) {
                w.push(q, rng.gen_range(1..=10));
            }
        }
        Ok(w)
    }
}

/// Generic generator-backed injector with a column-targeting policy.
pub struct TargetedInjector {
    name: String,
    generator: Box<dyn QueryGenerator>,
    policy: TargetPolicy,
    /// Probing configuration (used by the policies that probe).
    pub probe_cfg: ProbeConfig,
    /// Segmentation configuration (mid-ranked policies).
    pub segment_cfg: SegmentConfig,
    /// Injection configuration (PIPA's filter etc.).
    pub inject_cfg: InjectConfig,
}

/// How target columns are chosen.
pub enum TargetPolicy {
    /// No targeting at all: raw generator output (the FSM baseline).
    None,
    /// Random columns per query (I-R).
    Random,
    /// Bottom 50% of the probed ranking (I-L).
    LowRanked,
    /// Mid segment of the probed ranking + toxicity filter (PIPA).
    MidRankedProbed,
    /// Mid segment of the *clear-box* internal ranking + filter (P-C).
    MidRankedClearBox,
}

impl TargetedInjector {
    /// Construct with a policy and generator.
    pub fn new(name: &str, generator: Box<dyn QueryGenerator>, policy: TargetPolicy) -> Self {
        TargetedInjector {
            name: name.to_string(),
            generator,
            policy,
            probe_cfg: ProbeConfig::default(),
            segment_cfg: SegmentConfig::default(),
            inject_cfg: InjectConfig::default(),
        }
    }

    /// The FSM baseline.
    pub fn fsm(seed: u64) -> Self {
        Self::new(
            "FSM",
            Box::new(pipa_qgen::FsmGenerator::new(seed)),
            TargetPolicy::None,
        )
    }

    /// I-R over a generator.
    pub fn i_r(generator: Box<dyn QueryGenerator>) -> Self {
        Self::new("I-R", generator, TargetPolicy::Random)
    }

    /// I-L over a generator.
    pub fn i_l(generator: Box<dyn QueryGenerator>) -> Self {
        Self::new("I-L", generator, TargetPolicy::LowRanked)
    }

    /// PIPA over a generator.
    pub fn pipa(generator: Box<dyn QueryGenerator>) -> Self {
        Self::new("PIPA", generator, TargetPolicy::MidRankedProbed)
    }

    /// P-C over a generator.
    pub fn p_c(generator: Box<dyn QueryGenerator>) -> Self {
        Self::new("P-C", generator, TargetPolicy::MidRankedClearBox)
    }

    fn probed_segments(
        &mut self,
        advisor: &mut dyn ClearBoxAdvisor,
        cost: &dyn CostBackend,
        seed: u64,
    ) -> CostResult<(IndexingPreference, Segments)> {
        let cfg = ProbeConfig {
            seed,
            ..self.probe_cfg
        };
        let res = probe(as_index_advisor(advisor), cost, self.generator.as_mut(), &cfg)?;
        let seg = segment(&res.preference, cost.catalog().schema, &self.segment_cfg);
        Ok((res.preference, seg))
    }
}

/// Upcast helper (`ClearBoxAdvisor: IndexAdvisor`).
fn as_index_advisor(a: &mut dyn ClearBoxAdvisor) -> &mut dyn pipa_ia::IndexAdvisor {
    a
}

impl Injector for TargetedInjector {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(
        &mut self,
        advisor: &mut dyn ClearBoxAdvisor,
        cost: &dyn CostBackend,
        n: usize,
        seed: u64,
    ) -> CostResult<Workload> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1417);
        let inj_cfg = InjectConfig {
            workload_size: n,
            seed,
            ..self.inject_cfg
        };
        match self.policy {
            TargetPolicy::None => {
                let mut w = Workload::new();
                let mut attempts = 0;
                while w.len() < n && attempts < n * 6 {
                    attempts += 1;
                    if let Some(q) = self.generator.generate(cost, &[], 0.5)? {
                        w.push(q, 1);
                    }
                }
                Ok(w)
            }
            TargetPolicy::Random => {
                let all = cost.catalog().schema.indexable_columns();
                let k = inj_cfg.columns_per_query;
                let mut w = Workload::new();
                let mut attempts = 0;
                while w.len() < n && attempts < n * 6 {
                    attempts += 1;
                    let cols: Vec<ColumnId> = all.choose_multiple(&mut rng, k).copied().collect();
                    if let Some(q) = self.generator.generate(cost, &cols, inj_cfg.target_reward)? {
                        w.push(q, rng.gen_range(1..=10));
                    }
                }
                Ok(w)
            }
            TargetPolicy::LowRanked => {
                let (pref, _) = self.probed_segments(advisor, cost, seed)?;
                let l = pref.ranking.len();
                let low: Vec<ColumnId> = pref.ranking[l / 2..].to_vec();
                let k = inj_cfg.columns_per_query.min(low.len()).max(1);
                let mut w = Workload::new();
                let mut attempts = 0;
                while w.len() < n && attempts < n * 6 {
                    attempts += 1;
                    let cols: Vec<ColumnId> = low.choose_multiple(&mut rng, k).copied().collect();
                    if let Some(q) = self.generator.generate(cost, &cols, inj_cfg.target_reward)? {
                        w.push(q, rng.gen_range(1..=10));
                    }
                }
                Ok(w)
            }
            TargetPolicy::MidRankedProbed => {
                let (_, seg) = self.probed_segments(advisor, cost, seed)?;
                Ok(inject(cost, self.generator.as_mut(), &seg, &inj_cfg)?.workload)
            }
            TargetPolicy::MidRankedClearBox => {
                let prefs = advisor.column_preferences(cost);
                let k_values: Vec<f64> = {
                    let mut v = vec![0.0; cost.catalog().schema.num_columns()];
                    for (c, p) in prefs {
                        v[c.0 as usize] = p.max(0.0);
                    }
                    v
                };
                let pref = crate::preference::preference_with_prior(cost, k_values)?;
                let seg = segment(&pref, cost.catalog().schema, &self.segment_cfg);
                Ok(inject(cost, self.generator.as_mut(), &seg, &inj_cfg)?.workload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_ia::{build_clear_box, AdvisorKind, SpeedPreset, TrajectoryMode};
    use pipa_qgen::StGenerator;
    use pipa_workload::Benchmark;

    fn setup() -> (pipa_cost::SimBackend, Workload, Box<dyn ClearBoxAdvisor>) {
        let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        let mut ia = build_clear_box(
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            SpeedPreset::Test,
            1,
        );
        ia.train(&cost, &w).unwrap();
        (cost, w, ia)
    }

    fn fast_probe() -> ProbeConfig {
        ProbeConfig {
            epochs: 3,
            queries_per_epoch: 4,
            ..Default::default()
        }
    }

    #[test]
    fn tp_injector_uses_templates() {
        let (cost, _, mut ia) = setup();
        let mut inj = TpInjector::new(Benchmark::TpcH.default_templates());
        let w = inj.build(ia.as_mut(), &cost, 12, 3).unwrap();
        assert_eq!(w.len(), 12);
        assert!(w.iter().all(|wq| wq.frequency >= 1));
    }

    #[test]
    fn fsm_injector_ignores_advisor() {
        let (cost, _, mut ia) = setup();
        let mut inj = TargetedInjector::fsm(9);
        let w = inj.build(ia.as_mut(), &cost, 10, 3).unwrap();
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn pipa_injector_avoids_top_column() {
        let (cost, _, mut ia) = setup();
        let mut inj = TargetedInjector::pipa(Box::new(StGenerator::new(4)));
        inj.probe_cfg = fast_probe();
        let w = inj.build(ia.as_mut(), &cost, 8, 3).unwrap();
        assert!(!w.is_empty(), "pipa built an injection workload");
    }

    #[test]
    fn p_c_reads_clear_box() {
        let (cost, _, mut ia) = setup();
        let mut inj = TargetedInjector::p_c(Box::new(StGenerator::new(5)));
        let w = inj.build(ia.as_mut(), &cost, 8, 3).unwrap();
        assert!(!w.is_empty());
    }

    #[test]
    fn i_l_targets_low_ranked() {
        let (cost, _, mut ia) = setup();
        let mut inj = TargetedInjector::i_l(Box::new(StGenerator::new(6)));
        inj.probe_cfg = fast_probe();
        let w = inj.build(ia.as_mut(), &cost, 6, 3).unwrap();
        assert!(!w.is_empty());
    }

    #[test]
    fn names_match_the_paper() {
        let gen = || Box::new(StGenerator::new(0)) as Box<dyn QueryGenerator>;
        assert_eq!(TargetedInjector::i_r(gen()).name(), "I-R");
        assert_eq!(TargetedInjector::i_l(gen()).name(), "I-L");
        assert_eq!(TargetedInjector::pipa(gen()).name(), "PIPA");
        assert_eq!(TargetedInjector::p_c(gen()).name(), "P-C");
        assert_eq!(TargetedInjector::fsm(0).name(), "FSM");
        assert_eq!(TpInjector::new(vec![]).name(), "TP");
    }
}
