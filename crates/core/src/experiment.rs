//! Shared experiment plumbing used by the `pipa-bench` binaries: build
//! databases/workloads per run, construct generators (ST or a trained
//! IABART), wire up injectors by name, and run advisor × injector cells.

use crate::harness::{StressOutcome, StressTest};
use crate::injectors::{Injector, TargetedInjector, TpInjector};
use crate::probe::ProbeConfig;
use crate::runner::{par_map_traced, CellSeed};
use pipa_cost::{CostBackend, CostResult, SimBackend};
use pipa_ia::{AdvisorSpec, SpeedPreset};
use pipa_obs::{CellCtx, TraceOutputs};
use pipa_qgen::{build_corpus, Iabart, IabartConfig, IabartGenerator, QueryGenerator, StGenerator};
use pipa_sim::Workload;
use pipa_workload::{generator::WorkloadGenerator, Benchmark};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which query generator backs the index-aware injectors.
#[derive(Clone)]
pub enum GenBackend {
    /// Direct ST construction (fast; used by `--quick` runs).
    St,
    /// A trained IABART model, cloned per injector.
    Iabart(Box<Iabart>),
}

impl GenBackend {
    /// Train an IABART backend against a cost backend.
    pub fn train_iabart(cost: &dyn CostBackend, corpus_size: usize, seed: u64) -> CostResult<Self> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00c0_7215);
        let corpus = build_corpus(cost, corpus_size, &mut rng)?;
        let mut model = Iabart::new(
            cost.catalog().schema.clone(),
            IabartConfig {
                seed,
                ..IabartConfig::default()
            },
        );
        model.train(&corpus);
        Ok(GenBackend::Iabart(Box::new(model)))
    }

    /// Instantiate a generator from this backend.
    pub fn generator(&self, seed: u64) -> Box<dyn QueryGenerator> {
        match self {
            GenBackend::St => Box::new(StGenerator::new(seed)),
            GenBackend::Iabart(model) => Box::new(IabartGenerator::new((**model).clone())),
        }
    }
}

/// The six injection strategies of the paper's main experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectorKind {
    /// Template instantiations.
    Tp,
    /// Random FSM queries.
    Fsm,
    /// Index-aware generator, random columns.
    IR,
    /// Index-aware generator, low-ranked probed columns.
    IL,
    /// Clear-box mid-ranked.
    PC,
    /// PIPA (probed mid-ranked + toxicity filter).
    Pipa,
}

impl InjectorKind {
    /// All six, in the paper's presentation order.
    pub fn all() -> Vec<InjectorKind> {
        vec![
            InjectorKind::Tp,
            InjectorKind::Fsm,
            InjectorKind::IR,
            InjectorKind::IL,
            InjectorKind::PC,
            InjectorKind::Pipa,
        ]
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            InjectorKind::Tp => "TP",
            InjectorKind::Fsm => "FSM",
            InjectorKind::IR => "I-R",
            InjectorKind::IL => "I-L",
            InjectorKind::PC => "P-C",
            InjectorKind::Pipa => "PIPA",
        }
    }

    /// Whether this strategy counts as a *random* injection when
    /// computing RD (Definition 2.5 compares toxic against random).
    pub fn is_random_baseline(self) -> bool {
        matches!(
            self,
            InjectorKind::Tp | InjectorKind::Fsm | InjectorKind::IR
        )
    }
}

/// Everything one experiment cell needs.
#[derive(Clone)]
pub struct CellConfig {
    /// Benchmark and scale.
    pub benchmark: Benchmark,
    /// Scale factor (paper's "1GB"/"10GB" → 1.0/10.0).
    pub scale: f64,
    /// Advisor training/trial preset.
    pub preset: SpeedPreset,
    /// Injection workload size `N̂`.
    pub injection_size: usize,
    /// Probing epochs `P`.
    pub probe_epochs: usize,
    /// Generator backend.
    pub backend: GenBackend,
    /// Materialize data (seed, row cap) for actual-cost measurement.
    pub materialize: Option<(u64, u32)>,
}

impl CellConfig {
    /// Sensible quick defaults for a benchmark.
    pub fn quick(benchmark: Benchmark) -> Self {
        CellConfig {
            benchmark,
            scale: 1.0,
            preset: SpeedPreset::Quick,
            injection_size: benchmark.default_workload_size(),
            probe_epochs: 8,
            backend: GenBackend::St,
            materialize: None,
        }
    }
}

/// Build the simulator-backed cost backend for a cell.
pub fn build_db(cfg: &CellConfig) -> SimBackend {
    SimBackend::new(cfg.benchmark.database(cfg.scale, cfg.materialize))
}

/// Fresh normal workload for one run.
pub fn normal_workload(cfg: &CellConfig, run_seed: u64) -> Workload {
    let gen = WorkloadGenerator::new(cfg.benchmark.schema(), cfg.benchmark.default_templates());
    gen.normal(&mut ChaCha8Rng::seed_from_u64(run_seed ^ 0x4021))
        .expect("benchmark templates instantiate")
}

/// Construct an injector of the given kind.
pub fn make_injector(kind: InjectorKind, cfg: &CellConfig, seed: CellSeed) -> Box<dyn Injector> {
    let seed = seed.get();
    let probe_cfg = ProbeConfig {
        epochs: cfg.probe_epochs,
        queries_per_epoch: cfg.benchmark.default_workload_size(),
        seed,
        ..Default::default()
    };
    match kind {
        InjectorKind::Tp => Box::new(TpInjector::new(cfg.benchmark.default_templates())),
        InjectorKind::Fsm => Box::new(TargetedInjector::fsm(seed)),
        InjectorKind::IR => Box::new(TargetedInjector::i_r(cfg.backend.generator(seed))),
        InjectorKind::IL => {
            let mut inj = TargetedInjector::i_l(cfg.backend.generator(seed));
            inj.probe_cfg = probe_cfg;
            Box::new(inj)
        }
        InjectorKind::PC => Box::new(TargetedInjector::p_c(cfg.backend.generator(seed))),
        InjectorKind::Pipa => {
            let mut inj = TargetedInjector::pipa(cfg.backend.generator(seed));
            inj.probe_cfg = probe_cfg;
            Box::new(inj)
        }
    }
}

/// Run one (advisor, injector) cell once.
///
/// The advisor is named by anything convertible to an [`AdvisorSpec`] —
/// an `AdvisorKind` value or a spec carrying a custom registered kind id
/// — and resolved through the target registry; an unregistered kind
/// surfaces as [`pipa_cost::CostError::UnknownTarget`], not a panic.
pub fn run_cell(
    cost: &dyn CostBackend,
    normal: &Workload,
    advisor: impl Into<AdvisorSpec>,
    injector_kind: InjectorKind,
    cfg: &CellConfig,
    seed: CellSeed,
) -> CostResult<StressOutcome> {
    let spec = advisor.into();
    let mut advisor = spec.build_with(pipa_ia::BuildCtx::new(cfg.preset, seed.get()))?;
    let mut injector = make_injector(injector_kind, cfg, seed);
    StressTest::new(cost, normal)
        .injection_size(cfg.injection_size)
        .actual_cost(cfg.materialize.is_some())
        .seed(seed)
        .run(advisor.as_mut(), injector.as_mut())
}

/// A full advisor × injector × run experiment grid.
///
/// This is the shared specification behind the experiment binaries: the
/// axes to sweep plus a root seed. [`GridSpec::cells`] enumerates the
/// cells in a fixed (advisor-major, then injector, then run) order, and
/// [`run_grid`] evaluates them — serially or in parallel — with results
/// always in that same order.
#[derive(Clone)]
pub struct GridSpec {
    /// Advisors under test, as registry specs (any registered kind id).
    pub advisors: Vec<AdvisorSpec>,
    /// Injection strategies.
    pub injectors: Vec<InjectorKind>,
    /// Repetitions per (advisor, injector) pair.
    pub runs: u64,
    /// Root seed; per-run seeds are derived via
    /// [`CellSeed::derive`]`(root_seed, run)`.
    pub root_seed: u64,
}

/// One cell of a [`GridSpec`]: coordinates plus the derived seed.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Advisor under test.
    pub advisor: AdvisorSpec,
    /// Injection strategy.
    pub injector: InjectorKind,
    /// Run index within the (advisor, injector) pair.
    pub run: u64,
    /// Seed for this cell: [`CellSeed::derive`]`(root_seed, run)`. Cells
    /// of the same run share it deliberately — RD (Definition 2.5)
    /// compares PIPA against random baselines *on the same normal
    /// workload*, and the normal workload is a function of the run seed.
    pub seed: CellSeed,
}

impl GridSpec {
    /// A grid over the given axes. `advisors` accepts anything
    /// convertible to [`AdvisorSpec`] — `AdvisorKind` values from the
    /// paper grid or specs naming custom registered kinds.
    pub fn new<A: Into<AdvisorSpec>>(
        advisors: Vec<A>,
        injectors: Vec<InjectorKind>,
        runs: u64,
        root_seed: u64,
    ) -> Self {
        GridSpec {
            advisors: advisors.into_iter().map(Into::into).collect(),
            injectors,
            runs,
            root_seed,
        }
    }

    /// Every cell, advisor-major then injector then run — the order
    /// [`run_grid`] returns results in, independent of `--jobs`.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(self.len());
        for advisor in &self.advisors {
            for &injector in &self.injectors {
                for run in 0..self.runs {
                    out.push(GridCell {
                        advisor: advisor.clone(),
                        injector,
                        run,
                        seed: CellSeed::derive(self.root_seed, run),
                    });
                }
            }
        }
        out
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.advisors.len() * self.injectors.len() * self.runs as usize
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evaluate every cell of a grid on up to `jobs` worker threads
/// (`0` = all cores), returning `(cell, outcome)` pairs in
/// [`GridSpec::cells`] order regardless of scheduling.
///
/// Each cell regenerates its normal workload from its own seed and runs
/// one full stress test; no state is shared between cells except the
/// database's memoized what-if costs, which are pure functions of their
/// keys. `run_grid(.., 1)` and `run_grid(.., N)` therefore produce
/// identical results — see `DESIGN.md` ("Determinism guarantees").
pub fn run_grid(
    cost: &dyn CostBackend,
    cfg: &CellConfig,
    spec: &GridSpec,
    jobs: usize,
) -> CostResult<Vec<(GridCell, StressOutcome)>> {
    run_grid_traced(cost, cfg, spec, jobs, &TraceOutputs::disabled())
}

/// [`run_grid`] with per-cell observability: each cell records into its
/// own `pipa-obs` scope (context: `cell_seed`, `advisor`, `injector`,
/// `run`) and the buffered traces are flushed to `out` in
/// [`GridSpec::cells`] order — so the trace stream, like the results, is
/// byte-identical across `--jobs` settings.
pub fn run_grid_traced(
    cost: &dyn CostBackend,
    cfg: &CellConfig,
    spec: &GridSpec,
    jobs: usize,
    out: &TraceOutputs,
) -> CostResult<Vec<(GridCell, StressOutcome)>> {
    let results = par_map_traced(
        jobs,
        spec.cells(),
        out,
        |_, cell| {
            CellCtx::new(cell.seed.get())
                .field("advisor", cell.advisor.label())
                .field("injector", cell.injector.label())
                .field("run", cell.run)
        },
        |_, cell| {
            let normal = normal_workload(cfg, cell.seed.get());
            run_cell(
                cost,
                &normal,
                cell.advisor.clone(),
                cell.injector,
                cfg,
                cell.seed,
            )
            .map(|outcome| (cell, outcome))
        },
    );
    out.flush();
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_ia::{AdvisorKind, TrajectoryMode};

    #[test]
    fn injector_kinds_cover_the_paper() {
        let all = InjectorKind::all();
        assert_eq!(all.len(), 6);
        assert!(InjectorKind::Tp.is_random_baseline());
        assert!(InjectorKind::Fsm.is_random_baseline());
        assert!(InjectorKind::IR.is_random_baseline());
        assert!(!InjectorKind::Pipa.is_random_baseline());
        assert!(!InjectorKind::PC.is_random_baseline());
        assert!(!InjectorKind::IL.is_random_baseline());
    }

    #[test]
    fn quick_cell_runs_end_to_end() {
        let mut cfg = CellConfig::quick(Benchmark::TpcH);
        cfg.preset = SpeedPreset::Test;
        cfg.probe_epochs = 3;
        cfg.injection_size = 6;
        let cost = build_db(&cfg);
        let normal = normal_workload(&cfg, 1);
        let out = run_cell(
            &cost,
            &normal,
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            InjectorKind::Pipa,
            &cfg,
            CellSeed::raw(1),
        )
        .unwrap();
        assert_eq!(out.injector, "PIPA");
        assert!(out.baseline_cost > 0.0);
    }

    #[test]
    fn traced_grid_carries_cell_context() {
        let mut cfg = CellConfig::quick(Benchmark::TpcH);
        cfg.preset = SpeedPreset::Test;
        cfg.probe_epochs = 2;
        cfg.injection_size = 4;
        let cost = build_db(&cfg);
        let spec = GridSpec::new(
            vec![AdvisorKind::DbaBandit(TrajectoryMode::Best)],
            vec![InjectorKind::Tp],
            1,
            7,
        );
        let sink = pipa_obs::MemorySink::new();
        let out = TraceOutputs::with_sinks(Some(Box::new(sink.clone())), None);
        let results = run_grid_traced(&cost, &cfg, &spec, 1, &out).unwrap();
        assert_eq!(results.len(), 1);
        let lines = sink.lines();
        assert!(!lines.is_empty());
        let seed = CellSeed::derive(7, 0).get();
        for line in &lines {
            assert!(line.contains(&format!("\"cell_seed\":{seed}")), "{line}");
            assert!(line.contains("\"advisor\":\"DBAbandit-b\""), "{line}");
            assert!(line.contains("\"injector\":\"TP\""), "{line}");
            assert!(line.contains("\"run\":0"), "{line}");
        }
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"stress_outcome\"")));
    }

    #[test]
    fn st_backend_generates() {
        let cfg = CellConfig::quick(Benchmark::TpcH);
        let cost = build_db(&cfg);
        let mut g = cfg.backend.generator(3);
        let cols = vec![cost.database().schema().column_id("l_shipdate").unwrap()];
        assert!(g.generate(&cost, &cols, 0.5).unwrap().is_some());
    }
}
