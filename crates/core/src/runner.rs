//! Deterministic parallel experiment runner.
//!
//! The experiment binaries fan independent cells (advisor × injector ×
//! seed) across worker threads with [`par_map`], a scoped-thread ordered
//! parallel map over a shared atomic work queue. Determinism is the
//! design constraint everything else serves:
//!
//! * **Results are written by input index**, so the output order never
//!   depends on thread scheduling.
//! * **Every cell derives its own RNG seed** from the experiment's root
//!   seed with [`derive_seed`] (a SplitMix64 mix, the same finalizer
//!   `rand` uses for `seed_from_u64`), so no cell reads another cell's
//!   stream and work-stealing order cannot leak into the numbers.
//! * **No shared mutable state** beyond memoization caches whose values
//!   are pure functions of their keys (see `pipa_sim::CostCache`).
//!
//! Together these guarantee `--jobs 1` and `--jobs N` produce
//! bit-identical artifacts — verified by `tests/determinism.rs` and
//! documented in `DESIGN.md` ("Determinism guarantees").

use pipa_obs::{record_cell, timer, CellCtx, TraceOutputs};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derive a per-cell seed from a root seed and a stream index.
///
/// This is SplitMix64: the root is advanced `stream + 1` steps of the
/// golden-ratio increment and the result is run through the SplitMix64
/// finalizer. Distinct streams give statistically independent seeds even
/// for adjacent roots (unlike `root + stream`, which makes run *r* of
/// seed *s* collide with run *r−1* of seed *s+1*).
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut z = root.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cell's RNG seed, as a newtype so call sites can't silently fall
/// back to hand-rolled `seed + i` arithmetic (which correlates adjacent
/// streams — see [`derive_seed`]).
///
/// Produced by [`CellSeed::derive`] (the grid runner's scheme) or, for
/// the rare call site that really wants a verbatim root seed,
/// [`CellSeed::raw`]. The wrapped value is what reaches workload
/// generation, the injector, and the `seed` field of result artifacts —
/// `CellSeed::derive(root, run)` yields the exact same numbers as the
/// pre-newtype `derive_seed(root, run)` plumbing, so existing golden
/// artifacts remain valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellSeed(u64);

impl CellSeed {
    /// Derive the seed for `stream` (usually the run index) from a root.
    pub fn derive(root: u64, stream: u64) -> Self {
        CellSeed(derive_seed(root, stream))
    }

    /// Wrap a verbatim seed (no derivation).
    pub fn raw(seed: u64) -> Self {
        CellSeed(seed)
    }

    /// The seed value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for CellSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<CellSeed> for u64 {
    fn from(s: CellSeed) -> u64 {
        s.0
    }
}

/// The worker count a `--jobs 0` / unspecified request resolves to:
/// `std::thread::available_parallelism()`, or 1 if unavailable.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `jobs` worker threads, returning results
/// in input order.
///
/// `jobs == 0` means [`default_jobs`]; `jobs == 1` runs inline on the
/// calling thread with no thread machinery at all. Workers claim indices
/// from a shared atomic counter (cheap dynamic load balancing — cells
/// have very different runtimes), and each result lands in its input
/// slot, so the returned vector is independent of scheduling. `f` must be
/// a pure function of `(index, item)` for the *values* to be
/// deterministic too; every experiment cell satisfies this by deriving
/// its RNG from its own seed.
///
/// Panics in `f` propagate: a panicking worker poisons nothing (each slot
/// has its own mutex and is written once), and `std::thread::scope`
/// re-raises the panic after all workers stop.
pub fn par_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let jobs = if jobs == 0 { default_jobs() } else { jobs };
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each index claimed once");
                let out = f(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// [`par_map`] with per-cell observability: each item runs inside a
/// `pipa-obs` recording scope (context from `ctx`, which must include
/// the cell's seed identity) wrapped in a `"cell"` wall-clock span, and
/// the buffered cell traces are flushed to `out` **in input order** —
/// never in completion order. That ordering rule is what keeps the trace
/// file byte-identical across `--jobs` settings while the cells
/// themselves run on whatever thread claims them.
///
/// With no sink attached (`out.active() == false`) this is exactly
/// [`par_map`]: recording is skipped, not buffered-and-dropped.
pub fn par_map_traced<T, U, F, C>(
    jobs: usize,
    items: Vec<T>,
    out: &TraceOutputs,
    ctx: C,
    f: F,
) -> Vec<U>
where
    T: Send,
    U: Send,
    C: Fn(usize, &T) -> CellCtx + Sync,
    F: Fn(usize, T) -> U + Sync,
{
    let active = out.active();
    let results = par_map(jobs, items, |i, item| {
        let cell_ctx = ctx(i, &item);
        record_cell(active, cell_ctx, || {
            let _cell_span = timer("cell");
            f(i, item)
        })
    });
    results
        .into_iter()
        .map(|(value, trace)| {
            out.write_cell(&trace);
            value
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_obs::MemorySink;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(1, items.clone(), |i, x| (i as u64) * 1000 + x * x);
        let parallel = par_map(4, items, |i, x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 3009);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, empty, |_, x| x).is_empty());
        assert_eq!(par_map(4, vec![7], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_with_more_jobs_than_items() {
        let out = par_map(16, vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn jobs_zero_resolves_to_available_parallelism() {
        assert!(default_jobs() >= 1);
        let out = par_map(0, vec![5u8, 6], |_, x| x);
        assert_eq!(out, vec![5, 6]);
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        // Distinct (root, stream) pairs that would collide under
        // root + stream must not collide here.
        assert_ne!(derive_seed(10, 1), derive_seed(11, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        // And the derivation is a pure function.
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn derive_seed_matches_splitmix_reference() {
        // SplitMix64 of seed 0, first output (reference value from the
        // published algorithm): 0xE220A8397B1DCDAF.
        assert_eq!(derive_seed(0, 0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn cell_seed_preserves_the_derivation_scheme() {
        assert_eq!(CellSeed::derive(0, 0).get(), derive_seed(0, 0));
        assert_eq!(CellSeed::derive(99, 3).get(), derive_seed(99, 3));
        assert_eq!(CellSeed::raw(42).get(), 42);
        assert_eq!(u64::from(CellSeed::raw(7)), 7);
        assert_eq!(CellSeed::raw(7).to_string(), "7");
    }

    #[test]
    fn par_map_traced_flushes_in_input_order() {
        let trace = MemorySink::new();
        let out = TraceOutputs::with_sinks(Some(Box::new(trace.clone())), None);
        let results = par_map_traced(
            4,
            (0u64..8).collect(),
            &out,
            |_, &x| CellCtx::new(x),
            |_, x| {
                pipa_obs::emit(pipa_obs::Event::new("item").field("x", x));
                x * 2
            },
        );
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        let lines = trace.lines();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.contains(&format!("\"cell_seed\":{i}")),
                "line {i} out of order: {line}"
            );
        }
    }

    #[test]
    fn par_map_traced_without_sinks_matches_par_map() {
        let out = TraceOutputs::disabled();
        let a = par_map_traced(4, vec![1, 2, 3], &out, |_, _| CellCtx::new(0), |_, x| x * 3);
        assert_eq!(a, vec![3, 6, 9]);
    }
}
