//! Defenses the paper's insights suggest (§1, §8): the stated purpose of
//! the stress test is to help DBAs "deploy a more robust learning-based
//! IA". This module operationalizes two deployment-side mitigations and
//! lets the experiments quantify how much of PIPA's degradation each one
//! removes.
//!
//! * [`CanaryGuard`] — **retraining canary**: before accepting an updated
//!   model, compare the cost of a held-out canary workload under the new
//!   recommendation against the pre-update baseline; roll back when it
//!   regresses beyond a tolerance. This directly targets Definition 2.4:
//!   a toxic injection *is* a canary regression.
//! * [`ProvenanceFilter`] — **training-set screening**: drop training
//!   queries whose filter-column profile diverges from the historical
//!   workload's (PIPA's injections must touch mid-ranked columns the
//!   normal workload rarely touches — that is also their fingerprint).

use pipa_cost::{CostBackend, CostResult};
use pipa_ia::ClearBoxAdvisor;
use pipa_sim::{IndexConfig, Workload};

/// Retraining canary: accept an update only if the canary workload does
/// not regress.
pub struct CanaryGuard {
    /// Relative regression tolerance (e.g. 0.02 = accept up to +2%).
    pub tolerance: f64,
}

/// Outcome of a guarded retraining.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedOutcome {
    /// Canary cost before the update.
    pub cost_before: f64,
    /// Canary cost after the update (whether or not it was kept).
    pub cost_after: f64,
    /// Whether the update was rolled back.
    pub rolled_back: bool,
    /// The configuration in force after the guard's decision.
    pub final_config: IndexConfig,
    /// The pre-update recommendation — what a rollback reinstates
    /// (`tests/defense_properties.rs` pins `final_config ==
    /// previous_config` exactly on every rollback).
    pub previous_config: IndexConfig,
}

impl CanaryGuard {
    /// Guard with the given tolerance.
    pub fn new(tolerance: f64) -> Self {
        CanaryGuard { tolerance }
    }

    /// Retrain `advisor` on `training`, but keep the update only if the
    /// `canary` workload's cost under the new recommendation stays within
    /// tolerance of the pre-update cost. On rollback the pre-update
    /// recommendation is reinstated as the deployed configuration (the
    /// advisor's parameters stay updated — the *deployment* is guarded,
    /// matching how index changes ship in practice).
    pub fn retrain_guarded(
        &self,
        advisor: &mut dyn ClearBoxAdvisor,
        cost: &dyn CostBackend,
        training: &Workload,
        canary: &Workload,
    ) -> CostResult<GuardedOutcome> {
        let before_cfg = advisor.recommend(cost, canary)?;
        let cost_before = cost.executed_workload_cost(canary, &before_cfg)?;
        advisor.retrain(cost, training)?;
        let after_cfg = advisor.recommend(cost, canary)?;
        let cost_after = cost.executed_workload_cost(canary, &after_cfg)?;
        let rolled_back = cost_after > cost_before * (1.0 + self.tolerance);
        Ok(GuardedOutcome {
            cost_before,
            cost_after,
            rolled_back,
            final_config: if rolled_back {
                before_cfg.clone()
            } else {
                after_cfg
            },
            previous_config: before_cfg,
        })
    }
}

/// Provenance filter: screen a training set against a reference workload
/// profile before retraining.
pub struct ProvenanceFilter {
    /// Maximum fraction of a query's filter columns allowed to be
    /// novel (absent from the reference profile) before it is dropped.
    pub max_novel_fraction: f64,
}

impl Default for ProvenanceFilter {
    fn default() -> Self {
        ProvenanceFilter {
            max_novel_fraction: 0.5,
        }
    }
}

impl ProvenanceFilter {
    /// Keep only queries whose filter columns mostly appear in the
    /// reference workload's historical column profile. Returns the
    /// filtered workload and how many queries were dropped.
    pub fn screen(
        &self,
        reference: &Workload,
        training: &Workload,
        num_columns: usize,
    ) -> (Workload, usize) {
        let profile = reference.filter_column_frequencies(num_columns);
        let mut kept = Workload::new();
        let mut dropped = 0usize;
        for wq in training.iter() {
            let cols = wq.query.filter_columns();
            if cols.is_empty() {
                kept.push(wq.query.clone(), wq.frequency);
                continue;
            }
            let novel = cols.iter().filter(|c| profile[c.0 as usize] == 0.0).count();
            if (novel as f64 / cols.len() as f64) > self.max_novel_fraction {
                dropped += 1;
            } else {
                kept.push(wq.query.clone(), wq.frequency);
            }
        }
        (kept, dropped)
    }
}

/// Convenience: run one stress test with a defense in place and report
/// the residual AD (used by the defense ablation bench).
pub fn stress_with_canary(
    advisor: &mut dyn ClearBoxAdvisor,
    injector: &mut dyn crate::injectors::Injector,
    cost: &dyn CostBackend,
    normal: &Workload,
    injection_size: usize,
    tolerance: f64,
    seed: u64,
) -> CostResult<(f64, bool)> {
    advisor.train(cost, normal)?;
    let clean_cfg = advisor.recommend(cost, normal)?;
    let baseline = cost.executed_workload_cost(normal, &clean_cfg)?;
    let injection = injector.build(advisor, cost, injection_size, seed)?;
    let training = normal.union(&injection);
    let guard = CanaryGuard::new(tolerance);
    let outcome = guard.retrain_guarded(advisor, cost, &training, normal)?;
    let final_cost = cost.executed_workload_cost(normal, &outcome.final_config)?;
    Ok((
        crate::metrics::absolute_degradation(final_cost, baseline),
        outcome.rolled_back,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{build_db, make_injector, normal_workload, CellConfig, InjectorKind};
    use pipa_ia::{build_clear_box, AdvisorKind, SpeedPreset, TrajectoryMode};
    use pipa_workload::Benchmark;

    fn cfg() -> CellConfig {
        let mut cfg = CellConfig::quick(Benchmark::TpcH);
        cfg.preset = SpeedPreset::Test;
        cfg.probe_epochs = 3;
        cfg.injection_size = 10;
        cfg
    }

    #[test]
    fn canary_guard_bounds_degradation() {
        let cfg = cfg();
        let cost = build_db(&cfg);
        let normal = normal_workload(&cfg, 51);
        let mut advisor = build_clear_box(
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            SpeedPreset::Test,
            51,
        );
        let mut injector = make_injector(InjectorKind::Pipa, &cfg, crate::runner::CellSeed::raw(51));
        let (ad, _) = stress_with_canary(
            advisor.as_mut(),
            injector.as_mut(),
            &cost,
            &normal,
            cfg.injection_size,
            0.02,
            51,
        )
        .unwrap();
        // The guard caps the deployed regression at roughly the tolerance.
        assert!(ad <= 0.05, "guarded AD {ad} exceeds the tolerance band");
    }

    #[test]
    fn provenance_filter_drops_extraneous_queries() {
        let cfg = cfg();
        let cost = build_db(&cfg);
        let normal = normal_workload(&cfg, 53);
        let mut advisor = build_clear_box(
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            SpeedPreset::Test,
            53,
        );
        advisor.train(&cost, &normal).unwrap();
        let mut injector = make_injector(InjectorKind::Pipa, &cfg, crate::runner::CellSeed::raw(53));
        let injection = injector.build(advisor.as_mut(), &cost, 10, 53).unwrap();
        let training = normal.union(&injection);
        let filter = ProvenanceFilter::default();
        let num_columns = cost.database().schema().num_columns();
        let (screened, dropped) = filter.screen(&normal, &training, num_columns);
        // The normal queries always survive their own profile.
        assert!(screened.len() >= normal.len());
        // A PIPA injection targets mid-ranked columns the normal workload
        // does not filter on — most of it should be caught.
        assert!(
            dropped * 2 >= injection.len(),
            "screen caught {dropped}/{} injected queries",
            injection.len()
        );
    }

    #[test]
    fn screening_keeps_benign_template_injections() {
        // TP injections instantiate the *same templates* as the normal
        // workload; a provenance filter must not starve retraining of
        // legitimate drift.
        let cfg = cfg();
        let cost = build_db(&cfg);
        let normal = normal_workload(&cfg, 57);
        let mut advisor = build_clear_box(
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            SpeedPreset::Test,
            57,
        );
        advisor.train(&cost, &normal).unwrap();
        let mut injector = make_injector(InjectorKind::Tp, &cfg, crate::runner::CellSeed::raw(57));
        let injection = injector.build(advisor.as_mut(), &cost, 10, 57).unwrap();
        let filter = ProvenanceFilter::default();
        let num_columns = cost.database().schema().num_columns();
        let (_, dropped) = filter.screen(&normal, &injection, num_columns);
        assert!(
            dropped <= injection.len() / 3,
            "benign template queries over-filtered: {dropped}/{}",
            injection.len()
        );
    }
}
