//! Skewed-traffic integration: streaming traffic models through the
//! cost seam, and the hot-vs-cold poisoning-economics axis.
//!
//! The paper weights every template equally, so an attack's measured
//! damage is traffic-blind. Under real (Zipf-skewed) traffic the same
//! poisoned recommendation costs very different money depending on
//! *which* templates it degrades: losing an index that served a
//! dashboard template firing thousands of times an hour is not the same
//! as losing one behind a quarterly report. [`poisoning_economics`]
//! makes that a measurable axis:
//!
//! 1. run one attack end to end (train → clean config → inject →
//!    retrain → poisoned config), keeping the *configurations*, not
//!    just their names;
//! 2. re-measure every template's cost under both configurations
//!    through the [`CostBackend`] seam, giving a per-template relative
//!    degradation `r_t`;
//! 3. weight those degradations by a Zipf popularity profile under two
//!    alignments — **hot** (the most-degraded template carries the
//!    largest traffic share) and **cold** (it carries the smallest).
//!
//! The weighted AD is a `π_t·f_t·c_b(t)`-weighted mean of the `r_t`, so
//! by the rearrangement/exchange inequality the hot alignment is the
//! exact maximum over share permutations and the cold alignment the
//! minimum: `ad_hot ≥ ad_cold` always, and the *gap* is the economics —
//! how much more an equal-budget attack is worth when it lands on hot
//! traffic. `examples/skewed_attack.rs` and the `scale` bench report
//! it; `results/BENCH_scale.json` commits it.
//!
//! [`sampled_window_workload`] is the streaming glue: one window of a
//! [`TrafficModel`] sampled into a frequency-weighted workload, pure in
//! `(model, generator, window, seed)` so `--jobs` determinism carries
//! over unchanged.

use crate::experiment::{make_injector, normal_workload, CellConfig, InjectorKind};
use crate::runner::CellSeed;
use pipa_cost::{CostBackend, CostResult};
use pipa_ia::{AdvisorSpec, BuildCtx};
use pipa_sim::{SimResult, Workload};
use pipa_workload::{generator::WorkloadGenerator, Popularity, TrafficModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// One window of a traffic model, sampled into a frequency-weighted
/// [`Workload`]: the window's load (diurnal × arrivals × `base` rate)
/// decides how many queries arrive, the popularity CDFs decide which
/// pool entries they hit, and the draws aggregate into per-query
/// frequencies. Pure in `(model, gen, window, base, seed)`.
pub fn sampled_window_workload(
    model: &TrafficModel,
    gen: &WorkloadGenerator,
    window: u64,
    base: usize,
    seed: u64,
) -> SimResult<(Workload, usize)> {
    let traffic = model.window_traffic(gen, window, seed)?;
    let load = model.window_load(window, base, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let (w, _) = traffic.sample_workload(load, &mut rng);
    Ok((w, load))
}

/// The hot-vs-cold poisoning-economics measurement of one attack.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PoisonEconomics {
    /// Advisor display name.
    pub advisor: String,
    /// Injector display name.
    pub injector: String,
    /// Zipf exponent of the popularity profile the attack is priced
    /// under.
    pub exponent: f64,
    /// Templates (= normal-workload entries) measured.
    pub templates: usize,
    /// Per-template relative degradation `(c_p − c_b) / c_b`, in
    /// normal-workload order.
    pub per_template_ad: Vec<f64>,
    /// Uniform-traffic AD (the paper's traffic-blind number).
    pub ad_uniform: f64,
    /// Weighted AD when the most-degraded templates carry the *largest*
    /// Zipf shares (attack lands on hot traffic).
    pub ad_hot: f64,
    /// Weighted AD when the most-degraded templates carry the
    /// *smallest* Zipf shares (attack lands on cold traffic).
    pub ad_cold: f64,
    /// Traffic share of the hottest template under the profile.
    pub hot_share: f64,
    /// Run seed.
    pub seed: u64,
}

impl PoisonEconomics {
    /// `ad_hot − ad_cold`: what landing the same equal-budget attack on
    /// hot rather than cold traffic is worth, in AD points.
    pub fn hot_premium(&self) -> f64 {
        self.ad_hot - self.ad_cold
    }
}

/// Weighted AD of fixed per-template `(delta, base)` pairs under a
/// share permutation: `Σ π_i·d_i / Σ π_i·b_i` with `π` assigned by
/// `order` (shares are descending; `order[i]` names the template that
/// receives the `i`-th largest share).
fn weighted_ad(shares: &[f64], order: &[usize], delta: &[f64], base: &[f64]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &t) in order.iter().enumerate() {
        num += shares[i] * delta[t];
        den += shares[i] * base[t];
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Run one attack and price it under skewed traffic: the hot-vs-cold
/// poisoning-economics axis (module docs for the full pipeline). The
/// same `(cost, cfg, seed)` always yields the bit-identical result.
pub fn poisoning_economics(
    cost: &dyn CostBackend,
    cfg: &CellConfig,
    advisor: impl Into<AdvisorSpec>,
    injector_kind: InjectorKind,
    exponent: f64,
    seed: CellSeed,
) -> CostResult<PoisonEconomics> {
    // One attack, end to end, keeping both configurations.
    let normal = normal_workload(cfg, seed.get());
    let mut advisor = advisor
        .into()
        .build_with(BuildCtx::new(cfg.preset, seed.get()))?;
    let mut injector = make_injector(injector_kind, cfg, seed);
    advisor.train(cost, &normal)?;
    let clean_cfg = advisor.recommend(cost, &normal)?;
    let injection = injector.build(advisor.as_mut(), cost, cfg.injection_size, seed.get())?;
    advisor.retrain(cost, &normal.union(&injection))?;
    let poisoned_cfg = advisor.recommend(cost, &normal)?;

    // Per-template costs under both configurations, through the seam.
    let mut base = Vec::with_capacity(normal.len());
    let mut delta = Vec::with_capacity(normal.len());
    let mut per_template_ad = Vec::with_capacity(normal.len());
    for wq in normal.iter() {
        let f = wq.frequency as f64;
        let b = f * cost.query_cost(&wq.query, &clean_cfg)?;
        let p = f * cost.query_cost(&wq.query, &poisoned_cfg)?;
        base.push(b);
        delta.push(p - b);
        per_template_ad.push(if b == 0.0 { 0.0 } else { (p - b) / b });
    }
    let n = base.len();

    // Templates ranked most-degraded first (ties broken by index so the
    // ordering — and therefore the result — is fully deterministic).
    let mut by_damage: Vec<usize> = (0..n).collect();
    by_damage.sort_by(|&a, &b| {
        per_template_ad[b]
            .partial_cmp(&per_template_ad[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let reversed: Vec<usize> = by_damage.iter().rev().copied().collect();

    // Zipf shares, descending by construction (rank 0 is the largest).
    let pop = Popularity::Zipf { exponent };
    let shares: Vec<f64> = (0..n).map(|r| pop.share(r, n)).collect();
    let uniform: Vec<f64> = vec![1.0 / n.max(1) as f64; n];
    let identity: Vec<usize> = (0..n).collect();

    Ok(PoisonEconomics {
        advisor: advisor.name(),
        injector: injector.name().to_string(),
        exponent,
        templates: n,
        ad_uniform: weighted_ad(&uniform, &identity, &delta, &base),
        ad_hot: weighted_ad(&shares, &by_damage, &delta, &base),
        ad_cold: weighted_ad(&shares, &reversed, &delta, &base),
        hot_share: shares.first().copied().unwrap_or(0.0),
        per_template_ad,
        seed: seed.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::build_db;
    use pipa_ia::{AdvisorKind, SpeedPreset, TrajectoryMode};
    use pipa_workload::Benchmark;

    fn quick_cfg() -> CellConfig {
        let mut cfg = CellConfig::quick(Benchmark::TpcH);
        cfg.preset = SpeedPreset::Test;
        cfg.probe_epochs = 2;
        cfg.injection_size = 6;
        cfg
    }

    #[test]
    fn weighted_ad_alignment_brackets_every_permutation() {
        // Synthetic three-template economy: damage concentrated on t0.
        let delta = [9.0, 1.0, 0.0];
        let base = [10.0, 10.0, 10.0];
        let shares = [0.6, 0.3, 0.1];
        let hot = weighted_ad(&shares, &[0, 1, 2], &delta, &base);
        let cold = weighted_ad(&shares, &[2, 1, 0], &delta, &base);
        let mid = weighted_ad(&shares, &[1, 0, 2], &delta, &base);
        assert!(hot > mid && mid > cold, "hot {hot} mid {mid} cold {cold}");
        // Uniform shares are permutation-invariant.
        let u = [1.0 / 3.0; 3];
        let a = weighted_ad(&u, &[0, 1, 2], &delta, &base);
        let b = weighted_ad(&u, &[2, 0, 1], &delta, &base);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn economics_is_deterministic_and_hot_dominates_cold() {
        let cfg = quick_cfg();
        let cost = build_db(&cfg);
        let run = || {
            poisoning_economics(
                &cost,
                &cfg,
                AdvisorKind::DbaBandit(TrajectoryMode::Best),
                InjectorKind::Tp,
                1.1,
                CellSeed::raw(7),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same inputs must price identically");
        assert_eq!(a.templates, 18);
        assert_eq!(a.per_template_ad.len(), 18);
        assert!(a.ad_hot.is_finite() && a.ad_cold.is_finite());
        // Exchange argument: hot alignment is the max over permutations.
        assert!(
            a.ad_hot >= a.ad_cold - 1e-12,
            "hot {} < cold {}",
            a.ad_hot,
            a.ad_cold
        );
        assert!((a.hot_premium() - (a.ad_hot - a.ad_cold)).abs() < 1e-15);
        assert!(a.hot_share > 1.0 / 18.0, "zipf head must beat uniform");
    }

    #[test]
    fn sampled_window_workload_is_pure_and_respects_load() {
        let gen = WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let model = TrafficModel::zipf(1.1, 4);
        let (w1, load1) = sampled_window_workload(&model, &gen, 3, 500, 11).unwrap();
        let (w2, load2) = sampled_window_workload(&model, &gen, 3, 500, 11).unwrap();
        assert_eq!(w1, w2);
        assert_eq!(load1, load2);
        assert_eq!(load1, 500, "flat curve, steady arrivals");
        let total: u64 = w1.iter().map(|wq| wq.frequency as u64).sum();
        assert_eq!(total, 500);
        // A different window re-draws.
        let (w3, _) = sampled_window_workload(&model, &gen, 4, 500, 11).unwrap();
        assert_ne!(w1, w3);
    }
}
