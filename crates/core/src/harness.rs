//! The stress-test harness: train → baseline → inject → retrain →
//! measure (paper Figure 1's red/green flows, Definitions 2.2–2.5).
//!
//! The entry point is the [`StressTest`] builder. Each stage reports
//! through `pipa-obs` (phase markers, what-if/page counters from the
//! layers below, a final `stress_outcome` event), so a surprising AD
//! value can be diagnosed from the `--trace` stream instead of a
//! debugger.

use crate::injectors::Injector;
use crate::metrics::{absolute_degradation, is_toxic};
use crate::runner::CellSeed;
use pipa_cost::{CostBackend, CostEngine, CostResult};
use pipa_ia::ClearBoxAdvisor;
use pipa_obs::{CellCtx, Event, TraceOutputs};
use pipa_sim::{IndexConfig, Workload};
use serde::Serialize;

/// One stress-test outcome.
///
/// `PartialEq` is bit-exact on the cost fields: outcomes are pure
/// functions of `(catalog, workload, seed)`, so fleet determinism tests
/// compare whole reports structurally.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StressOutcome {
    /// Advisor display name.
    pub advisor: String,
    /// Injector display name.
    pub injector: String,
    /// `c_b`: target-workload cost under the clean advisor's indexes.
    pub baseline_cost: f64,
    /// Target-workload cost under the poisoned advisor's indexes.
    pub poisoned_cost: f64,
    /// Absolute performance Degradation.
    pub ad: f64,
    /// Whether the injection met Definition 2.4.
    pub toxic: bool,
    /// Index names recommended before poisoning.
    pub baseline_indexes: Vec<String>,
    /// Index names recommended after poisoning.
    pub poisoned_indexes: Vec<String>,
    /// Actual injection-workload size achieved.
    pub injection_size: usize,
    /// Run seed.
    pub seed: u64,
}

/// One full stress test, configured fluently:
///
/// ```no_run
/// use pipa_core::{harness::StressTest, injectors::TpInjector, runner::CellSeed};
/// use pipa_ia::{AdvisorKind, BuildCtx, SpeedPreset, TrajectoryMode};
/// use pipa_workload::Benchmark;
///
/// let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
/// let normal = pipa_core::experiment::normal_workload(
///     &pipa_core::experiment::CellConfig::quick(Benchmark::TpcH),
///     7,
/// );
/// let seed = CellSeed::derive(0, 0);
/// let mut advisor =
///     AdvisorKind::DbaBandit(TrajectoryMode::Best).build_with(BuildCtx::new(SpeedPreset::Quick, seed.get()));
/// let mut injector = TpInjector::new(Benchmark::TpcH.default_templates());
/// let outcome = StressTest::new(&cost, &normal)
///     .injection_size(18)
///     .actual_cost(false)
///     .seed(seed)
///     .run(advisor.as_mut(), &mut injector)
///     .expect("cost backend");
/// println!("AD = {:.3}", outcome.ad);
/// ```
///
/// The advisor is (re)trained from scratch on the normal workload first,
/// so the same advisor instance can be reused across runs.
///
/// Defaults mirror the paper's main experiment: injection size 18,
/// actual-cost measurement, seed 0.
pub struct StressTest<'a> {
    cost: &'a dyn CostBackend,
    normal: &'a Workload,
    injection_size: usize,
    use_actual_cost: bool,
    seed: CellSeed,
    outputs: Option<&'a TraceOutputs>,
}

impl<'a> StressTest<'a> {
    /// A stress test over a cost backend and target (normal) workload.
    pub fn new(cost: &'a dyn CostBackend, normal: &'a Workload) -> Self {
        StressTest {
            cost,
            normal,
            injection_size: 18,
            use_actual_cost: true,
            seed: CellSeed::raw(0),
            outputs: None,
        }
    }

    /// Injection-workload size `N̂` (default 18).
    pub fn injection_size(mut self, n: usize) -> Self {
        self.injection_size = n;
        self
    }

    /// Measure final costs with the executor (`true`, default; falls
    /// back to estimates when no data is materialized) or with the
    /// analytical model (`false`).
    pub fn actual_cost(mut self, on: bool) -> Self {
        self.use_actual_cost = on;
        self
    }

    /// The cell seed (propagated to the injector and the outcome).
    pub fn seed(mut self, seed: CellSeed) -> Self {
        self.seed = seed;
        self
    }

    /// Attach observability outputs for a *standalone* run: the test
    /// records into a fresh cell scope and flushes it here on
    /// completion. Inside a traced grid ([`crate::experiment::run_grid_traced`])
    /// the grid's own recording scope is already active and takes
    /// precedence — cell ordering stays with the runner.
    pub fn sink(mut self, outputs: &'a TraceOutputs) -> Self {
        self.outputs = Some(outputs);
        self
    }

    /// Execute: train on `W`, measure the baseline, build `Ŵ` (the
    /// injector may probe the trained victim), retrain on `{W, Ŵ}`,
    /// re-measure on `W`.
    pub fn run(
        &self,
        advisor: &mut dyn ClearBoxAdvisor,
        injector: &mut dyn Injector,
    ) -> CostResult<StressOutcome> {
        match self.outputs {
            Some(out) if out.active() && !pipa_obs::is_recording() => {
                let ctx = CellCtx::new(self.seed.get())
                    .field("advisor", advisor.name())
                    .field("injector", injector.name());
                let (outcome, trace) = pipa_obs::record_cell(true, ctx, || {
                    self.execute(advisor, injector)
                });
                out.write_cell(&trace);
                out.flush();
                outcome
            }
            _ => self.execute(advisor, injector),
        }
    }

    fn execute(
        &self,
        advisor: &mut dyn ClearBoxAdvisor,
        injector: &mut dyn Injector,
    ) -> CostResult<StressOutcome> {
        // Green flow: train on W, establish the performance baseline.
        // The backend observes the training workload first: learned cost
        // backends (pipa-cost's LearnedIndexBackend) refit their
        // structures on what the system trains on, so they see exactly
        // what the advisor sees.
        pipa_obs::phase("train");
        self.cost.observe_training(self.normal)?;
        advisor.train(self.cost, self.normal)?;

        pipa_obs::phase("baseline");
        let clean_cfg = advisor.recommend(self.cost, self.normal)?;
        let baseline_cost = self.workload_cost(&clean_cfg)?;

        // Red flow: build Ŵ. The probing/injecting stages re-declare
        // their own phases ("probe", "inject") as they run; injectors
        // that neither probe nor filter (TP, FSM) stay in this one.
        pipa_obs::phase("inject");
        let injection = injector.build(advisor, self.cost, self.injection_size, self.seed.get())?;

        pipa_obs::phase("retrain");
        let training = self.normal.union(&injection);
        self.cost.observe_training(&training)?;
        advisor.retrain(self.cost, &training)?;

        pipa_obs::phase("measure");
        let poisoned_cfg = advisor.recommend(self.cost, self.normal)?;
        let poisoned_cost = self.workload_cost(&poisoned_cfg)?;

        let outcome = StressOutcome {
            advisor: advisor.name(),
            injector: injector.name().to_string(),
            baseline_cost,
            poisoned_cost,
            ad: absolute_degradation(poisoned_cost, baseline_cost),
            toxic: is_toxic(poisoned_cost, baseline_cost),
            baseline_indexes: index_names(self.cost, &clean_cfg),
            poisoned_indexes: index_names(self.cost, &poisoned_cfg),
            injection_size: injection.len(),
            seed: self.seed.get(),
        };
        if pipa_obs::is_recording() {
            pipa_obs::emit(
                Event::new("stress_outcome")
                    .field("baseline_cost", outcome.baseline_cost)
                    .field("poisoned_cost", outcome.poisoned_cost)
                    .field("ad", outcome.ad)
                    .field("toxic", outcome.toxic)
                    .field("injection_size", outcome.injection_size),
            );
        }
        Ok(outcome)
    }

    fn workload_cost(&self, cfg: &IndexConfig) -> CostResult<f64> {
        CostEngine::new(self.cost).measured_workload_cost(self.normal, cfg, self.use_actual_cost)
    }
}

fn index_names(cost: &dyn CostBackend, cfg: &IndexConfig) -> Vec<String> {
    let schema = cost.catalog().schema;
    cfg.indexes().iter().map(|i| i.name(schema)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injectors::{TargetedInjector, TpInjector};
    use crate::probe::ProbeConfig;
    use pipa_ia::{AdvisorKind, BuildCtx, SpeedPreset, TrajectoryMode};
    use pipa_obs::MemorySink;
    use pipa_qgen::StGenerator;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (pipa_cost::SimBackend, Workload) {
        let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        (cost, w)
    }

    #[test]
    fn stress_test_produces_consistent_outcome() {
        let (cost, w) = setup();
        let mut ia = AdvisorKind::DbaBandit(TrajectoryMode::Best).build_with(BuildCtx::new(SpeedPreset::Test, 1));
        let mut inj = TpInjector::new(Benchmark::TpcH.default_templates());
        let out = StressTest::new(&cost, &w)
            .injection_size(6)
            .actual_cost(false)
            .seed(CellSeed::raw(1))
            .run(ia.as_mut(), &mut inj)
            .unwrap();
        assert!(out.baseline_cost > 0.0);
        assert!(out.poisoned_cost > 0.0);
        let expect_ad = (out.poisoned_cost - out.baseline_cost) / out.baseline_cost;
        assert!((out.ad - expect_ad).abs() < 1e-12);
        assert_eq!(out.toxic, out.ad > 0.0);
        assert_eq!(out.advisor, "DBAbandit-b");
        assert_eq!(out.injector, "TP");
        assert_eq!(out.seed, 1);
        assert!(!out.baseline_indexes.is_empty());
    }

    #[test]
    fn pipa_attack_on_bandit_is_toxic() {
        // The core claim in miniature: a PIPA injection degrades a
        // learned advisor.
        let (cost, w) = setup();
        let mut ia = AdvisorKind::DbaBandit(TrajectoryMode::Best).build_with(BuildCtx::new(SpeedPreset::Test, 2));
        let mut inj = TargetedInjector::pipa(Box::new(StGenerator::new(2)));
        inj.probe_cfg = ProbeConfig {
            epochs: 4,
            queries_per_epoch: 6,
            ..Default::default()
        };
        let out = StressTest::new(&cost, &w)
            .injection_size(18)
            .actual_cost(false)
            .seed(CellSeed::raw(2))
            .run(ia.as_mut(), &mut inj)
            .unwrap();
        assert!(
            out.ad > -0.05,
            "PIPA should not substantially help the victim: AD {}",
            out.ad
        );
    }

    #[test]
    fn reusing_the_advisor_across_runs_is_safe() {
        let (cost, w) = setup();
        let mut ia = AdvisorKind::DbaBandit(TrajectoryMode::Best).build_with(BuildCtx::new(SpeedPreset::Test, 3));
        let mut inj = TpInjector::new(Benchmark::TpcH.default_templates());
        let test = StressTest::new(&cost, &w)
            .injection_size(4)
            .actual_cost(false)
            .seed(CellSeed::raw(3));
        let a = test.run(ia.as_mut(), &mut inj).unwrap();
        let b = test.run(ia.as_mut(), &mut inj).unwrap();
        // Baselines agree because `train` resets the advisor.
        assert!((a.baseline_cost - b.baseline_cost).abs() < 1e-6);
    }

    #[test]
    fn builder_sink_captures_a_standalone_run() {
        let (cost, w) = setup();
        let trace = MemorySink::new();
        let out = TraceOutputs::with_sinks(Some(Box::new(trace.clone())), None);
        let mut ia = AdvisorKind::DbaBandit(TrajectoryMode::Best).build_with(BuildCtx::new(SpeedPreset::Test, 4));
        let mut inj = TpInjector::new(Benchmark::TpcH.default_templates());
        let outcome = StressTest::new(&cost, &w)
            .injection_size(4)
            .actual_cost(false)
            .seed(CellSeed::raw(4))
            .sink(&out)
            .run(ia.as_mut(), &mut inj)
            .unwrap();
        let lines = trace.lines();
        assert!(!lines.is_empty());
        for line in &lines {
            let keys = pipa_obs::json::top_level_keys(line).expect("valid JSON");
            assert!(keys.contains(&"event".to_string()), "{line}");
            assert!(keys.contains(&"cell_seed".to_string()), "{line}");
            assert!(keys.contains(&"phase".to_string()), "{line}");
        }
        // Phases appear in stage order; the outcome event closes the run.
        let phases: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"phase_start\""))
            .collect();
        assert!(phases.len() >= 5, "expected the five stages: {phases:?}");
        let last_event = lines
            .iter()
            .rfind(|l| l.contains("\"event\":\"stress_outcome\""))
            .expect("outcome event present");
        assert!(last_event.contains("\"ad\":"));
        assert!(outcome.ad.is_finite());
    }
}
