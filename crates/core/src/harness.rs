//! The stress-test harness: train → baseline → inject → retrain →
//! measure (paper Figure 1's red/green flows, Definitions 2.2–2.5).

use crate::injectors::Injector;
use crate::metrics::{absolute_degradation, is_toxic};
use pipa_ia::ClearBoxAdvisor;
use pipa_sim::{Database, IndexConfig, Workload};
use serde::Serialize;

/// Harness options.
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Injection-workload size `N̂`.
    pub injection_size: usize,
    /// Measure final costs with the executor when data is materialized
    /// (`true`) or with the analytical model (`false`).
    pub use_actual_cost: bool,
    /// Run seed (propagated to the injector).
    pub seed: u64,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            injection_size: 18,
            use_actual_cost: true,
            seed: 0,
        }
    }
}

/// One stress-test outcome.
#[derive(Debug, Clone, Serialize)]
pub struct StressOutcome {
    /// Advisor display name.
    pub advisor: String,
    /// Injector display name.
    pub injector: String,
    /// `c_b`: target-workload cost under the clean advisor's indexes.
    pub baseline_cost: f64,
    /// Target-workload cost under the poisoned advisor's indexes.
    pub poisoned_cost: f64,
    /// Absolute performance Degradation.
    pub ad: f64,
    /// Whether the injection met Definition 2.4.
    pub toxic: bool,
    /// Index names recommended before poisoning.
    pub baseline_indexes: Vec<String>,
    /// Index names recommended after poisoning.
    pub poisoned_indexes: Vec<String>,
    /// Actual injection-workload size achieved.
    pub injection_size: usize,
    /// Run seed.
    pub seed: u64,
}

/// Execute one full stress test against an already-constructed advisor.
///
/// The advisor is (re)trained from scratch on the normal workload first,
/// so the same advisor instance can be reused across runs.
pub fn run_stress_test(
    advisor: &mut dyn ClearBoxAdvisor,
    injector: &mut dyn Injector,
    db: &Database,
    normal: &Workload,
    cfg: &StressConfig,
) -> StressOutcome {
    // Green flow: train on W, establish the performance baseline.
    advisor.train(db, normal);
    let clean_cfg = advisor.recommend(db, normal);
    let baseline_cost = workload_cost(db, normal, &clean_cfg, cfg.use_actual_cost);

    // Red flow: build Ŵ (the injector may probe the trained victim),
    // retrain on {W, Ŵ}, re-measure on W.
    let injection = injector.build(advisor, db, cfg.injection_size, cfg.seed);
    let training = normal.union(&injection);
    advisor.retrain(db, &training);
    let poisoned_cfg = advisor.recommend(db, normal);
    let poisoned_cost = workload_cost(db, normal, &poisoned_cfg, cfg.use_actual_cost);

    StressOutcome {
        advisor: advisor.name(),
        injector: injector.name().to_string(),
        baseline_cost,
        poisoned_cost,
        ad: absolute_degradation(poisoned_cost, baseline_cost),
        toxic: is_toxic(poisoned_cost, baseline_cost),
        baseline_indexes: index_names(db, &clean_cfg),
        poisoned_indexes: index_names(db, &poisoned_cfg),
        injection_size: injection.len(),
        seed: cfg.seed,
    }
}

fn workload_cost(db: &Database, w: &Workload, cfg: &IndexConfig, actual: bool) -> f64 {
    if actual {
        db.actual_workload_cost(w, cfg)
    } else {
        db.estimated_workload_cost(w, cfg)
    }
}

fn index_names(db: &Database, cfg: &IndexConfig) -> Vec<String> {
    cfg.indexes().iter().map(|i| i.name(db.schema())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injectors::{TargetedInjector, TpInjector};
    use crate::probe::ProbeConfig;
    use pipa_ia::{build_clear_box, AdvisorKind, SpeedPreset, TrajectoryMode};
    use pipa_qgen::StGenerator;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Database, Workload) {
        let db = Benchmark::TpcH.database(1.0, None);
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        (db, w)
    }

    #[test]
    fn stress_test_produces_consistent_outcome() {
        let (db, w) = setup();
        let mut ia = build_clear_box(
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            SpeedPreset::Test,
            1,
        );
        let mut inj = TpInjector::new(Benchmark::TpcH.default_templates());
        let cfg = StressConfig {
            injection_size: 6,
            use_actual_cost: false,
            seed: 1,
        };
        let out = run_stress_test(ia.as_mut(), &mut inj, &db, &w, &cfg);
        assert!(out.baseline_cost > 0.0);
        assert!(out.poisoned_cost > 0.0);
        let expect_ad = (out.poisoned_cost - out.baseline_cost) / out.baseline_cost;
        assert!((out.ad - expect_ad).abs() < 1e-12);
        assert_eq!(out.toxic, out.ad > 0.0);
        assert_eq!(out.advisor, "DBAbandit-b");
        assert_eq!(out.injector, "TP");
        assert!(!out.baseline_indexes.is_empty());
    }

    #[test]
    fn pipa_attack_on_bandit_is_toxic() {
        // The core claim in miniature: a PIPA injection degrades a
        // learned advisor.
        let (db, w) = setup();
        let mut ia = build_clear_box(
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            SpeedPreset::Test,
            2,
        );
        let mut inj = TargetedInjector::pipa(Box::new(StGenerator::new(2)));
        inj.probe_cfg = ProbeConfig {
            epochs: 4,
            queries_per_epoch: 6,
            ..Default::default()
        };
        let cfg = StressConfig {
            injection_size: 18,
            use_actual_cost: false,
            seed: 2,
        };
        let out = run_stress_test(ia.as_mut(), &mut inj, &db, &w, &cfg);
        assert!(
            out.ad > -0.05,
            "PIPA should not substantially help the victim: AD {}",
            out.ad
        );
    }

    #[test]
    fn reusing_the_advisor_across_runs_is_safe() {
        let (db, w) = setup();
        let mut ia = build_clear_box(
            AdvisorKind::DbaBandit(TrajectoryMode::Best),
            SpeedPreset::Test,
            3,
        );
        let mut inj = TpInjector::new(Benchmark::TpcH.default_templates());
        let cfg = StressConfig {
            injection_size: 4,
            use_actual_cost: false,
            seed: 3,
        };
        let a = run_stress_test(ia.as_mut(), &mut inj, &db, &w, &cfg);
        let b = run_stress_test(ia.as_mut(), &mut inj, &db, &w, &cfg);
        // Baselines agree because `train` resets the advisor.
        assert!((a.baseline_cost - b.baseline_cost).abs() < 1e-6);
    }
}
