//! Result reporting: aligned console tables (the format the experiment
//! binaries print) and JSON artifacts for EXPERIMENTS.md bookkeeping.

use crate::metrics::Stats;
use serde::Serialize;
use std::fmt::Write as _;

/// Render an aligned console table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Format a [`Stats`] as the usual `mean ± std [min, q1, med, q3, max]`
/// box-plot summary.
pub fn format_stats(s: &Stats) -> String {
    format!(
        "{:+.3} ± {:.3}  [{:+.3} {:+.3} {:+.3} {:+.3} {:+.3}]",
        s.mean, s.std, s.min, s.q1, s.median, s.q3, s.max
    )
}

/// A named experiment artifact that serializes to JSON for record
/// keeping (EXPERIMENTS.md links these).
#[derive(Debug, Serialize)]
pub struct ExperimentArtifact<T: Serialize> {
    /// Experiment id (e.g. `"fig7"`).
    pub id: String,
    /// Human description.
    pub description: String,
    /// Free-form parameter summary.
    pub params: String,
    /// Result payload.
    pub results: T,
}

impl<T: Serialize> ExperimentArtifact<T> {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serializable")
    }

    /// Write next to the repository root (best effort; experiments print
    /// their tables regardless).
    pub fn save(&self, dir: &str) -> std::io::Result<String> {
        std::fs::create_dir_all(dir)?;
        let path = format!("{dir}/{}.json", self.id);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1.0".to_string()],
                vec!["longer".to_string(), "2".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn stats_formatting_is_stable() {
        let s = Stats::from_samples(&[0.1, 0.2, 0.3]);
        let f = format_stats(&s);
        assert!(f.contains("±"));
        assert!(f.starts_with("+0.200"));
    }

    #[test]
    fn artifact_serializes() {
        let a = ExperimentArtifact {
            id: "test".to_string(),
            description: "d".to_string(),
            params: "p".to_string(),
            results: vec![1.0, 2.0],
        };
        let j = a.to_json();
        assert!(j.contains("\"id\": \"test\""));
    }
}
