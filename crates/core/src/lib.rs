//! # pipa-core — the PIPA stress-test framework
//!
//! The paper's contribution, end to end:
//!
//! * [`preference`] — the indexing-preference ranking `k` (Eq. 5–8) and
//!   its top/mid/low segmentation (§5, §6.4);
//! * [`mod@probe`] — the opaque-box probing stage (Algorithm 1, Eq. 9);
//! * [`mod@inject`] — the toxic-injection stage (Algorithm 2, including the
//!   line-4 "mid beats top" filter);
//! * [`injectors`] — PIPA plus the TP / FSM / I-R / I-L / P-C baselines;
//! * [`metrics`] — AD / RD / toxicity (Definitions 2.3–2.5);
//! * [`harness`] — the [`harness::StressTest`] builder: train → baseline
//!   → inject → retrain → measure;
//! * [`defense`] — retraining canaries and provenance screening (the
//!   mitigations the paper's insights point DBAs at);
//! * [`stream`] — the streaming arms race: windowed workload drift,
//!   cadence-based retraining, adaptive attackers, online defenses;
//! * [`traffic`] — skewed-traffic pricing: Zipf/diurnal window sampling
//!   and the hot-vs-cold poisoning-economics axis;
//! * [`experiment`] — shared plumbing for the per-figure binaries,
//!   including the [`experiment::GridSpec`] advisor × injector × run
//!   grid API;
//! * [`runner`] — deterministic parallel cell execution ([`par_map`],
//!   [`runner::CellSeed`] SplitMix64 seed derivation);
//! * [`report`] — console tables and JSON artifacts.
//!
//! Every stage reports through the `pipa-obs` observability layer
//! (`--trace` / `--metrics-out` on the experiment binaries); with no
//! sink attached the instrumentation reduces to one atomic load per
//! call site.
//!
//! ## Quick start
//!
//! ```no_run
//! use pipa_core::{experiment::*, metrics::Stats, runner::CellSeed};
//! use pipa_ia::{AdvisorKind, TrajectoryMode};
//! use pipa_workload::Benchmark;
//!
//! let cfg = CellConfig::quick(Benchmark::TpcH);
//! let cost = build_db(&cfg);
//! let seed = CellSeed::derive(0, 0);
//! let normal = normal_workload(&cfg, seed.get());
//! let out = run_cell(
//!     &cost,
//!     &normal,
//!     AdvisorKind::Dqn(TrajectoryMode::Best),
//!     InjectorKind::Pipa,
//!     &cfg,
//!     seed,
//! )
//! .expect("cost backend");
//! println!("AD = {:.3} (toxic: {})", out.ad, out.toxic);
//! ```

#![warn(missing_docs)]

pub mod defense;
pub mod experiment;
pub mod harness;
pub mod inject;
pub mod injectors;
pub mod metrics;
pub mod preference;
pub mod probe;
pub mod report;
pub mod runner;
pub mod stream;
pub mod traffic;

pub use defense::{CanaryGuard, ProvenanceFilter};
pub use experiment::{
    run_grid, run_grid_traced, CellConfig, GenBackend, GridCell, GridSpec, InjectorKind,
};
pub use harness::{StressOutcome, StressTest};
pub use inject::{inject, InjectConfig, InjectResult};
pub use injectors::{Injector, TargetedInjector, TpInjector};
pub use metrics::{absolute_degradation, is_toxic, relative_degradation, Stats};
pub use preference::{segment, IndexingPreference, SegmentConfig, Segments};
pub use probe::{probe, ProbeConfig, ProbeResult};
pub use runner::{default_jobs, derive_seed, par_map, par_map_traced, CellSeed};
pub use stream::{
    run_stream, run_stream_grid, run_stream_grid_traced, AttackerStrategy, Cadence, DefensePolicy,
    StreamCell, StreamGridSpec, StreamOutcome, StreamSpec, WindowReport,
};
pub use traffic::{poisoning_economics, sampled_window_workload, PoisonEconomics};
