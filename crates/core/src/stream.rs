//! Streaming arms race: a dynamic attacker against an online defense.
//!
//! The paper's stress test is static — probe, inject, retrain once,
//! measure (see [`crate::harness::StressTest`]). Its §8 framing only
//! matters in the *updatable* regime, though: real advisors retrain on a
//! cadence while the workload drifts, the attacker spends an injection
//! budget window by window, and the defense has to act online. This
//! module models that regime as an ordered stream of windows:
//!
//! 1. **Window 0 (bootstrap)** is trusted: the advisor trains on it, the
//!    first configuration deploys, and the defenses seed their reference
//!    state (canary workload, provenance history) from it.
//! 2. **Each later window** delivers a clean workload drawn from the
//!    spec's [`DriftSchedule`]. The currently deployed configuration is
//!    costed against it first (that is the toxicity-over-time curve),
//!    then the attacker spends budget, then the observed traffic —
//!    clean plus whatever injection survived screening — joins the
//!    pending training set.
//! 3. **At cadence points** the advisor retrains on the pending traffic
//!    (optionally behind a [`CanaryGuard`]) and a new configuration
//!    deploys.
//!
//! Degradation is measured against a **clean twin**: a second advisor
//! built from the same seed, trained on the same clean windows at the
//! same cadence, but never fed an injection. Per-window AD is deployed
//! cost vs. the twin's cost on the same clean traffic, so a stream with
//! no attacker has AD exactly 0 in every window.
//!
//! A one-window stream with [`DriftSchedule::Static`] drift,
//! [`Cadence::EndOnly`] retraining, and no defense performs the exact
//! call sequence of the static pipeline — `tests/stream_differential.rs`
//! pins the reports bit-identical.

use crate::defense::{CanaryGuard, ProvenanceFilter};
use crate::experiment::{make_injector, CellConfig, InjectorKind};
use crate::harness::StressOutcome;
use crate::metrics::{absolute_degradation, is_toxic};
use crate::runner::{derive_seed, par_map_traced, CellSeed};
use pipa_cost::{CostBackend, CostEngine, CostResult};
use pipa_ia::{AdvisorSpec, BuildCtx};
use pipa_obs::{CellCtx, Event, TraceOutputs};
use pipa_sim::{IndexConfig, Workload};
use pipa_workload::{generator::WorkloadGenerator, DriftSchedule};
use serde::Serialize;
use std::collections::VecDeque;

/// When the advisor retrains along the stream. Every cadence also
/// retrains at the final window, so a finished stream always reflects
/// all observed traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cadence {
    /// Retrain after every `k`-th window (`Every(1)` = each window).
    Every(usize),
    /// Retrain only once, after the final window — the static pipeline's
    /// "collect everything, update once" schedule (the `∞` cadence of
    /// the differential test).
    EndOnly,
}

impl Cadence {
    /// Whether a retrain fires at `window` of a `total`-window stream.
    pub fn due(self, window: usize, total: usize) -> bool {
        window == total
            || match self {
                Cadence::Every(k) => k > 0 && window.is_multiple_of(k),
                Cadence::EndOnly => false,
            }
    }

    /// Stable label for traces and artifacts.
    pub fn label(self) -> String {
        match self {
            Cadence::Every(k) => format!("every{k}"),
            Cadence::EndOnly => "end".to_string(),
        }
    }
}

/// How the attacker spends its per-window injection budget.
///
/// Both active strategies are *adaptive*: each strike builds a fresh
/// injector seeded for that window, so probing injectors (I-L, PIPA)
/// re-probe the victim's current parameters between windows rather than
/// replaying a stale probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackerStrategy {
    /// No attacker — the clean control stream.
    None,
    /// Spend the full budget every window, keeping the poison fraction
    /// of observed traffic steady.
    Spread(InjectorKind),
    /// Bank the budget and dump everything in the window a retrain
    /// fires, maximizing poison concentration in each training batch.
    Burst(InjectorKind),
}

impl AttackerStrategy {
    /// Stable label for traces and artifacts.
    pub fn label(self) -> String {
        match self {
            AttackerStrategy::None => "none".to_string(),
            AttackerStrategy::Spread(k) => format!("spread-{}", k.label()),
            AttackerStrategy::Burst(k) => format!("burst-{}", k.label()),
        }
    }

    fn injector_kind(self) -> Option<InjectorKind> {
        match self {
            AttackerStrategy::None => None,
            AttackerStrategy::Spread(k) | AttackerStrategy::Burst(k) => Some(k),
        }
    }
}

/// The online defense running alongside the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefensePolicy {
    /// No defense — every retrain deploys unconditionally.
    None,
    /// [`CanaryGuard`] at each retrain: the bootstrap window is the
    /// held-out canary; an update whose canary cost regresses beyond
    /// `tolerance` is rolled back (the previously deployed configuration
    /// stays in force).
    Canary {
        /// Relative canary regression tolerance.
        tolerance: f64,
    },
    /// Sliding-window [`ProvenanceFilter`]: each window's observed
    /// traffic is screened against the column profile of the last
    /// `history` windows of *accepted* traffic (bootstrap-seeded), and
    /// only what passes reaches training or the reference history.
    Provenance {
        /// Maximum novel-column fraction per query.
        max_novel_fraction: f64,
        /// Reference profile length, in windows.
        history: usize,
    },
}

impl DefensePolicy {
    /// Stable label for traces and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            DefensePolicy::None => "none",
            DefensePolicy::Canary { .. } => "canary",
            DefensePolicy::Provenance { .. } => "provenance",
        }
    }
}

/// One streaming scenario: the stream's shape plus the two adversaries.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Attack windows after the trusted bootstrap window.
    pub windows: usize,
    /// How the clean traffic drifts across windows.
    pub drift: DriftSchedule,
    /// Retraining cadence.
    pub cadence: Cadence,
    /// Attacker strategy.
    pub attacker: AttackerStrategy,
    /// Per-window injection budget (queries).
    pub budget: usize,
    /// Online defense policy.
    pub defense: DefensePolicy,
}

/// What happened in one stream window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowReport {
    /// Window index (1-based; 0 is the bootstrap).
    pub window: usize,
    /// Queries the attacker injected this window.
    pub injected: usize,
    /// Injected-or-clean queries the provenance screen dropped.
    pub screened_out: usize,
    /// Clean-traffic cost under the configuration deployed when the
    /// window arrived.
    pub deployed_cost: f64,
    /// The same traffic under the clean twin's configuration.
    pub clean_cost: f64,
    /// Per-window absolute degradation vs. the twin.
    pub ad: f64,
    /// Whether the deployed configuration was toxic for this window
    /// (Definition 2.4 against the twin's counterfactual).
    pub toxic: bool,
    /// Whether a retrain fired at the end of this window.
    pub retrained: bool,
    /// Whether the canary guard rolled the retrain back.
    pub rolled_back: bool,
    /// Clean-traffic cost under the post-retrain deployment, when one
    /// fired.
    pub post_retrain_cost: Option<f64>,
}

/// Full outcome of one streaming scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamOutcome {
    /// Advisor display name.
    pub advisor: String,
    /// Attacker label.
    pub attacker: String,
    /// Defense label.
    pub defense: String,
    /// Drift-schedule label.
    pub drift: String,
    /// Cadence label.
    pub cadence: String,
    /// Per-window reports, in arrival order.
    pub windows: Vec<WindowReport>,
    /// Bootstrap cost: window 0 under the initial deployment.
    pub baseline_cost: f64,
    /// Final window's clean traffic under the final deployment.
    pub final_cost: f64,
    /// Mean per-window AD across the stream.
    pub mean_ad: f64,
    /// Mean AD over the last half of the stream (the steady state,
    /// after defenses and cadence effects settle).
    pub steady_ad: f64,
    /// Fraction of steady-state windows that were toxic.
    pub steady_toxicity: f64,
    /// Total queries injected.
    pub total_injected: usize,
    /// Total queries dropped by screening.
    pub total_screened: usize,
    /// Retrains fired.
    pub retrains: usize,
    /// Canary rollbacks.
    pub rollbacks: usize,
    /// Screened / injected (provenance) or rollbacks / retrains
    /// (canary): the fraction of attack surface the defense caught.
    pub defense_recall: f64,
    /// Deterministic count of scenario-level what-if cost evaluations
    /// (one per query per measured workload; advisor-internal trials are
    /// not included). The bench divides this by wall time for QPS.
    pub cost_evals: u64,
    /// Index names deployed after the bootstrap (pre-attack).
    pub baseline_indexes: Vec<String>,
    /// Index names deployed when the stream ended.
    pub final_indexes: Vec<String>,
    /// Injector label behind the attacker, when one exists.
    pub injector_label: Option<String>,
    /// Seed of the first window that actually built an injection.
    pub first_attack_seed: Option<u64>,
    /// Cell seed of the scenario.
    pub seed: u64,
}

impl StreamOutcome {
    /// Project the stream onto the static pipeline's report shape.
    ///
    /// For the differential configuration — one attack window, zero
    /// drift, [`Cadence::EndOnly`], no defense — this is *the* report
    /// the static [`crate::harness::StressTest`] produces for the same
    /// workload and injection seed, bit for bit: baseline = the
    /// pre-attack measurement, poisoned = the post-retrain measurement,
    /// and the seed is the attack window's derived seed.
    pub fn as_stress_outcome(&self) -> Option<StressOutcome> {
        let injector = self.injector_label.clone()?;
        let seed = self.first_attack_seed?;
        Some(StressOutcome {
            advisor: self.advisor.clone(),
            injector,
            baseline_cost: self.baseline_cost,
            poisoned_cost: self.final_cost,
            ad: absolute_degradation(self.final_cost, self.baseline_cost),
            toxic: is_toxic(self.final_cost, self.baseline_cost),
            baseline_indexes: self.baseline_indexes.clone(),
            poisoned_indexes: self.final_indexes.clone(),
            injection_size: self.total_injected,
            seed,
        })
    }
}

fn index_names(cost: &dyn CostBackend, cfg: &IndexConfig) -> Vec<String> {
    let schema = cost.catalog().schema;
    cfg.indexes().iter().map(|i| i.name(schema)).collect()
}

/// Union a non-empty window sequence in arrival order (clean before
/// injection within a window is already baked into each part).
fn union_all(parts: &[Workload]) -> Workload {
    let mut it = parts.iter();
    let mut acc = it.next().cloned().unwrap_or_default();
    for p in it {
        acc = acc.union(p);
    }
    acc
}

/// Run one streaming scenario.
///
/// Deterministic: the outcome is a pure function of `(catalog, cfg,
/// advisor spec, spec, seed)`. Window `w`'s clean traffic comes from
/// `spec.drift` at seed `seed ^ 0x4021` (the same convention as
/// [`crate::experiment::normal_workload`], so [`DriftSchedule::Static`]
/// replays exactly that workload), and window `w`'s attack stream is
/// [`derive_seed`]`(seed, w)`.
///
/// The advisor is anything convertible to an [`AdvisorSpec`] and is
/// resolved through the target registry. The backend's
/// [`CostBackend::observe_training`] hook fires on the bootstrap window
/// and on every *victim* training batch: the clean twin is an
/// advisor-only counterfactual sharing the backend's state, so for
/// learned cost backends the twin's costs reflect the same (possibly
/// poisoned) index structure and per-window AD isolates the advisor's
/// decisions.
pub fn run_stream(
    cost: &dyn CostBackend,
    cfg: &CellConfig,
    advisor: impl Into<AdvisorSpec>,
    spec: &StreamSpec,
    seed: CellSeed,
) -> CostResult<StreamOutcome> {
    let advisor_spec: AdvisorSpec = advisor.into();
    let gen = WorkloadGenerator::new(cfg.benchmark.schema(), cfg.benchmark.default_templates());
    let wseed = seed.get() ^ 0x4021;
    let use_actual = cfg.materialize.is_some();
    let engine = CostEngine::new(cost);
    let mut cost_evals = 0u64;
    let mut measure = |w: &Workload, c: &IndexConfig| -> CostResult<f64> {
        cost_evals += w.len() as u64;
        engine.measured_workload_cost(w, c, use_actual)
    };

    // Bootstrap: train the victim and its clean twin on the trusted
    // window 0 and deploy the first configuration. The twin starts from
    // the same build seed, so the two are bit-identical until the first
    // injection reaches the victim.
    pipa_obs::phase("bootstrap");
    let w0 = spec
        .drift
        .window_workload(&gen, 0, wseed)
        .expect("benchmark templates instantiate");
    let ctx = BuildCtx::new(cfg.preset, seed.get());
    let mut advisor = advisor_spec.build_with(ctx)?;
    cost.observe_training(&w0)?;
    advisor.train(cost, &w0)?;
    let mut deployed = advisor.recommend(cost, &w0)?;
    let baseline_cost = measure(&w0, &deployed)?;
    let baseline_indexes = index_names(cost, &deployed);

    let mut twin = advisor_spec.build_with(ctx)?;
    twin.train(cost, &w0)?;
    let mut twin_deployed = twin.recommend(cost, &w0)?;

    // Defense state, seeded from the trusted bootstrap.
    let canary = w0.clone();
    let num_columns = cost.catalog().schema.num_columns();
    let mut history: VecDeque<Workload> = VecDeque::new();
    if let DefensePolicy::Provenance { .. } = spec.defense {
        history.push_back(w0.clone());
    }

    let mut victim_pending: Vec<Workload> = Vec::new();
    let mut twin_pending: Vec<Workload> = Vec::new();
    let mut banked_budget = 0usize;
    let mut windows = Vec::with_capacity(spec.windows);
    let mut total_injected = 0usize;
    let mut total_screened = 0usize;
    let mut retrains = 0usize;
    let mut rollbacks = 0usize;
    let mut poisoned_retrains = 0usize;
    let mut caught_retrains = 0usize;
    let mut first_attack_seed = None;
    let mut final_cost = baseline_cost;

    pipa_obs::phase("stream");
    for w in 1..=spec.windows {
        let wl = spec
            .drift
            .window_workload(&gen, w as u64, wseed)
            .expect("benchmark templates instantiate");
        let attack_seed = derive_seed(seed.get(), w as u64);

        // The configuration serving this window's traffic was deployed
        // before the window arrived — measure it (and the twin's
        // counterfactual) before anything else happens.
        let deployed_cost = measure(&wl, &deployed)?;
        let clean_cost = measure(&wl, &twin_deployed)?;
        let ad = absolute_degradation(deployed_cost, clean_cost);
        let toxic = is_toxic(deployed_cost, clean_cost);

        // Attacker's turn. A fresh injector per strike means probing
        // strategies re-probe the advisor's *current* parameters.
        let due = spec.cadence.due(w, spec.windows);
        let strike = match spec.attacker {
            AttackerStrategy::None => 0,
            AttackerStrategy::Spread(_) => spec.budget,
            AttackerStrategy::Burst(_) => {
                banked_budget += spec.budget;
                if due {
                    std::mem::take(&mut banked_budget)
                } else {
                    0
                }
            }
        };
        let injection = match (spec.attacker.injector_kind(), strike) {
            (Some(kind), n) if n > 0 => {
                let mut injector = make_injector(kind, cfg, CellSeed::raw(attack_seed));
                let built = injector.build(advisor.as_mut(), cost, n, attack_seed)?;
                if first_attack_seed.is_none() && !built.is_empty() {
                    first_attack_seed = Some(attack_seed);
                }
                built
            }
            _ => Workload::new(),
        };
        let injected = injection.len();
        total_injected += injected;

        // Observed traffic: clean then injection (the same union order
        // the static pipeline uses for its training set), screened
        // online when the provenance defense is active.
        let mut observed = wl.union(&injection);
        let mut screened_out = 0usize;
        if let DefensePolicy::Provenance {
            max_novel_fraction,
            history: depth,
        } = spec.defense
        {
            let filter = ProvenanceFilter { max_novel_fraction };
            let reference = union_all(history.make_contiguous());
            let (kept, dropped) = filter.screen(&reference, &observed, num_columns);
            observed = kept;
            screened_out = dropped;
            total_screened += dropped;
            history.push_back(observed.clone());
            while history.len() > depth.max(1) {
                history.pop_front();
            }
        }
        victim_pending.push(observed);
        twin_pending.push(wl.clone());

        // Retrain at cadence points; the twin follows the same cadence
        // on clean-only traffic.
        let mut rolled_back = false;
        let mut post_retrain_cost = None;
        if due {
            let training = union_all(&victim_pending);
            let batch_poisoned = injected_since(&windows, injected) > 0;
            victim_pending.clear();
            cost.observe_training(&training)?;
            match spec.defense {
                DefensePolicy::Canary { tolerance } => {
                    let guard = CanaryGuard::new(tolerance);
                    let outcome =
                        guard.retrain_guarded(advisor.as_mut(), cost, &training, &canary)?;
                    rolled_back = outcome.rolled_back;
                    if rolled_back {
                        rollbacks += 1;
                    }
                    deployed = outcome.final_config;
                }
                _ => {
                    advisor.retrain(cost, &training)?;
                    deployed = advisor.recommend(cost, &wl)?;
                }
            }
            if batch_poisoned {
                poisoned_retrains += 1;
                if rolled_back {
                    caught_retrains += 1;
                }
            }
            retrains += 1;
            let twin_training = union_all(&twin_pending);
            twin_pending.clear();
            twin.retrain(cost, &twin_training)?;
            twin_deployed = twin.recommend(cost, &wl)?;
            post_retrain_cost = Some(measure(&wl, &deployed)?);
        }
        if let Some(c) = post_retrain_cost {
            final_cost = c;
        }

        if pipa_obs::is_recording() {
            pipa_obs::count("stream_injected", injected as u64);
            pipa_obs::count("stream_screened", screened_out as u64);
            pipa_obs::emit(
                Event::new("stream_window")
                    .field("window", w)
                    .field("injected", injected)
                    .field("screened_out", screened_out)
                    .field("deployed_cost", deployed_cost)
                    .field("clean_cost", clean_cost)
                    .field("ad", ad)
                    .field("toxic", toxic)
                    .field("retrained", due)
                    .field("rolled_back", rolled_back),
            );
        }
        windows.push(WindowReport {
            window: w,
            injected,
            screened_out,
            deployed_cost,
            clean_cost,
            ad,
            toxic,
            retrained: due,
            rolled_back,
            post_retrain_cost,
        });
    }

    let n = windows.len().max(1) as f64;
    let steady_from = windows.len() / 2;
    let steady = &windows[steady_from..];
    let steady_n = steady.len().max(1) as f64;
    let defense_recall = match spec.defense {
        DefensePolicy::Provenance { .. } if total_injected > 0 => {
            (total_screened.min(total_injected)) as f64 / total_injected as f64
        }
        DefensePolicy::Canary { .. } if poisoned_retrains > 0 => {
            caught_retrains as f64 / poisoned_retrains as f64
        }
        _ => 0.0,
    };
    let outcome = StreamOutcome {
        advisor: advisor.name(),
        attacker: spec.attacker.label(),
        defense: spec.defense.label().to_string(),
        drift: spec.drift.label().to_string(),
        cadence: spec.cadence.label(),
        baseline_cost,
        final_cost,
        mean_ad: windows.iter().map(|w| w.ad).sum::<f64>() / n,
        steady_ad: steady.iter().map(|w| w.ad).sum::<f64>() / steady_n,
        steady_toxicity: steady.iter().filter(|w| w.toxic).count() as f64 / steady_n,
        total_injected,
        total_screened,
        retrains,
        rollbacks,
        defense_recall,
        cost_evals,
        baseline_indexes,
        final_indexes: index_names(cost, &deployed),
        injector_label: spec
            .attacker
            .injector_kind()
            .map(|k| k.label().to_string()),
        first_attack_seed,
        seed: seed.get(),
        windows,
    };
    if pipa_obs::is_recording() {
        pipa_obs::emit(
            Event::new("stream_outcome")
                .field("mean_ad", outcome.mean_ad)
                .field("steady_ad", outcome.steady_ad)
                .field("steady_toxicity", outcome.steady_toxicity)
                .field("total_injected", outcome.total_injected)
                .field("total_screened", outcome.total_screened)
                .field("retrains", outcome.retrains)
                .field("rollbacks", outcome.rollbacks),
        );
    }
    Ok(outcome)
}

/// Poison in the training batch now closing: injections since the last
/// retrain (scanned backwards over finished windows) plus this window's.
fn injected_since(done: &[WindowReport], this_window: usize) -> usize {
    let since_last_retrain: usize = done
        .iter()
        .rev()
        .take_while(|r| !r.retrained)
        .map(|r| r.injected)
        .sum();
    since_last_retrain + this_window
}

/// The arms-race grid: attacker × defense × cadence × run, all sharing
/// one stream shape (windows, drift, budget) and advisor.
#[derive(Clone)]
pub struct StreamGridSpec {
    /// Advisor under attack (any registered kind id).
    pub advisor: AdvisorSpec,
    /// Attacker strategies to sweep.
    pub attackers: Vec<AttackerStrategy>,
    /// Defense policies to sweep.
    pub defenses: Vec<DefensePolicy>,
    /// Retraining cadences to sweep.
    pub cadences: Vec<Cadence>,
    /// Attack windows per stream.
    pub windows: usize,
    /// Drift schedule shared by every cell.
    pub drift: DriftSchedule,
    /// Per-window injection budget.
    pub budget: usize,
    /// Repetitions per (attacker, defense, cadence) triple.
    pub runs: u64,
    /// Root seed; per-run seeds derive via [`CellSeed::derive`].
    pub root_seed: u64,
}

/// One cell of a [`StreamGridSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamCell {
    /// Attacker strategy.
    pub attacker: AttackerStrategy,
    /// Defense policy.
    pub defense: DefensePolicy,
    /// Retraining cadence.
    pub cadence: Cadence,
    /// Run index.
    pub run: u64,
    /// `CellSeed::derive(root_seed, run)` — cells of the same run share
    /// the seed (hence the workload stream), so attacker and defense
    /// columns compare on identical traffic, exactly like
    /// [`crate::experiment::GridSpec`].
    pub seed: CellSeed,
}

impl StreamGridSpec {
    /// Every cell: attacker-major, then defense, then cadence, then run
    /// — the order [`run_stream_grid`] returns results in, independent
    /// of `--jobs`.
    pub fn cells(&self) -> Vec<StreamCell> {
        let mut out = Vec::with_capacity(self.len());
        for &attacker in &self.attackers {
            for &defense in &self.defenses {
                for &cadence in &self.cadences {
                    for run in 0..self.runs {
                        out.push(StreamCell {
                            attacker,
                            defense,
                            cadence,
                            run,
                            seed: CellSeed::derive(self.root_seed, run),
                        });
                    }
                }
            }
        }
        out
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.attackers.len() * self.defenses.len() * self.cadences.len() * self.runs as usize
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-cell scenario spec.
    pub fn cell_spec(&self, cell: &StreamCell) -> StreamSpec {
        StreamSpec {
            windows: self.windows,
            drift: self.drift,
            cadence: cell.cadence,
            attacker: cell.attacker,
            budget: self.budget,
            defense: cell.defense,
        }
    }
}

/// Evaluate every cell of a stream grid on up to `jobs` worker threads,
/// results in [`StreamGridSpec::cells`] order regardless of scheduling.
pub fn run_stream_grid(
    cost: &dyn CostBackend,
    cfg: &CellConfig,
    spec: &StreamGridSpec,
    jobs: usize,
) -> CostResult<Vec<(StreamCell, StreamOutcome)>> {
    run_stream_grid_traced(cost, cfg, spec, jobs, &TraceOutputs::disabled())
}

/// [`run_stream_grid`] with per-cell observability: each cell records
/// into its own `pipa-obs` scope (context: `cell_seed`, `attacker`,
/// `defense`, `cadence`, `run`) and the buffered traces are flushed in
/// cell order — byte-identical across `--jobs` settings, like
/// [`crate::experiment::run_grid_traced`].
pub fn run_stream_grid_traced(
    cost: &dyn CostBackend,
    cfg: &CellConfig,
    spec: &StreamGridSpec,
    jobs: usize,
    out: &TraceOutputs,
) -> CostResult<Vec<(StreamCell, StreamOutcome)>> {
    let results = par_map_traced(
        jobs,
        spec.cells(),
        out,
        |_, cell| {
            CellCtx::new(cell.seed.get())
                .field("attacker", cell.attacker.label())
                .field("defense", cell.defense.label())
                .field("cadence", cell.cadence.label())
                .field("run", cell.run)
        },
        |_, cell| {
            run_stream(
                cost,
                cfg,
                spec.advisor.clone(),
                &spec.cell_spec(&cell),
                cell.seed,
            )
            .map(|outcome| (cell, outcome))
        },
    );
    out.flush();
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::build_db;
    use pipa_ia::{AdvisorKind, SpeedPreset, TrajectoryMode};
    use pipa_workload::Benchmark;

    fn cfg() -> CellConfig {
        let mut cfg = CellConfig::quick(Benchmark::TpcH);
        cfg.preset = SpeedPreset::Test;
        cfg.probe_epochs = 2;
        cfg
    }

    fn advisor() -> AdvisorKind {
        AdvisorKind::DbaBandit(TrajectoryMode::Best)
    }

    fn spec(attacker: AttackerStrategy, defense: DefensePolicy, cadence: Cadence) -> StreamSpec {
        StreamSpec {
            windows: 4,
            drift: DriftSchedule::Resample,
            cadence,
            attacker,
            budget: 4,
            defense,
        }
    }

    #[test]
    fn clean_stream_never_degrades_vs_its_twin() {
        let cfg = cfg();
        let cost = build_db(&cfg);
        let s = spec(AttackerStrategy::None, DefensePolicy::None, Cadence::Every(2));
        let out = run_stream(&cost, &cfg, advisor(), &s, CellSeed::raw(21)).unwrap();
        assert_eq!(out.windows.len(), 4);
        for w in &out.windows {
            assert_eq!(w.ad, 0.0, "victim ≡ twin without an attacker: {w:?}");
            assert!(!w.toxic);
        }
        assert_eq!(out.total_injected, 0);
        assert_eq!(out.retrains, 2, "Every(2) over 4 windows fires at 2 and 4");
        assert!(out.as_stress_outcome().is_none(), "no attack, no stress view");
    }

    #[test]
    fn spread_attacker_spends_budget_every_window() {
        let cfg = cfg();
        let cost = build_db(&cfg);
        let s = spec(
            AttackerStrategy::Spread(InjectorKind::Tp),
            DefensePolicy::None,
            Cadence::Every(1),
        );
        let out = run_stream(&cost, &cfg, advisor(), &s, CellSeed::raw(22)).unwrap();
        for w in &out.windows {
            assert_eq!(w.injected, 4, "TP fills the whole budget: {w:?}");
            assert!(w.retrained);
        }
        assert_eq!(out.total_injected, 16);
        assert_eq!(out.retrains, 4);
        assert_eq!(out.attacker, "spread-TP");
        // Adjacent strikes draw distinct seeds, so the injections differ.
        assert_eq!(out.first_attack_seed, Some(derive_seed(22, 1)));
    }

    #[test]
    fn burst_attacker_banks_budget_until_a_retrain() {
        let cfg = cfg();
        let cost = build_db(&cfg);
        let s = spec(
            AttackerStrategy::Burst(InjectorKind::Tp),
            DefensePolicy::None,
            Cadence::Every(2),
        );
        let out = run_stream(&cost, &cfg, advisor(), &s, CellSeed::raw(23)).unwrap();
        let injected: Vec<usize> = out.windows.iter().map(|w| w.injected).collect();
        assert_eq!(injected, vec![0, 8, 0, 8], "full bank lands at each retrain");
        assert_eq!(out.total_injected, 16, "equal total budget to spread");
    }

    #[test]
    fn canary_guard_tracks_rollbacks_in_the_report() {
        let cfg = cfg();
        let cost = build_db(&cfg);
        // A tolerance of -1.0 makes every retrain "regress" (cost_after >
        // 0 >= cost_before * 0), so each one rolls back.
        let s = spec(
            AttackerStrategy::Spread(InjectorKind::Tp),
            DefensePolicy::Canary { tolerance: -1.0 },
            Cadence::Every(2),
        );
        let out = run_stream(&cost, &cfg, advisor(), &s, CellSeed::raw(24)).unwrap();
        assert_eq!(out.retrains, 2);
        assert_eq!(out.rollbacks, 2);
        assert_eq!(out.defense_recall, 1.0);
        assert!(out.windows.iter().filter(|w| w.retrained).all(|w| w.rolled_back));
    }

    #[test]
    fn provenance_screen_reports_drops_and_slides_history() {
        let cfg = cfg();
        let cost = build_db(&cfg);
        let s = spec(
            AttackerStrategy::Spread(InjectorKind::Pipa),
            DefensePolicy::Provenance {
                max_novel_fraction: 0.5,
                history: 2,
            },
            Cadence::Every(2),
        );
        let out = run_stream(&cost, &cfg, advisor(), &s, CellSeed::raw(25)).unwrap();
        assert!(out.total_injected > 0);
        assert!(
            out.total_screened > 0,
            "PIPA's mid-ranked columns should trip the screen: {out:?}"
        );
        assert!(out.defense_recall > 0.0 && out.defense_recall <= 1.0);
    }

    #[test]
    fn stream_grid_enumerates_cells_in_fixed_order() {
        let grid = StreamGridSpec {
            advisor: advisor().into(),
            attackers: vec![
                AttackerStrategy::Spread(InjectorKind::Tp),
                AttackerStrategy::Burst(InjectorKind::Tp),
            ],
            defenses: vec![DefensePolicy::None, DefensePolicy::Canary { tolerance: 0.02 }],
            cadences: vec![Cadence::Every(1), Cadence::EndOnly],
            windows: 3,
            drift: DriftSchedule::Resample,
            budget: 2,
            runs: 2,
            root_seed: 9,
        };
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 16);
        assert!(!grid.is_empty());
        // Attacker-major order; same-run cells share the seed.
        assert_eq!(cells[0].attacker, cells[7].attacker);
        assert_eq!(cells[0].seed, cells[2].seed);
        assert_eq!(cells[0].seed, CellSeed::derive(9, 0));
        let spec0 = grid.cell_spec(&cells[0]);
        assert_eq!(spec0.windows, 3);
        assert_eq!(spec0.budget, 2);
    }
}
