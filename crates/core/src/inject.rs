//! The injecting stage (paper §5, Algorithm 2).
//!
//! Generates the toxic injection workload `Ŵ`: queries that (1) can be
//! optimized by indexes on *mid-ranked* columns and (2) can **not** be
//! optimized by the top-ranked index — so retraining demotes the victim's
//! best columns and promotes mid-ranked ones, trapping trial-based
//! advisors in a local optimum and directly degrading one-off advisors.

use crate::preference::Segments;
use pipa_cost::{CostBackend, CostResult};
use pipa_qgen::QueryGenerator;
use pipa_sim::{ColumnId, Index, IndexConfig, Query, Workload};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Injection hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct InjectConfig {
    /// Toxic workload size `N_a` (paper: the normal-workload size).
    pub workload_size: usize,
    /// Columns specified per generated query `|{c}|` (paper default: 4,
    /// capped by the mid segment's width).
    pub columns_per_query: usize,
    /// Requested benefit for generated queries.
    pub target_reward: f64,
    /// Generation attempts per accepted query before giving up.
    pub max_attempts_factor: usize,
    /// Ablation switch: accept every generated query, skipping the
    /// Algorithm-2 line-4 toxicity check.
    pub skip_toxicity_filter: bool,
    /// Ablation switch: give injected queries unit frequency instead of
    /// normal-workload-like uniform frequencies.
    pub unit_frequencies: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InjectConfig {
    fn default() -> Self {
        InjectConfig {
            workload_size: 18,
            columns_per_query: 4,
            target_reward: 0.6,
            max_attempts_factor: 6,
            skip_toxicity_filter: false,
            unit_frequencies: false,
            seed: 0,
        }
    }
}

/// Injection outcome with acceptance diagnostics.
#[derive(Debug, Clone)]
pub struct InjectResult {
    /// The toxic injection workload.
    pub workload: Workload,
    /// Queries rejected by the line-4 filter.
    pub rejected: usize,
    /// Distinct mid-ranked columns covered by accepted queries.
    pub columns_covered: usize,
}

/// Algorithm 2: build the toxic injection workload from the estimated
/// segments.
pub fn inject(
    cost: &dyn CostBackend,
    generator: &mut dyn QueryGenerator,
    segments: &Segments,
    cfg: &InjectConfig,
) -> CostResult<InjectResult> {
    pipa_obs::phase("inject");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x1286);
    let mut w = Workload::new();
    let mut rejected = 0usize;
    let mut covered: Vec<ColumnId> = Vec::new();
    let top1 = segments.top.first().copied();
    let mid = if segments.mid.is_empty() {
        // Degenerate segmentation: fall back to everything but the top.
        &segments.low
    } else {
        &segments.mid
    };
    if mid.is_empty() {
        return Ok(InjectResult {
            workload: w,
            rejected,
            columns_covered: 0,
        });
    }

    let max_attempts = cfg.workload_size * cfg.max_attempts_factor;
    let mut attempts = 0;
    while w.len() < cfg.workload_size && attempts < max_attempts {
        attempts += 1;
        // Line 2: sample target columns from the mid segment.
        let k = cfg.columns_per_query.min(mid.len()).max(1);
        let cols: Vec<ColumnId> = mid.choose_multiple(&mut rng, k).copied().collect();
        // Line 3: generate a query optimized by those columns.
        let Some(q) = generator.generate(cost, &cols, cfg.target_reward)? else {
            rejected += 1;
            continue;
        };
        // Line 4: accept only if the mid columns beat the top index.
        if cfg.skip_toxicity_filter || passes_toxicity_filter(cost, &q, &cols, top1)? {
            for c in q.filter_columns() {
                if mid.contains(&c) && !covered.contains(&c) {
                    covered.push(c);
                }
            }
            // Injected queries mimic normal workload frequencies so the
            // poisoned training mass matches ω (the FSM baseline keeps
            // unit frequencies per §6.2).
            use rand::Rng as _;
            let freq = if cfg.unit_frequencies {
                1
            } else {
                rng.gen_range(1..=10)
            };
            w.push(q, freq);
        } else {
            rejected += 1;
        }
    }
    if pipa_obs::is_recording() {
        pipa_obs::emit(
            pipa_obs::Event::new("inject_done")
                .field("accepted", w.len())
                .field("rejected", rejected)
                .field("columns_covered", covered.len())
                .field("attempts", attempts),
        );
    }
    Ok(InjectResult {
        workload: w,
        rejected,
        columns_covered: covered.len(),
    })
}

/// The paper's line-4 condition: `c(q̂, d, {c}) < c(q̂, d, l_1)` — the
/// sampled mid columns must optimize the query strictly better than the
/// victim's top-ranked index does.
pub fn passes_toxicity_filter(
    cost: &dyn CostBackend,
    q: &Query,
    cols: &[ColumnId],
    top1: Option<ColumnId>,
) -> CostResult<bool> {
    // Generated queries are single-table, so under the simulator backend
    // both sides of the comparison come from the same benefit-matrix row;
    // join-shaped queries fall back to the full model.
    let mid_cfg: IndexConfig = cols.iter().map(|&c| Index::single(c)).collect();
    let c_mid = cost.query_cost(q, &mid_cfg)?;
    let c_top = match top1 {
        Some(t) => cost.query_cost(q, &IndexConfig::from_indexes([Index::single(t)]))?,
        None => cost.query_cost(q, &IndexConfig::empty())?,
    };
    Ok(c_mid < c_top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::{oracle_preference, segment, SegmentConfig};
    use pipa_qgen::StGenerator;
    use pipa_workload::Benchmark;

    fn setup() -> (pipa_cost::SimBackend, Segments) {
        let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        use rand::SeedableRng;
        let w = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        let pref = oracle_preference(&cost, &w).unwrap();
        let seg = segment(&pref, cost.database().schema(), &SegmentConfig::default());
        (cost, seg)
    }

    #[test]
    fn injection_fills_workload_with_mid_targeting_queries() {
        let (cost, seg) = setup();
        let mut generator = StGenerator::new(5);
        let cfg = InjectConfig {
            workload_size: 10,
            ..Default::default()
        };
        let res = inject(&cost, &mut generator, &seg, &cfg).unwrap();
        assert!(
            res.workload.len() >= 7,
            "accepted {} of 10 (rejected {})",
            res.workload.len(),
            res.rejected
        );
        // Accepted queries avoid filtering on the top column.
        let top1 = seg.top[0];
        for wq in res.workload.iter() {
            let fc = wq.query.filter_columns();
            assert!(!fc.contains(&top1), "query filters on the top index");
        }
        assert!(res.columns_covered >= 2, "covered {}", res.columns_covered);
    }

    #[test]
    fn toxicity_filter_rejects_top_optimized_queries() {
        let (cost, seg) = setup();
        let schema = cost.database().schema();
        let top1 = seg.top[0];
        // A query filtered on the top column is optimized by it.
        let q = pipa_sim::QueryBuilder::new()
            .filter(schema, pipa_sim::Predicate::eq(top1, 0.3))
            .aggregate(pipa_sim::Aggregate::CountStar)
            .build(schema)
            .unwrap();
        assert!(!passes_toxicity_filter(
            &cost,
            &q,
            &seg.mid[..2.min(seg.mid.len())],
            Some(top1)
        )
        .unwrap());
    }

    #[test]
    fn toxicity_filter_accepts_mid_optimized_queries() {
        let (cost, seg) = setup();
        let cat = cost.catalog();
        let selective: Vec<ColumnId> = seg
            .mid
            .iter()
            .copied()
            .filter(|&c| cat.column(c).ndv > 100)
            .collect();
        let Some(&first) = selective.first() else {
            return; // segmentation produced no selective mid columns
        };
        // Stay on one table so the probe query needs no join edges.
        let schema = cat.schema;
        let table = schema.column(first).table;
        let mid: Vec<ColumnId> = selective
            .into_iter()
            .filter(|&c| schema.column(c).table == table)
            .take(2)
            .collect();
        let mut b = pipa_sim::QueryBuilder::new();
        for &c in &mid {
            b = b.filter(schema, pipa_sim::Predicate::eq(c, 0.4));
        }
        let q = b
            .aggregate(pipa_sim::Aggregate::CountStar)
            .build(schema)
            .unwrap();
        assert!(passes_toxicity_filter(&cost, &q, &mid, Some(seg.top[0])).unwrap());
    }

    #[test]
    fn injection_workload_is_disjoint_from_normal() {
        let (cost, seg) = setup();
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        let normal = g.normal(&mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        let mut generator = StGenerator::new(6);
        let res = inject(
            &cost,
            &mut generator,
            &seg,
            &InjectConfig {
                workload_size: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.workload.is_disjoint_from(&normal), "Ŵ ∩ W = ∅");
    }

    #[test]
    fn empty_mid_segment_handled() {
        let (cost, mut seg) = setup();
        seg.mid.clear();
        seg.low.clear();
        let mut generator = StGenerator::new(7);
        let res = inject(&cost, &mut generator, &seg, &InjectConfig::default()).unwrap();
        assert!(res.workload.is_empty());
    }
}
