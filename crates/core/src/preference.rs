//! Indexing preference: the ranking `k` over indexable columns (paper
//! §4.1–4.2, Eq. 5–8) and its segmentation into top/mid/low ranks (§5).

use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{ColumnId, Schema};

/// Estimated indexing preference: per-column expected contribution `K`
/// and the derived ranking.
#[derive(Debug, Clone)]
pub struct IndexingPreference {
    /// `K(l_j)` accumulator values, indexed by `ColumnId.0`.
    pub k_values: Vec<f64>,
    /// Columns sorted by descending `K` (ties: ascending column id).
    pub ranking: Vec<ColumnId>,
}

impl IndexingPreference {
    /// Build from raw `K` values.
    pub fn from_k_values(k_values: Vec<f64>) -> Self {
        let mut ranking: Vec<ColumnId> = (0..k_values.len() as u32).map(ColumnId).collect();
        ranking.sort_by(|a, b| {
            k_values[b.0 as usize]
                .total_cmp(&k_values[a.0 as usize])
                .then(a.0.cmp(&b.0))
        });
        IndexingPreference { k_values, ranking }
    }

    /// Rank position (0-based) of a column.
    pub fn rank_of(&self, col: ColumnId) -> usize {
        self.ranking
            .iter()
            .position(|&c| c == col)
            .expect("column in ranking")
    }

    /// The top-ranked column (`l_1`).
    pub fn best(&self) -> ColumnId {
        self.ranking[0]
    }

    /// Number of columns with strictly positive `K` (columns the IA was
    /// ever observed to prefer).
    pub fn num_positive(&self) -> usize {
        self.k_values.iter().filter(|&&v| v > 0.0).count()
    }
}

/// The three rank segments of §5. The top segment is the best index plus
/// its foreign-key closure (§6.4: "we treat the best index and its foreign
/// keys as the top-ranked index"); the mid segment runs to `q`; the rest
/// is low-ranked.
#[derive(Debug, Clone)]
pub struct Segments {
    /// Top-ranked columns (never targeted by the injection).
    pub top: Vec<ColumnId>,
    /// Mid-ranked columns (the injection's target segment).
    pub mid: Vec<ColumnId>,
    /// Low-ranked columns.
    pub low: Vec<ColumnId>,
}

/// Segmentation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// End of the mid segment as a fraction of `L` (paper default: 1/4).
    pub mid_end_fraction: f64,
    /// Extra top ranks beyond the best index's FK closure (Figure 10a's
    /// "start point" sweep; `None` = FK closure only, the paper default).
    pub fixed_start: Option<usize>,
    /// Fixed mid-segment length (Figure 10a fixes it to 4; `None` uses
    /// `mid_end_fraction`).
    pub fixed_len: Option<usize>,
    /// Columns whose `K` is at least this fraction of the best column's
    /// `K` join the top segment. The paper's TPC-H head was one key
    /// family (l_partkey + FKs), so the FK closure alone captured it; on
    /// landscapes where the head is several unrelated strong columns,
    /// reinforcing any of them would void the attack (§5: "the stress
    /// test will be invalid if the injection workloads strengthen the
    /// top-ranked columns").
    pub top_k_fraction: f64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            mid_end_fraction: 0.25,
            fixed_start: None,
            fixed_len: None,
            top_k_fraction: 0.35,
        }
    }
}

/// Split a preference ranking into segments.
pub fn segment(pref: &IndexingPreference, schema: &Schema, cfg: &SegmentConfig) -> Segments {
    let l = pref.ranking.len();
    let start = match cfg.fixed_start {
        Some(s) => s.min(l),
        None => {
            // Best index + FK closure + near-top columns form the top
            // segment (capped at L/8 so a flat landscape cannot swallow
            // the mid segment).
            let closure = schema.foreign_key_closure(pref.best());
            let k_best = pref.k_values[pref.best().0 as usize];
            let mut top_end = 1;
            for (pos, c) in pref.ranking.iter().enumerate() {
                let near_top =
                    k_best > 0.0 && pref.k_values[c.0 as usize] >= cfg.top_k_fraction * k_best;
                if (closure.contains(c) || near_top) && pos < (l / 8).max(2) {
                    top_end = top_end.max(pos + 1);
                }
            }
            top_end
        }
    };
    let mid_end = match cfg.fixed_len {
        Some(len) => (start + len).min(l),
        None => ((l as f64 * cfg.mid_end_fraction).round() as usize).clamp(start + 1, l),
    };
    Segments {
        top: pref.ranking[..start].to_vec(),
        mid: pref.ranking[start..mid_end].to_vec(),
        low: pref.ranking[mid_end..].to_vec(),
    }
}

/// Build a preference whose unobserved (`K ≤ 0`) columns are ranked by
/// the evaluator-side indexability prior instead of by column id. Both
/// the probing stage and the clear-box P-C baseline use this: internal
/// advisor state only covers columns the advisor ever touched, and the
/// tail ordering decides what "mid-ranked" means.
pub fn preference_with_prior(
    cost: &dyn CostBackend,
    mut k_values: Vec<f64>,
) -> CostResult<IndexingPreference> {
    let min_pos = k_values
        .iter()
        .copied()
        .filter(|&v| v > 0.0)
        .fold(f64::INFINITY, f64::min);
    if min_pos.is_finite() {
        let prior = crate::probe::indexability_prior(cost)?;
        let prior_max = prior.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        for (k, &p) in k_values.iter_mut().zip(&prior) {
            if *k <= 0.0 {
                *k = 0.5 * min_pos * (p / prior_max);
            }
        }
    }
    Ok(IndexingPreference::from_k_values(k_values))
}

/// True (oracle) preference from what-if benefits — used by tests and by
/// the probing-accuracy analysis (Figure 12b's "error rate" compares
/// estimated segments against a reference).
pub fn oracle_preference(
    cost: &dyn CostBackend,
    w: &pipa_sim::Workload,
) -> CostResult<IndexingPreference> {
    let mut k_values = Vec::new();
    for c in cost.catalog().schema.indexable_columns() {
        k_values.push(pipa_ia::features::single_column_benefit(cost, w, c)?);
    }
    Ok(IndexingPreference::from_k_values(k_values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_workload::Benchmark;

    #[test]
    fn ranking_sorts_by_k_desc() {
        let pref = IndexingPreference::from_k_values(vec![0.1, 0.9, 0.0, 0.5]);
        assert_eq!(
            pref.ranking,
            vec![ColumnId(1), ColumnId(3), ColumnId(0), ColumnId(2)]
        );
        assert_eq!(pref.best(), ColumnId(1));
        assert_eq!(pref.rank_of(ColumnId(0)), 2);
        assert_eq!(pref.num_positive(), 3);
    }

    #[test]
    fn ties_break_by_column_id() {
        let pref = IndexingPreference::from_k_values(vec![0.0, 0.0, 0.0]);
        assert_eq!(pref.ranking, vec![ColumnId(0), ColumnId(1), ColumnId(2)]);
    }

    #[test]
    fn segments_partition_the_ranking() {
        let schema = Benchmark::TpcH.schema();
        let mut k = vec![0.0; schema.num_columns()];
        let lp = schema.column_id("l_partkey").unwrap();
        k[lp.0 as usize] = 1.0;
        let pref = IndexingPreference::from_k_values(k);
        let seg = segment(&pref, &schema, &SegmentConfig::default());
        let total = seg.top.len() + seg.mid.len() + seg.low.len();
        assert_eq!(total, schema.num_columns());
        assert!(seg.top.contains(&lp));
        assert!(!seg.mid.contains(&lp));
    }

    #[test]
    fn fk_closure_expands_top_segment() {
        // If l_partkey is best and ps_partkey/p_partkey rank high, they
        // join the top segment (paper §6.4's start-point-5 finding).
        let schema = Benchmark::TpcH.schema();
        let mut k = vec![0.0; schema.num_columns()];
        let lp = schema.column_id("l_partkey").unwrap();
        let psp = schema.column_id("ps_partkey").unwrap();
        let pp = schema.column_id("p_partkey").unwrap();
        k[lp.0 as usize] = 1.0;
        k[psp.0 as usize] = 0.9;
        k[pp.0 as usize] = 0.8;
        let pref = IndexingPreference::from_k_values(k);
        let seg = segment(&pref, &schema, &SegmentConfig::default());
        assert!(seg.top.contains(&psp) && seg.top.contains(&pp));
        assert!(seg.top.len() >= 3);
    }

    #[test]
    fn fixed_boundaries_override() {
        let schema = Benchmark::TpcH.schema();
        let pref = IndexingPreference::from_k_values(vec![0.5; schema.num_columns()]);
        let seg = segment(
            &pref,
            &schema,
            &SegmentConfig {
                fixed_start: Some(5),
                fixed_len: Some(4),
                ..Default::default()
            },
        );
        assert_eq!(seg.top.len(), 5);
        assert_eq!(seg.mid.len(), 4);
        assert_eq!(seg.low.len(), schema.num_columns() - 9);
    }

    #[test]
    fn oracle_preference_ranks_useful_columns_first() {
        let cost = pipa_cost::SimBackend::new(Benchmark::TpcH.database(1.0, None));
        let g = pipa_workload::generator::WorkloadGenerator::new(
            Benchmark::TpcH.schema(),
            Benchmark::TpcH.default_templates(),
        );
        use rand::SeedableRng;
        let w = g
            .normal(&mut rand_chacha::ChaCha8Rng::seed_from_u64(1))
            .unwrap();
        let pref = oracle_preference(&cost, &w).unwrap();
        let best = pref.best();
        let name = &cost.database().schema().column(best).name;
        assert!(
            name.contains("date") || name.contains("key"),
            "plausible best column, got {name}"
        );
    }
}
