//! The `Database` facade: schema + statistics + (optionally) materialized
//! data, exposing exactly the interface the paper assumes of the DBMS:
//! estimated costs via hypothetical indexes, and actual execution costs.

use crate::cost::cache::{fingerprint_config, fingerprint_index, fingerprint_query, Fingerprint};
use crate::cost::matrix::{keyed_indexes, EvalState, QueryKey, QueryShape, QueryState};
use crate::cost::model::JoinStepState;
use crate::cost::{
    AnalyticalCostModel, BenefitMatrix, CacheStats, Catalog, ConfigDelta, CostCache, CostModel,
    IncrementalEval, MatrixStats, PAGE_SIZE,
};
use crate::datagen::generate_table;
use crate::error::{SimError, SimResult};
use crate::exec::Executor;
use crate::index::{Index, IndexConfig};
use crate::query::Query;
use crate::schema::{ColumnId, DataType, Schema, TableId};
use crate::stats::{ColumnStats, TableStats};
use crate::storage::{PhysicalIndex, Storage};
use crate::workload::Workload;
use std::collections::HashMap;
use std::sync::Mutex;

/// A simulated database instance.
pub struct Database {
    schema: Schema,
    table_stats: Vec<TableStats>,
    column_stats: Vec<ColumnStats>,
    model: AnalyticalCostModel,
    storage: Option<Storage>,
    /// Physical indexes are config-independent; cache them per definition.
    phys_cache: Mutex<HashMap<Index, PhysicalIndex>>,
    /// Memoized what-if costs; the model is pure so entries never go stale.
    whatif_cache: CostCache,
    /// Per-(query, index) benefit matrix for incremental what-if
    /// evaluation; join-coupled queries fall back to `whatif_cache`.
    whatif_matrix: BenefitMatrix,
    scale: f64,
}

impl Database {
    /// Start building a database for a schema.
    pub fn builder(schema: Schema) -> DatabaseBuilder {
        DatabaseBuilder::new(schema)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The scale factor the statistics were generated at.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Per-column statistics, indexed by `ColumnId.0`.
    pub fn column_stats(&self) -> &[ColumnStats] {
        &self.column_stats
    }

    /// Statistics for one column.
    pub fn column_stat(&self, c: ColumnId) -> &ColumnStats {
        &self.column_stats[c.0 as usize]
    }

    /// Per-table statistics.
    pub fn table_stats(&self) -> &[TableStats] {
        &self.table_stats
    }

    /// A read-only catalog view for cost models.
    pub fn catalog(&self) -> Catalog<'_> {
        Catalog {
            schema: &self.schema,
            table_stats: &self.table_stats,
            column_stats: &self.column_stats,
        }
    }

    /// All indexable columns (`0..L`).
    pub fn indexable_columns(&self) -> Vec<ColumnId> {
        self.schema.indexable_columns()
    }

    /// Whether data is materialized (actual execution available).
    pub fn has_data(&self) -> bool {
        self.storage.as_ref().is_some_and(|s| s.is_complete())
    }

    /// Estimated cost of a query under a hypothetical configuration:
    /// `c(q, d, I)`, the single what-if entry point.
    ///
    /// Dispatch is internal: single-table queries are answered from the
    /// per-(query, index) benefit matrix, join queries over distinct
    /// tables from the decomposed join plan (per-step access and
    /// nested-loop cells over the config-independent skeleton), and only
    /// genuinely non-decomposable shapes — a table scanned twice — fall
    /// back to the full analytical model memoized by the thread-safe
    /// [`CostCache`] (as do all calls with the matrix disabled). Every
    /// path is bit-identical (pinned by `tests/whatif_differential.rs`),
    /// so the dispatch choice never changes results.
    pub fn estimated_query_cost(&self, q: &Query, cfg: &IndexConfig) -> f64 {
        if !self.whatif_matrix.is_enabled() {
            return self.scalar_query_cost(q, cfg);
        }
        let keyed = keyed_indexes(cfg);
        self.matrix_query_cost_keyed(q, cfg, &keyed)
    }

    /// Estimated cost of a workload: the frequency-weighted sum, in
    /// workload order, of [`Self::estimated_query_cost`] terms.
    pub fn estimated_workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        if !self.whatif_matrix.is_enabled() {
            return self.scalar_workload_cost(w, cfg);
        }
        let keyed = keyed_indexes(cfg);
        w.iter()
            .map(|wq| wq.frequency as f64 * self.matrix_query_cost_keyed(&wq.query, cfg, &keyed))
            .sum()
    }

    /// The pre-matrix scalar path: full analytical model, memoized by the
    /// what-if cache. This is the reference implementation the benefit
    /// matrix must stay bit-identical to; it is public (but hidden) so
    /// the differential test suite can compare against it directly.
    #[doc(hidden)]
    pub fn scalar_query_cost(&self, q: &Query, cfg: &IndexConfig) -> f64 {
        let cf = fingerprint_config(cfg);
        let qf = fingerprint_query(q);
        record_whatif(qf, cf);
        self.whatif_cache.get_or_compute(qf, cf, || {
            self.model.query_cost(self.catalog(), q, cfg)
        })
    }

    /// Scalar-path workload cost (frequency-weighted sum of memoized
    /// per-query [`Self::scalar_query_cost`] terms). See
    /// [`Self::scalar_query_cost`] for why this stays public.
    #[doc(hidden)]
    pub fn scalar_workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        let cf = fingerprint_config(cfg);
        w.iter()
            .map(|wq| {
                let qf = fingerprint_query(&wq.query);
                record_whatif(qf, cf);
                wq.frequency as f64
                    * self.whatif_cache.get_or_compute(qf, cf, || {
                        self.model.query_cost(self.catalog(), &wq.query, cfg)
                    })
            })
            .sum()
    }

    /// Hit/miss counters of the what-if cost cache.
    pub fn whatif_cache_stats(&self) -> CacheStats {
        self.whatif_cache.stats()
    }

    /// Enable or disable what-if memoization (benchmarks use this to
    /// measure the uncached path; results are identical either way).
    pub fn set_whatif_cache_enabled(&self, on: bool) {
        self.whatif_cache.set_enabled(on);
    }

    /// Bound the what-if cache's residency to `capacity` entries
    /// (`usize::MAX` = unbounded, the default; `0` = store nothing).
    /// Eviction is CLOCK/second-chance per shard and affects presence
    /// only — the cost model is pure, so any capacity returns costs
    /// bit-identical to the unbounded cache.
    pub fn set_whatif_cache_capacity(&self, capacity: usize) {
        self.whatif_cache.set_capacity(capacity);
    }

    /// Drop all memoized what-if costs and zero the counters.
    pub fn clear_whatif_cache(&self) {
        self.whatif_cache.clear();
    }

    // ---- Incremental what-if evaluation (the benefit matrix) ----------

    /// Workload costs for a batch of configurations, answered from the
    /// benefit matrix. The matrix rows are shared across the batch, so
    /// `n` configurations over the same workload cost one model
    /// evaluation per *distinct* `(query, index)` pair instead of `n`
    /// full workload re-costings.
    pub fn what_if_batch(&self, w: &Workload, configs: &[IndexConfig]) -> Vec<f64> {
        configs
            .iter()
            .map(|cfg| self.estimated_workload_cost(w, cfg))
            .collect()
    }

    /// Workload cost of `base ± index` (one [`ConfigDelta`]), answered
    /// from the benefit matrix. For the advisor hot loop that holds a
    /// session open across many edits, prefer [`Self::whatif_eval_begin`]
    /// / [`Self::whatif_eval_add`], which touch one matrix cell per query
    /// per edit.
    pub fn what_if_delta(&self, w: &Workload, base: &IndexConfig, delta: &ConfigDelta) -> f64 {
        self.whatif_matrix.note_delta();
        pipa_obs::count("whatif_delta", 1);
        let cfg = delta.apply(base);
        self.estimated_workload_cost(w, &cfg)
    }

    /// Start an incremental evaluation session for `w` at the empty
    /// configuration. The session holds plain per-query state (no
    /// borrows), so advisors can keep one per episode. Toggling the
    /// matrix enable flag mid-session invalidates open sessions.
    pub fn whatif_eval_begin(&self, w: &Workload) -> IncrementalEval {
        let empty = IndexConfig::empty();
        let states = w
            .iter()
            .map(|wq| {
                let q = &wq.query;
                let qf = fingerprint_query(q);
                let kind = if !self.whatif_matrix.is_enabled() {
                    QueryState::Full(self.scalar_query_cost(q, &empty))
                } else {
                    match self.whatif_matrix.shape(&self.model, self.catalog(), q, qf) {
                        QueryShape::Trivial => {
                            self.whatif_matrix.note_matrix_eval();
                            pipa_obs::count("whatif_matrix", 1);
                            QueryState::Trivial
                        }
                        QueryShape::Decomposable {
                            table,
                            seq_cost,
                            rows_out,
                        } => {
                            self.whatif_matrix.note_matrix_eval();
                            pipa_obs::count("whatif_matrix", 1);
                            QueryState::Raw {
                                table,
                                rows_out,
                                raw: seq_cost,
                                cost: self.model.apply_surcharges(q, seq_cost, rows_out),
                            }
                        }
                        QueryShape::JoinDecomposable { plan } => {
                            self.whatif_matrix.note_join_eval();
                            pipa_obs::count("whatif_join_matrix", 1);
                            // Empty configuration: every step starts at
                            // its seq-scan baseline with no nested-loop
                            // alternative.
                            let steps: Vec<JoinStepState> = plan
                                .steps
                                .iter()
                                .map(|s| JoinStepState {
                                    raw: s.seq_cost,
                                    nl: f64::INFINITY,
                                })
                                .collect();
                            let cost = self.model.join_cost_from_steps(q, &plan, &steps);
                            QueryState::Join { plan, steps, cost }
                        }
                        QueryShape::JoinCoupled => {
                            self.whatif_matrix.note_fallback();
                            pipa_obs::count("whatif_full_fallback", 1);
                            QueryState::Full(self.scalar_query_cost(q, &empty))
                        }
                    }
                };
                EvalState { qf, kind }
            })
            .collect();
        IncrementalEval { states }
    }

    /// Current total workload cost of a session: a fresh
    /// frequency-weighted sum in workload order (never maintained via
    /// `+= diff`, which would accumulate float error and break
    /// bit-equality with a scalar recompute).
    pub fn whatif_eval_total(&self, w: &Workload, eval: &IncrementalEval) -> f64 {
        debug_assert_eq!(w.len(), eval.len(), "session built for another workload");
        w.iter()
            .zip(&eval.states)
            .map(|(wq, st)| wq.frequency as f64 * st.kind.cost())
            .sum()
    }

    /// Total workload cost of `session config + idx` without committing:
    /// one matrix-cell probe per decomposable query. `cfg_after` must be
    /// the session's configuration with `idx` added (join-coupled entries
    /// re-cost against it in full, through the what-if cache).
    pub fn whatif_eval_preview_add(
        &self,
        w: &Workload,
        eval: &IncrementalEval,
        cfg_after: &IndexConfig,
        idx: &Index,
    ) -> f64 {
        self.whatif_matrix.note_delta();
        pipa_obs::count("whatif_delta", 1);
        debug_assert_eq!(w.len(), eval.len(), "session built for another workload");
        let idxf = fingerprint_index(idx);
        w.iter()
            .zip(&eval.states)
            .map(|(wq, st)| {
                wq.frequency as f64
                    * match &st.kind {
                        QueryState::Trivial => 0.0,
                        QueryState::Raw {
                            table,
                            rows_out,
                            raw,
                            ..
                        } => {
                            let e = self.whatif_matrix.index_cell(
                                &self.model,
                                self.catalog(),
                                &QueryKey {
                                    q: &wq.query,
                                    qf: st.qf,
                                    table: *table,
                                },
                                idxf,
                                idx,
                            );
                            let raw2 = if e < *raw { e } else { *raw };
                            self.model.apply_surcharges(&wq.query, raw2, *rows_out)
                        }
                        QueryState::Join { plan, steps, .. } => self.whatif_matrix.join_preview_add(
                            &self.model,
                            self.catalog(),
                            &wq.query,
                            st.qf,
                            plan,
                            steps,
                            idxf,
                            idx,
                        ),
                        QueryState::Full(_) => self.scalar_query_cost(&wq.query, cfg_after),
                    }
            })
            .sum()
    }

    /// Commit `idx` into the session's configuration and return the new
    /// total. `cfg_after` must be the session's configuration with `idx`
    /// already added.
    pub fn whatif_eval_add(
        &self,
        w: &Workload,
        eval: &mut IncrementalEval,
        cfg_after: &IndexConfig,
        idx: &Index,
    ) -> f64 {
        self.whatif_matrix.note_delta();
        pipa_obs::count("whatif_delta", 1);
        debug_assert_eq!(w.len(), eval.len(), "session built for another workload");
        let idxf = fingerprint_index(idx);
        for (wq, st) in w.iter().zip(&mut eval.states) {
            let qf = st.qf;
            match &mut st.kind {
                QueryState::Trivial => {}
                QueryState::Raw {
                    table,
                    rows_out,
                    raw,
                    cost,
                } => {
                    let e = self.whatif_matrix.index_cell(
                        &self.model,
                        self.catalog(),
                        &QueryKey {
                            q: &wq.query,
                            qf,
                            table: *table,
                        },
                        idxf,
                        idx,
                    );
                    if e < *raw {
                        *raw = e;
                    }
                    *cost = self.model.apply_surcharges(&wq.query, *raw, *rows_out);
                }
                QueryState::Join { plan, steps, cost } => {
                    self.whatif_matrix.join_apply_add(
                        &self.model,
                        self.catalog(),
                        &wq.query,
                        qf,
                        plan,
                        steps,
                        idxf,
                        idx,
                    );
                    *cost = self.model.join_cost_from_steps(&wq.query, plan, steps);
                }
                QueryState::Full(c) => {
                    *c = self.scalar_query_cost(&wq.query, cfg_after);
                }
            }
        }
        self.whatif_eval_total(w, eval)
    }

    /// Counter snapshot of the benefit matrix.
    pub fn whatif_matrix_stats(&self) -> MatrixStats {
        self.whatif_matrix.stats()
    }

    /// Enable or disable the benefit matrix (evaluations route to the
    /// full model when disabled; results are identical either way).
    /// Benchmarks use this to measure the scalar path.
    pub fn set_whatif_matrix_enabled(&self, on: bool) {
        self.whatif_matrix.set_enabled(on);
    }

    /// Whether the benefit matrix is enabled.
    pub fn whatif_matrix_enabled(&self) -> bool {
        self.whatif_matrix.is_enabled()
    }

    /// Bound the benefit matrix's approximate cell footprint in bytes
    /// (`usize::MAX` = unbounded, the default). Over-budget inserts
    /// trigger rotating shard-clear compaction; cleared cells recompute
    /// bit-identically on the next touch.
    pub fn set_whatif_matrix_byte_budget(&self, bytes: usize) {
        self.whatif_matrix.set_byte_budget(bytes);
    }

    /// Drop all matrix cells and shapes and zero its counters.
    pub fn clear_whatif_matrix(&self) {
        self.whatif_matrix.clear();
    }

    /// Per-query evaluation through the matrix with the config's index
    /// fingerprints hoisted out of the per-query loop.
    fn matrix_query_cost_keyed(
        &self,
        q: &Query,
        cfg: &IndexConfig,
        keyed: &[(Fingerprint, &Index)],
    ) -> f64 {
        let qf = fingerprint_query(q);
        match self.whatif_matrix.shape(&self.model, self.catalog(), q, qf) {
            QueryShape::Trivial => {
                self.whatif_matrix.note_matrix_eval();
                pipa_obs::count("whatif_matrix", 1);
                0.0
            }
            QueryShape::Decomposable {
                table,
                seq_cost,
                rows_out,
            } => {
                self.whatif_matrix.note_matrix_eval();
                pipa_obs::count("whatif_matrix", 1);
                let raw = self.whatif_matrix.best_raw(
                    &self.model,
                    self.catalog(),
                    &QueryKey { q, qf, table },
                    seq_cost,
                    keyed,
                );
                self.model.apply_surcharges(q, raw, rows_out)
            }
            QueryShape::JoinDecomposable { plan } => {
                self.whatif_matrix.note_join_eval();
                pipa_obs::count("whatif_join_matrix", 1);
                self.whatif_matrix
                    .join_eval(&self.model, self.catalog(), q, qf, &plan, keyed)
            }
            QueryShape::JoinCoupled => {
                self.whatif_matrix.note_fallback();
                pipa_obs::count("whatif_full_fallback", 1);
                self.scalar_query_cost(q, cfg)
            }
        }
    }

    /// Actual (executed) cost of a query; falls back to the estimate when
    /// no data is materialized.
    pub fn actual_query_cost(&self, q: &Query, cfg: &IndexConfig) -> SimResult<f64> {
        let Some(storage) = &self.storage else {
            return Ok(self.estimated_query_cost(q, cfg));
        };
        let phys = self.physical_for(cfg, storage)?;
        let ex = Executor::new(self.catalog(), storage);
        ex.execute_cost(q, cfg, &phys)
    }

    /// Actual (executed) cost of a workload, frequency-weighted.
    pub fn actual_workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> SimResult<f64> {
        let Some(storage) = &self.storage else {
            return Ok(self.estimated_workload_cost(w, cfg));
        };
        let phys = self.physical_for(cfg, storage)?;
        let ex = Executor::new(self.catalog(), storage);
        let mut total = 0.0;
        for wq in w.iter() {
            total += wq.frequency as f64 * ex.execute_cost(&wq.query, cfg, &phys)?;
        }
        Ok(total)
    }

    /// EXPLAIN-style access-path summary of a query under a hypothetical
    /// configuration.
    pub fn explain(&self, q: &Query, cfg: &IndexConfig) -> String {
        self.model.explain(self.catalog(), q, cfg)
    }

    /// Render a query to SQL using this database's statistics.
    pub fn render_sql(&self, q: &Query) -> String {
        q.render_sql(&self.schema, |c| &self.column_stats[c.0 as usize])
    }

    fn physical_for(
        &self,
        cfg: &IndexConfig,
        storage: &Storage,
    ) -> SimResult<HashMap<Index, PhysicalIndex>> {
        let mut cache = self
            .phys_cache
            .lock()
            .map_err(|_| SimError::Poisoned("physical index cache"))?;
        let mut out = HashMap::with_capacity(cfg.len());
        for idx in cfg.indexes() {
            let phys = match cache.entry(idx.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let t = idx.table(&self.schema);
                    let data = storage
                        .table(t)
                        .ok_or_else(|| SimError::MissingData(self.schema.table(t).name.clone()))?;
                    e.insert(PhysicalIndex::build(&self.schema, data, idx.clone()))
                }
            };
            out.insert(idx.clone(), phys.clone());
        }
        Ok(out)
    }
}

/// Builder for [`Database`].
pub struct DatabaseBuilder {
    schema: Schema,
    column_stats: Option<Vec<ColumnStats>>,
    scale: f64,
    materialize: Option<MaterializeOpts>,
}

/// Data-materialization options.
#[derive(Debug, Clone, Copy)]
struct MaterializeOpts {
    seed: u64,
    row_cap: u32,
}

impl DatabaseBuilder {
    /// New builder with scale 1.0 and no data.
    pub fn new(schema: Schema) -> Self {
        DatabaseBuilder {
            schema,
            column_stats: None,
            scale: 1.0,
            materialize: None,
        }
    }

    /// Scale factor applied to every table's base row count.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Provide explicit column statistics (indexed by `ColumnId.0`,
    /// covering every column). When omitted, default statistics are
    /// derived from column types (see [`default_column_stats`]).
    pub fn column_stats(mut self, stats: Vec<ColumnStats>) -> Self {
        self.column_stats = Some(stats);
        self
    }

    /// Materialize synthetic data (capped at `row_cap` rows per table so
    /// large scale factors stay laptop-sized; costs are page-based so the
    /// cap only coarsens, never reorders, actual costs).
    pub fn materialize(mut self, seed: u64, row_cap: u32) -> Self {
        self.materialize = Some(MaterializeOpts { seed, row_cap });
        self
    }

    /// Build the database.
    pub fn build(self) -> Database {
        let scaled_rows = |t: &crate::schema::Table| -> u64 {
            ((t.base_rows as f64 * self.scale).round() as u64).max(1)
        };
        let column_stats = self
            .column_stats
            .unwrap_or_else(|| default_column_stats(&self.schema, self.scale));
        assert_eq!(
            column_stats.len(),
            self.schema.num_columns(),
            "stats must cover every column"
        );

        let mut storage = None;
        let mut table_stats = Vec::with_capacity(self.schema.num_tables());
        if let Some(opts) = self.materialize {
            let mut st = Storage::new(self.schema.num_tables());
            for t in self.schema.tables() {
                let rows = scaled_rows(t).min(u64::from(opts.row_cap)) as u32;
                st.set_table(generate_table(
                    &self.schema,
                    &column_stats,
                    t.id,
                    rows,
                    opts.seed,
                ));
            }
            // Table stats reflect the materialized heap so that estimates
            // and actual execution describe the same physical database.
            for t in self.schema.tables() {
                let data = st.table(t.id).expect("just set");
                table_stats.push(TableStats {
                    rows: u64::from(data.rows),
                    pages: data.pages(),
                });
            }
            storage = Some(st);
        } else {
            for t in self.schema.tables() {
                let rows = scaled_rows(t);
                let width = u64::from(self.schema.row_width(t.id));
                table_stats.push(TableStats {
                    rows,
                    pages: (rows * width).div_ceil(PAGE_SIZE).max(1),
                });
            }
        }

        Database {
            schema: self.schema,
            table_stats,
            column_stats,
            model: AnalyticalCostModel::new(),
            storage,
            phys_cache: Mutex::new(HashMap::new()),
            whatif_cache: CostCache::new(),
            whatif_matrix: BenefitMatrix::new(),
            scale: self.scale,
        }
    }
}

/// Observability taps for one what-if lookup. The raw lookup count plus
/// the number of *distinct* `(query, config)` pairs give each recorded
/// cell its own memoizable-repeat-rate, independent of which thread
/// happened to warm the process-global [`CostCache`] first — so the
/// deterministic trace channel never sees scheduling effects.
fn record_whatif(qf: crate::cost::cache::Fingerprint, cf: crate::cost::cache::Fingerprint) {
    pipa_obs::count("whatif_lookups", 1);
    pipa_obs::count_unique("whatif_distinct", qf.to_u128() ^ cf.to_u128().rotate_left(64));
}

/// Default column statistics derived from types alone: keys (`*_id`,
/// `*key`) get NDV = rows, dates span seven years, numerics get moderate
/// NDV, short text gets low NDV. Benchmark crates provide real statistics;
/// this default keeps toy schemas convenient.
pub fn default_column_stats(schema: &Schema, scale: f64) -> Vec<ColumnStats> {
    schema
        .columns()
        .iter()
        .map(|c| {
            let rows = ((schema.table(c.table).base_rows as f64 * scale) as u64).max(1);
            let name = c.name.as_str();
            let ndv: u64 = if name.ends_with("key") || name.ends_with("_id") {
                rows
            } else {
                match c.ty {
                    DataType::Date => 2556,
                    DataType::Decimal => 10_000.min(rows),
                    DataType::Int | DataType::BigInt => 1000.min(rows),
                    DataType::Char(_) => 50.min(rows),
                    DataType::Varchar(_) => 1000.min(rows),
                }
            }
            .max(1);
            ColumnStats::uniform(c.id, c.ty, ndv, 0, ndv as i64 - 1)
        })
        .collect()
}

/// Identify the table with the most rows (used by tests and examples).
pub fn largest_table(db: &Database) -> TableId {
    db.schema()
        .tables()
        .iter()
        .max_by_key(|t| db.table_stats()[t.id.0 as usize].rows)
        .expect("nonempty schema")
        .id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query::QueryBuilder;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            "orders",
            50_000,
            &[
                ("o_orderkey", DataType::BigInt),
                ("o_custkey", DataType::Int),
                ("o_totalprice", DataType::Decimal),
            ],
        );
        s.add_table("customer", 5000, &[("c_custkey", DataType::Int)]);
        s
    }

    #[test]
    fn builder_without_data_estimates_only() {
        let db = Database::builder(schema()).scale(2.0).build();
        assert!(!db.has_data());
        assert_eq!(db.table_stats()[0].rows, 100_000);
        let q = QueryBuilder::new()
            .filter(
                db.schema(),
                Predicate::eq(db.schema().column_id("o_orderkey").unwrap(), 0.5),
            )
            .select(db.schema().column_id("o_totalprice").unwrap())
            .build(db.schema())
            .unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(
            db.schema().column_id("o_orderkey").unwrap(),
        )]);
        // actual falls back to estimated
        assert_eq!(
            db.actual_query_cost(&q, &cfg).unwrap(),
            db.estimated_query_cost(&q, &cfg)
        );
        let base = db.estimated_query_cost(&q, &IndexConfig::empty());
        let benefit = 1.0 - db.estimated_query_cost(&q, &cfg) / base;
        assert!(benefit > 0.5);
    }

    #[test]
    fn materialized_db_executes() {
        let db = Database::builder(schema()).materialize(7, 20_000).build();
        assert!(db.has_data());
        let key = db.schema().column_id("o_orderkey").unwrap();
        let q = QueryBuilder::new()
            .filter(db.schema(), Predicate::eq(key, 0.5))
            .select(db.schema().column_id("o_totalprice").unwrap())
            .build(db.schema())
            .unwrap();
        let none = db.actual_query_cost(&q, &IndexConfig::empty()).unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(key)]);
        let with = db.actual_query_cost(&q, &cfg).unwrap();
        assert!(with < none, "with={with} none={none}");
    }

    #[test]
    fn row_cap_bounds_materialization() {
        let db = Database::builder(schema())
            .scale(10.0)
            .materialize(7, 1000)
            .build();
        assert_eq!(db.table_stats()[0].rows, 1000);
    }

    #[test]
    fn phys_cache_reuses_indexes() {
        let db = Database::builder(schema()).materialize(7, 5000).build();
        let key = db.schema().column_id("o_custkey").unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(key)]);
        let q = QueryBuilder::new()
            .filter(db.schema(), Predicate::eq(key, 0.5))
            .select(key)
            .build(db.schema())
            .unwrap();
        let a = db.actual_query_cost(&q, &cfg).unwrap();
        let b = db.actual_query_cost(&q, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(db.phys_cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn default_stats_treat_keys_as_unique() {
        let s = schema();
        let stats = default_column_stats(&s, 1.0);
        let key = s.column_id("o_orderkey").unwrap();
        assert_eq!(stats[key.0 as usize].ndv, 50_000);
    }

    #[test]
    fn render_sql_uses_stats() {
        let db = Database::builder(schema()).build();
        let key = db.schema().column_id("o_custkey").unwrap();
        let q = QueryBuilder::new()
            .filter(db.schema(), Predicate::eq(key, 0.0))
            .select(key)
            .build(db.schema())
            .unwrap();
        assert_eq!(
            db.render_sql(&q),
            "select o_custkey from orders where o_custkey = 0;"
        );
    }

    #[test]
    fn explain_reports_the_chosen_path() {
        let db = Database::builder(schema()).build();
        let key = db.schema().column_id("o_orderkey").unwrap();
        let q = QueryBuilder::new()
            .filter(db.schema(), Predicate::eq(key, 0.5))
            .select(db.schema().column_id("o_totalprice").unwrap())
            .build(db.schema())
            .unwrap();
        let none = db.explain(&q, &IndexConfig::empty());
        assert!(none.contains("seq scan"), "{none}");
        let cfg = IndexConfig::from_indexes([Index::single(key)]);
        let with = db.explain(&q, &cfg);
        assert!(with.contains("idx_orders_o_orderkey"), "{with}");
        assert!(with.contains("index"), "{with}");
    }

    #[test]
    fn largest_table_is_orders() {
        let db = Database::builder(schema()).build();
        assert_eq!(largest_table(&db), TableId(0));
    }
}
