//! Error type shared across the simulator.

use std::fmt;

/// Errors raised by the database substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A table name did not resolve against the schema.
    UnknownTable(String),
    /// A column name did not resolve against the schema.
    UnknownColumn(String),
    /// A query referenced a column of a table that is not in its FROM list.
    ColumnNotInScope(String),
    /// An index definition is invalid (empty, duplicate columns, or columns
    /// from more than one table).
    InvalidIndex(String),
    /// A query is structurally invalid (no tables, disconnected joins, ...).
    InvalidQuery(String),
    /// The executor was asked to run against a database without
    /// materialized data.
    NoData,
    /// Parsing rendered SQL back into the AST failed.
    Parse(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SimError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SimError::ColumnNotInScope(c) => write!(f, "column not in scope: {c}"),
            SimError::InvalidIndex(m) => write!(f, "invalid index: {m}"),
            SimError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            SimError::NoData => write!(f, "database has no materialized data"),
            SimError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;
