//! Error type shared across the simulator.

use std::fmt;

/// Errors raised by the database substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A table name did not resolve against the schema.
    UnknownTable(String),
    /// A column name did not resolve against the schema.
    UnknownColumn(String),
    /// A query referenced a column of a table that is not in its FROM list.
    ColumnNotInScope(String),
    /// An index definition is invalid (empty, duplicate columns, or columns
    /// from more than one table).
    InvalidIndex(String),
    /// A query is structurally invalid (no tables, disconnected joins, ...).
    InvalidQuery(String),
    /// The executor was asked to run against a database without
    /// materialized data.
    NoData,
    /// Storage is present but a table's data is missing (incomplete
    /// materialization).
    MissingData(String),
    /// A shared lock was poisoned by a panicking thread; the named
    /// structure can no longer be trusted.
    Poisoned(&'static str),
    /// An internal invariant of the executor or cost machinery was
    /// violated (a bug, surfaced as an error instead of a panic so the
    /// experiment harness can report it).
    Internal(&'static str),
    /// Parsing rendered SQL back into the AST failed.
    Parse(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            SimError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SimError::ColumnNotInScope(c) => write!(f, "column not in scope: {c}"),
            SimError::InvalidIndex(m) => write!(f, "invalid index: {m}"),
            SimError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            SimError::NoData => write!(f, "database has no materialized data"),
            SimError::MissingData(t) => write!(f, "no materialized data for table: {t}"),
            SimError::Poisoned(what) => write!(f, "poisoned lock: {what}"),
            SimError::Internal(m) => write!(f, "internal invariant violated: {m}"),
            SimError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias used throughout the simulator.
pub type SimResult<T> = Result<T, SimError>;
