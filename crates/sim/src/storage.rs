//! Column-major row store over synthetic data, plus physical B+-tree
//! indexes, with page-layout accounting for the executor.
//!
//! Values are stored as *domain positions* (`i64`); [`crate::value`] maps
//! them to typed literals when rendering. Rows live in heap order: row `r`
//! of a table occupies page `r / rows_per_page`.

use crate::cost::PAGE_SIZE;
use crate::index::Index;
use crate::schema::{ColumnId, Schema, TableId};
use std::collections::BTreeMap;

/// Materialized data for one table (column-major positions).
#[derive(Debug, Clone)]
pub struct TableData {
    /// Owning table.
    pub table: TableId,
    /// One vector of domain positions per column, in schema column order.
    pub columns: Vec<Vec<i64>>,
    /// Number of rows.
    pub rows: u32,
    /// Rows per heap page (from the schema's row width).
    pub rows_per_page: u32,
}

impl TableData {
    /// Heap pages occupied.
    pub fn pages(&self) -> u64 {
        u64::from(self.rows)
            .div_ceil(u64::from(self.rows_per_page))
            .max(1)
    }

    /// The heap page of a row.
    pub fn page_of(&self, row: u32) -> u32 {
        row / self.rows_per_page
    }

    /// Positions of one column (by within-table ordinal).
    pub fn column(&self, ordinal: usize) -> &[i64] {
        &self.columns[ordinal]
    }
}

/// A physical B+-tree index: composite key positions → row ids.
#[derive(Debug, Clone)]
pub struct PhysicalIndex {
    /// Logical definition.
    pub def: Index,
    /// Sorted map from composite key to matching rows.
    pub map: BTreeMap<Vec<i64>, Vec<u32>>,
    /// Entries per simulated leaf page.
    pub entries_per_leaf: u32,
    /// Tree height (levels above leaves), for descent accounting.
    pub height: u32,
}

impl PhysicalIndex {
    /// Build an index over materialized table data.
    pub fn build(schema: &Schema, data: &TableData, def: Index) -> Self {
        let table = schema.table(data.table);
        let ordinals: Vec<usize> = def
            .columns
            .iter()
            .map(|c| {
                table
                    .columns
                    .iter()
                    .position(|tc| tc == c)
                    .expect("index column belongs to table")
            })
            .collect();
        let mut map: BTreeMap<Vec<i64>, Vec<u32>> = BTreeMap::new();
        for row in 0..data.rows {
            let key: Vec<i64> = ordinals
                .iter()
                .map(|&o| data.columns[o][row as usize])
                .collect();
            map.entry(key).or_default().push(row);
        }
        let key_width: u32 = def
            .columns
            .iter()
            .map(|&c| schema.column(c).ty.width())
            .sum::<u32>()
            + 12;
        let entries_per_leaf = (PAGE_SIZE as u32 / key_width).max(1);
        let leaves = u64::from(data.rows)
            .div_ceil(u64::from(entries_per_leaf))
            .max(1);
        let mut height = 1u32;
        let mut pages = leaves;
        while pages > 1 {
            pages = pages.div_ceil(200);
            height += 1;
        }
        PhysicalIndex {
            def,
            map,
            entries_per_leaf,
            height,
        }
    }

    /// Row ids whose leading key falls in `[lo, hi]` (both inclusive,
    /// `None` = unbounded), along with the number of index entries touched.
    pub fn range_leading(&self, lo: Option<i64>, hi: Option<i64>) -> (Vec<u32>, u64) {
        let mut rows = Vec::new();
        let mut entries = 0u64;
        let lo_key = lo.map(|v| vec![v]).unwrap_or_default();
        for (key, ids) in self.map.range(lo_key..) {
            if let Some(hi) = hi {
                if key[0] > hi {
                    break;
                }
            }
            entries += ids.len() as u64;
            rows.extend_from_slice(ids);
        }
        (rows, entries)
    }

    /// Rows with exact leading key `v`.
    pub fn lookup_leading(&self, v: i64) -> (Vec<u32>, u64) {
        self.range_leading(Some(v), Some(v))
    }

    /// Simulated leaf pages for `entries` consecutive entries.
    pub fn leaf_pages_for(&self, entries: u64) -> u64 {
        entries.div_ceil(u64::from(self.entries_per_leaf)).max(1)
    }
}

/// All materialized tables plus any built physical indexes.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    tables: Vec<Option<TableData>>,
}

impl Storage {
    /// Storage prepared for `num_tables` tables (initially empty).
    pub fn new(num_tables: usize) -> Self {
        Storage {
            tables: vec![None; num_tables],
        }
    }

    /// Install data for a table.
    pub fn set_table(&mut self, data: TableData) {
        let slot = data.table.0 as usize;
        self.tables[slot] = Some(data);
    }

    /// Data of a table, if materialized.
    pub fn table(&self, t: TableId) -> Option<&TableData> {
        self.tables.get(t.0 as usize).and_then(|o| o.as_ref())
    }

    /// Whether every table is materialized.
    pub fn is_complete(&self) -> bool {
        self.tables.iter().all(|t| t.is_some())
    }

    /// Ordinal of a column within its table.
    pub fn ordinal(schema: &Schema, col: ColumnId) -> usize {
        let t = schema.table_of(col);
        schema
            .columns_of(t)
            .iter()
            .position(|&c| c == col)
            .expect("column belongs to its table")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn toy() -> (Schema, TableData) {
        let mut s = Schema::new();
        s.add_table("t", 8, &[("a", DataType::Int), ("b", DataType::Int)]);
        let data = TableData {
            table: TableId(0),
            columns: vec![vec![3, 1, 4, 1, 5, 9, 2, 6], vec![0, 1, 2, 3, 4, 5, 6, 7]],
            rows: 8,
            rows_per_page: 3,
        };
        (s, data)
    }

    #[test]
    fn page_accounting() {
        let (_, d) = toy();
        assert_eq!(d.pages(), 3);
        assert_eq!(d.page_of(0), 0);
        assert_eq!(d.page_of(5), 1);
        assert_eq!(d.page_of(7), 2);
    }

    #[test]
    fn index_build_and_lookup() {
        let (s, d) = toy();
        let idx = PhysicalIndex::build(&s, &d, Index::single(ColumnId(0)));
        let (rows, entries) = idx.lookup_leading(1);
        assert_eq!(entries, 2);
        let mut rows = rows;
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 3]);
    }

    #[test]
    fn index_range_scan() {
        let (s, d) = toy();
        let idx = PhysicalIndex::build(&s, &d, Index::single(ColumnId(0)));
        let (rows, entries) = idx.range_leading(Some(4), Some(9));
        assert_eq!(entries, 4); // 4,5,6,9
        assert_eq!(rows.len(), 4);
        let (all, n) = idx.range_leading(None, None);
        assert_eq!(all.len(), 8);
        assert_eq!(n, 8);
    }

    #[test]
    fn composite_index_keys() {
        let (s, d) = toy();
        let idx = PhysicalIndex::build(
            &s,
            &d,
            Index::multi(&s, vec![ColumnId(0), ColumnId(1)]).unwrap(),
        );
        // Both rows with a=1 exist but have distinct b → distinct keys.
        assert_eq!(idx.map.len(), 8);
        let (rows, _) = idx.lookup_leading(1);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn storage_lookup() {
        let (s, d) = toy();
        let mut st = Storage::new(s.num_tables());
        assert!(!st.is_complete());
        st.set_table(d);
        assert!(st.is_complete());
        assert!(st.table(TableId(0)).is_some());
        assert_eq!(Storage::ordinal(&s, ColumnId(1)), 1);
    }
}
