//! Literal values and the normalized domain-position representation.
//!
//! Selectivity math operates on *domain fractions*: every column's value
//! domain is mapped onto `[0, 1)`, and a predicate records the fraction(s)
//! it touches. Rendering a fraction back into a SQL literal is delegated to
//! the column's statistics (which know the min/max and type).

use crate::schema::DataType;
use std::cmp::Ordering;
use std::fmt;

/// A SQL literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer literal (also used for BIGINT).
    Int(i64),
    /// Decimal literal.
    Float(f64),
    /// Character literal.
    Str(String),
    /// Date literal, stored as days since 1990-01-01.
    Date(i32),
}

impl Value {
    /// Total order consistent with SQL comparison semantics within a type.
    /// Cross-type comparisons order by discriminant (never produced by
    /// well-formed queries; kept total for container use).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => discriminant_rank(a).cmp(&discriminant_rank(b)),
        }
    }

    /// Render as a SQL literal.
    pub fn render_sql(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v:.2}"),
            Value::Str(s) => format!("'{s}'"),
            Value::Date(d) => format!("'{}'", render_date(*d)),
        }
    }
}

fn discriminant_rank(v: &Value) -> u8 {
    match v {
        Value::Int(_) => 0,
        Value::Float(_) => 1,
        Value::Str(_) => 2,
        Value::Date(_) => 3,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_sql())
    }
}

/// Days-since-1990-01-01 to `YYYY-MM-DD` (proleptic Gregorian).
pub fn render_date(days: i32) -> String {
    // Simple civil-date conversion anchored at 1990-01-01.
    let mut y = 1990i32;
    let mut d = days;
    loop {
        let len = if is_leap(y) { 366 } else { 365 };
        if d >= len {
            d -= len;
            y += 1;
        } else if d < 0 {
            y -= 1;
            d += if is_leap(y) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let ml = month_lengths(y);
    let mut m = 0usize;
    while d >= ml[m] {
        d -= ml[m];
        m += 1;
    }
    format!("{y:04}-{:02}-{:02}", m + 1, d + 1)
}

/// Parse `YYYY-MM-DD` back to days since 1990-01-01.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut it = s.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: usize = it.next()?.parse().ok()?;
    let d: i32 = it.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || it.next().is_some() {
        return None;
    }
    let mut days = 0i32;
    if y >= 1990 {
        for yy in 1990..y {
            days += if is_leap(yy) { 366 } else { 365 };
        }
    } else {
        for yy in y..1990 {
            days -= if is_leap(yy) { 366 } else { 365 };
        }
    }
    let ml = month_lengths(y);
    if d < 1 || d > ml[m - 1] {
        return None;
    }
    days += ml[..m - 1].iter().sum::<i32>();
    Some(days + d - 1)
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn month_lengths(y: i32) -> [i32; 12] {
    [
        31,
        if is_leap(y) { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ]
}

/// Map a domain fraction in `[0,1]` to a literal for a column with the given
/// type and integer domain `[min, max]` (the statistics keep all domains as
/// integer positions; strings are synthesized deterministically from the
/// position so that code order equals lexicographic order).
pub fn fraction_to_value(ty: DataType, min: i64, max: i64, frac: f64) -> Value {
    let span = (max - min).max(0) as f64;
    let pos = min + (frac.clamp(0.0, 1.0) * span).round() as i64;
    position_to_value(ty, pos)
}

/// Map an integer domain position to a literal of the right type.
pub fn position_to_value(ty: DataType, pos: i64) -> Value {
    match ty {
        DataType::Int | DataType::BigInt => Value::Int(pos),
        DataType::Decimal => Value::Float(pos as f64 / 100.0),
        DataType::Date => Value::Date(pos as i32),
        DataType::Char(_) | DataType::Varchar(_) => Value::Str(synth_string(pos)),
    }
}

/// Inverse of [`position_to_value`] as far as possible.
pub fn value_to_position(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Float(f) => Some((f * 100.0).round() as i64),
        Value::Date(d) => Some(i64::from(*d)),
        Value::Str(s) => parse_synth_string(s),
    }
}

/// Deterministic synthetic string for an integer position. Uses a base-26
/// big-endian encoding padded to 8 letters so lexicographic order equals
/// numeric order for non-negative positions.
pub fn synth_string(pos: i64) -> String {
    let mut p = pos.max(0) as u64;
    let mut buf = [b'a'; 8];
    for slot in buf.iter_mut().rev() {
        *slot = b'a' + (p % 26) as u8;
        p /= 26;
    }
    String::from_utf8(buf.to_vec()).expect("ascii")
}

/// Decode a synthetic string back to its position.
pub fn parse_synth_string(s: &str) -> Option<i64> {
    if s.len() != 8 || !s.bytes().all(|b| b.is_ascii_lowercase()) {
        return None;
    }
    let mut p: i64 = 0;
    for b in s.bytes() {
        p = p * 26 + i64::from(b - b'a');
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip() {
        for d in [-400, -1, 0, 1, 58, 365, 366, 730, 10_000] {
            let s = render_date(d);
            assert_eq!(parse_date(&s), Some(d), "date {d} rendered {s}");
        }
        assert_eq!(render_date(0), "1990-01-01");
        assert_eq!(render_date(31), "1990-02-01");
    }

    #[test]
    fn parse_date_rejects_garbage() {
        assert_eq!(parse_date("1990-13-01"), None);
        assert_eq!(parse_date("1990-02-30"), None);
        assert_eq!(parse_date("hello"), None);
    }

    #[test]
    fn synth_string_order_matches_numeric_order() {
        let mut prev = synth_string(0);
        for p in 1..500 {
            let cur = synth_string(p);
            assert!(cur > prev, "strings must be lexicographically increasing");
            assert_eq!(parse_synth_string(&cur), Some(p));
            prev = cur;
        }
    }

    #[test]
    fn fraction_mapping_hits_extremes() {
        let v0 = fraction_to_value(DataType::Int, 10, 20, 0.0);
        let v1 = fraction_to_value(DataType::Int, 10, 20, 1.0);
        assert_eq!(v0, Value::Int(10));
        assert_eq!(v1, Value::Int(20));
    }

    #[test]
    fn position_roundtrip_all_types() {
        for ty in [
            DataType::Int,
            DataType::BigInt,
            DataType::Decimal,
            DataType::Date,
            DataType::Varchar(12),
        ] {
            let v = position_to_value(ty, 1234);
            assert_eq!(value_to_position(&v), Some(1234), "{ty:?}");
        }
    }

    #[test]
    fn total_cmp_is_total() {
        let vals = [
            Value::Int(1),
            Value::Float(0.5),
            Value::Str("abc".into()),
            Value::Date(10),
        ];
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn render_sql_quotes_text() {
        assert_eq!(Value::Str("x".into()).render_sql(), "'x'");
        assert_eq!(Value::Int(7).render_sql(), "7");
        assert_eq!(Value::Date(0).render_sql(), "'1990-01-01'");
    }
}
