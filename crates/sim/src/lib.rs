//! # pipa-sim — analytic database substrate for the PIPA reproduction
//!
//! This crate replaces the PostgreSQL 12.5 instance used by the original
//! PIPA paper (SIGMOD 2024). It provides everything the index advisors and
//! the stress-test framework need from a database:
//!
//! * a [`schema::Schema`] describing tables, columns, and foreign keys;
//! * per-column [`stats::ColumnStats`] (cardinality, NDV, value range,
//!   null fraction, width, correlation, equi-depth histogram);
//! * a [`query::Query`] AST for analytic SQL (joins, sargable filters,
//!   aggregates, ordering) with SQL rendering;
//! * [`index::Index`] definitions (single- and multi-column) with storage
//!   estimation and a budgeted [`index::IndexConfig`];
//! * a PostgreSQL-style analytical [`cost`] model with hypothetical-index
//!   ("what-if") evaluation;
//! * a row-store [`exec`] executor over synthetic data that counts simulated
//!   page accesses, giving "actual" execution costs that are independent of
//!   the analytical estimates;
//! * a [`db::Database`] facade tying it all together and a [`workload`]
//!   abstraction (queries with frequencies).
//!
//! All randomness is seeded (`rand_chacha`) so experiments are reproducible
//! run-to-run.

#![warn(missing_docs)]

pub mod cost;
pub mod datagen;
pub mod db;
pub mod error;
pub mod exec;
pub mod index;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod stats;
pub mod storage;
pub mod value;
pub mod workload;

pub use cost::{
    AnalyticalCostModel, BenefitMatrix, CacheStats, ConfigDelta, CostCache, CostModel, CostParams,
    IncrementalEval, MatrixStats, WhatIf,
};
pub use db::{Database, DatabaseBuilder};
pub use error::{SimError, SimResult};
pub use index::{Index, IndexConfig};
pub use predicate::{PredOp, Predicate};
pub use query::{Aggregate, JoinEdge, Query, QueryBuilder};
pub use schema::{Column, ColumnId, DataType, ForeignKey, Schema, Table, TableId};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use value::Value;
pub use workload::{Workload, WorkloadQuery};
