//! Column- and table-level statistics used by the cost model, the data
//! generator, and predicate selectivity estimation.
//!
//! Every column's value domain is normalized to integer *positions* in
//! `[min, max]`; [`crate::value`] maps positions to typed literals. An
//! optional equi-depth histogram refines range selectivities for skewed
//! columns.

use crate::schema::{ColumnId, DataType};

/// Equi-depth histogram over a column's domain positions. `bounds` holds
/// `n+1` ascending positions delimiting `n` buckets, each containing an
/// equal share of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket boundaries (length = buckets + 1).
    pub bounds: Vec<i64>,
}

impl Histogram {
    /// Build an equi-depth histogram from a *sorted* sample of positions.
    /// Returns `None` for empty samples.
    pub fn from_sorted_sample(sample: &[i64], buckets: usize) -> Option<Self> {
        if sample.is_empty() || buckets == 0 {
            return None;
        }
        let mut bounds = Vec::with_capacity(buckets + 1);
        for b in 0..=buckets {
            let idx = (b * (sample.len() - 1)) / buckets;
            bounds.push(sample[idx]);
        }
        // Keep bounds non-decreasing (duplicates collapse naturally).
        Some(Histogram { bounds })
    }

    /// Build an equi-depth histogram analytically from a cumulative
    /// distribution function over the domain `[min, max]`, without
    /// materializing any rows — this is how SF-100 statistics are
    /// synthesized (a million-row sort is replaced by `buckets` CDF
    /// inversions). `cdf` maps a position to the fraction of rows at or
    /// below it and must be non-decreasing with `cdf(min) ≈ 0` and
    /// `cdf(max) ≈ 1`; each bucket boundary is found by binary-searching
    /// the position whose CDF first reaches `b / buckets`.
    pub fn from_cdf(min: i64, max: i64, buckets: usize, cdf: impl Fn(i64) -> f64) -> Option<Self> {
        if buckets == 0 || max < min {
            return None;
        }
        let mut bounds = Vec::with_capacity(buckets + 1);
        bounds.push(min);
        for b in 1..buckets {
            let target = b as f64 / buckets as f64;
            let mut lo = min;
            let mut hi = max;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if cdf(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            // Keep bounds non-decreasing even for a misbehaved cdf.
            bounds.push(lo.max(*bounds.last().expect("nonempty")));
        }
        bounds.push(max.max(*bounds.last().expect("nonempty")));
        Some(Histogram { bounds })
    }

    /// Fraction of rows with position strictly below `pos`.
    pub fn fraction_below(&self, pos: i64) -> f64 {
        let n = self.bounds.len() - 1;
        if n == 0 {
            return 0.0;
        }
        if pos <= self.bounds[0] {
            return 0.0;
        }
        if pos >= *self.bounds.last().expect("nonempty") {
            return 1.0;
        }
        // Find the bucket containing pos.
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.bounds[mid + 1] <= pos {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let b_lo = self.bounds[lo];
        let b_hi = self.bounds[lo + 1];
        let within = if b_hi > b_lo {
            (pos - b_lo) as f64 / (b_hi - b_lo) as f64
        } else {
            0.0
        };
        (lo as f64 + within) / n as f64
    }

    /// Fraction of rows in `[lo, hi]` (inclusive-ish; continuous model).
    pub fn fraction_between(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.fraction_below(hi) - self.fraction_below(lo)).max(0.0)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Column this belongs to.
    pub col: ColumnId,
    /// Declared type (duplicated from the schema for convenience).
    pub ty: DataType,
    /// Number of distinct values.
    pub ndv: u64,
    /// Minimum domain position.
    pub min: i64,
    /// Maximum domain position.
    pub max: i64,
    /// Fraction of NULLs.
    pub null_frac: f64,
    /// Physical-order correlation in `[-1, 1]`; 1.0 means the heap is
    /// sorted by this column (cheap range index scans), 0 means random.
    pub correlation: f64,
    /// Optional equi-depth histogram (uniform assumed when absent).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Uniform statistics over `[min, max]` with the given NDV.
    pub fn uniform(col: ColumnId, ty: DataType, ndv: u64, min: i64, max: i64) -> Self {
        ColumnStats {
            col,
            ty,
            ndv: ndv.max(1),
            min,
            max: max.max(min),
            null_frac: 0.0,
            correlation: 0.0,
            histogram: None,
        }
    }

    /// Skewed statistics over `[min, max]`: row mass concentrates toward
    /// low positions following `CDF(x) = x̂^(1/(1+skew))` (with `x̂` the
    /// domain fraction), synthesized analytically via
    /// [`Histogram::from_cdf`] — `skew = 0` degenerates to uniform,
    /// larger values pack more of the table into the head of the domain
    /// (hot-column shape at SF 100 without materializing a single row).
    pub fn skewed(
        col: ColumnId,
        ty: DataType,
        ndv: u64,
        min: i64,
        max: i64,
        skew: f64,
        buckets: usize,
    ) -> Self {
        let mut s = Self::uniform(col, ty, ndv, min, max);
        let span = (s.max - s.min).max(1) as f64;
        let exp = 1.0 / (1.0 + skew.max(0.0));
        s.histogram = Histogram::from_cdf(s.min, s.max, buckets, |pos| {
            (((pos - s.min) as f64 / span).clamp(0.0, 1.0)).powf(exp)
        });
        s
    }

    /// Selectivity of `col = literal-at-position`.
    pub fn eq_selectivity(&self) -> f64 {
        (1.0 - self.null_frac) / self.ndv as f64
    }

    /// Selectivity of `lo <= col <= hi` given domain positions.
    pub fn range_selectivity(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        let sel = if let Some(h) = &self.histogram {
            h.fraction_between(lo, hi)
        } else {
            let span = (self.max - self.min) as f64;
            if span <= 0.0 {
                1.0
            } else {
                let lo = lo.clamp(self.min, self.max);
                let hi = hi.clamp(self.min, self.max);
                ((hi - lo) as f64 + 1.0) / (span + 1.0)
            }
        };
        (sel * (1.0 - self.null_frac)).clamp(0.0, 1.0)
    }

    /// Position corresponding to a domain fraction in `[0,1]`.
    pub fn position_at(&self, frac: f64) -> i64 {
        let span = (self.max - self.min).max(0) as f64;
        self.min + (frac.clamp(0.0, 1.0) * span).round() as i64
    }

    /// Fraction corresponding to a position (inverse of [`Self::position_at`]).
    pub fn fraction_of(&self, pos: i64) -> f64 {
        let span = (self.max - self.min).max(0) as f64;
        if span == 0.0 {
            0.0
        } else {
            ((pos - self.min) as f64 / span).clamp(0.0, 1.0)
        }
    }
}

/// Table-level statistics.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count after applying the scale factor.
    pub rows: u64,
    /// Heap pages (derived from row width and [`crate::cost::PAGE_SIZE`]).
    pub pages: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ColumnStats {
        ColumnStats::uniform(ColumnId(0), DataType::Int, 100, 0, 999)
    }

    #[test]
    fn eq_selectivity_is_one_over_ndv() {
        let s = stats();
        assert!((s.eq_selectivity() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn eq_selectivity_accounts_for_nulls() {
        let mut s = stats();
        s.null_frac = 0.5;
        assert!((s.eq_selectivity() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_uniform() {
        let s = stats();
        let sel = s.range_selectivity(0, 499);
        assert!((sel - 0.5).abs() < 0.01, "sel={sel}");
        assert_eq!(s.range_selectivity(10, 5), 0.0);
        assert!((s.range_selectivity(0, 999) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn range_clamps_out_of_domain() {
        let s = stats();
        assert!((s.range_selectivity(-100, 2000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn position_fraction_roundtrip() {
        let s = stats();
        for f in [0.0, 0.25, 0.5, 1.0] {
            let p = s.position_at(f);
            assert!((s.fraction_of(p) - f).abs() < 0.01);
        }
    }

    #[test]
    fn histogram_refines_skew() {
        // Sample heavily skewed toward low positions.
        let mut sample: Vec<i64> = (0..900).map(|i| i % 100).collect();
        sample.extend(900..1000);
        sample.sort_unstable();
        let h = Histogram::from_sorted_sample(&sample, 10).expect("hist");
        // ~90% of the mass is below 100.
        let f = h.fraction_below(100);
        assert!(f > 0.8, "fraction_below(100) = {f}");
        let mut s = stats();
        s.histogram = Some(h);
        assert!(s.range_selectivity(0, 99) > 0.8);
    }

    #[test]
    fn histogram_edge_cases() {
        let h = Histogram::from_sorted_sample(&[5, 5, 5, 5], 4).expect("hist");
        assert_eq!(h.fraction_below(4), 0.0);
        assert_eq!(h.fraction_below(6), 1.0);
        assert!(Histogram::from_sorted_sample(&[], 4).is_none());
    }

    #[test]
    fn histogram_fraction_monotone() {
        let sample: Vec<i64> = (0..1000).map(|i| (i * i) % 997).collect();
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        let h = Histogram::from_sorted_sample(&sorted, 16).expect("hist");
        let mut prev = -1.0;
        for pos in (0..1000).step_by(37) {
            let f = h.fraction_below(pos);
            assert!(f >= prev - 1e-12, "monotone at {pos}");
            prev = f;
        }
    }

    #[test]
    fn from_cdf_matches_uniform_and_refuses_nonsense() {
        let h = Histogram::from_cdf(0, 1000, 10, |p| p as f64 / 1000.0).expect("hist");
        assert_eq!(h.bounds.len(), 11);
        assert_eq!(h.bounds[0], 0);
        assert_eq!(*h.bounds.last().unwrap(), 1000);
        // Uniform CDF → (roughly) evenly spaced bucket boundaries.
        assert!((h.fraction_below(500) - 0.5).abs() < 0.01);
        assert!(Histogram::from_cdf(0, 100, 0, |_| 0.0).is_none());
        assert!(Histogram::from_cdf(100, 0, 4, |_| 0.0).is_none());
    }

    #[test]
    fn skewed_stats_concentrate_mass_in_the_head() {
        let s = ColumnStats::skewed(ColumnId(0), DataType::Int, 1000, 0, 999_999, 3.0, 64);
        // With skew 3, CDF(x̂) = x̂^0.25: the first 10% of the domain
        // holds 0.1^0.25 ≈ 56% of the rows.
        let head = s.range_selectivity(0, 99_999);
        assert!(head > 0.5, "head selectivity {head}");
        let tail = s.range_selectivity(900_000, 999_999);
        assert!(tail < 0.05, "tail selectivity {tail}");
        // skew = 0 degenerates to (near) uniform.
        let u = ColumnStats::skewed(ColumnId(0), DataType::Int, 1000, 0, 999_999, 0.0, 64);
        let mid = u.range_selectivity(0, 499_999);
        assert!((mid - 0.5).abs() < 0.02, "uniform mid {mid}");
        // Monotone CDF regardless of skew.
        let h = s.histogram.as_ref().expect("hist");
        for pair in h.bounds.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn degenerate_domain() {
        let s = ColumnStats::uniform(ColumnId(0), DataType::Int, 1, 7, 7);
        assert_eq!(s.position_at(0.7), 7);
        assert_eq!(s.fraction_of(7), 0.0);
        assert!((s.range_selectivity(7, 7) - 1.0).abs() < 1e-9);
    }
}
