//! Cost estimation: PostgreSQL-style analytical model plus the what-if
//! (hypothetical index) interface every index advisor consumes.
//!
//! The advisors in `pipa-ia` and the PIPA framework in `pipa-core` never
//! look inside this module; they only call [`CostModel::query_cost`] /
//! [`WhatIf`] helpers, exactly as the paper's components only issue
//! `c(W, d, I)` requests to PostgreSQL's hypothetical-index extension.

pub mod cache;
pub mod matrix;
pub(crate) mod model;

pub use cache::{CacheStats, CostCache};
pub use matrix::{BenefitMatrix, ConfigDelta, IncrementalEval, MatrixStats};
pub use model::AnalyticalCostModel;

use crate::index::IndexConfig;
use crate::query::Query;
use crate::schema::{ColumnId, Schema, TableId};
use crate::stats::{ColumnStats, TableStats};
use crate::workload::Workload;

/// Simulated page size in bytes (PostgreSQL default).
pub const PAGE_SIZE: u64 = 8192;

/// Optimizer cost constants (PostgreSQL defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of a sequentially fetched page.
    pub seq_page_cost: f64,
    /// Cost of a randomly fetched page.
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of evaluating one operator.
    pub cpu_operator_cost: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            // 2.5 rather than PostgreSQL's spinning-disk 4.0: the paper's
            // testbed (and every modern deployment) runs on SSDs, and
            // index-scan viability at moderate selectivities is central
            // to the experiments.
            random_page_cost: 2.5,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
        }
    }
}

/// Read-only catalog view handed to cost models: schema plus statistics.
/// [`crate::db::Database`] constructs this; keeping it a plain struct
/// avoids a dependency cycle between `cost` and `db`.
#[derive(Clone, Copy)]
pub struct Catalog<'a> {
    /// The relational schema.
    pub schema: &'a Schema,
    /// Per-table statistics, indexed by `TableId.0`.
    pub table_stats: &'a [TableStats],
    /// Per-column statistics, indexed by `ColumnId.0`.
    pub column_stats: &'a [ColumnStats],
}

impl<'a> Catalog<'a> {
    /// Table statistics lookup.
    pub fn table(&self, t: TableId) -> &'a TableStats {
        &self.table_stats[t.0 as usize]
    }

    /// Column statistics lookup.
    pub fn column(&self, c: ColumnId) -> &'a ColumnStats {
        &self.column_stats[c.0 as usize]
    }
}

/// A cost model maps `(query, index configuration)` to an abstract cost.
/// Lower is better. Units are PostgreSQL-style "page fetch equivalents".
pub trait CostModel {
    /// Estimated cost of one query under a (possibly hypothetical) index
    /// configuration.
    fn query_cost(&self, cat: Catalog<'_>, query: &Query, config: &IndexConfig) -> f64;

    /// Frequency-weighted cost of a workload.
    fn workload_cost(&self, cat: Catalog<'_>, workload: &Workload, config: &IndexConfig) -> f64 {
        workload
            .iter()
            .map(|wq| wq.frequency as f64 * self.query_cost(cat, &wq.query, config))
            .sum()
    }
}

/// Convenience helpers over a [`CostModel`]: the what-if interface.
pub struct WhatIf<'a, M: CostModel> {
    cat: Catalog<'a>,
    model: &'a M,
}

impl<'a, M: CostModel> WhatIf<'a, M> {
    /// Wrap a model and catalog.
    pub fn new(cat: Catalog<'a>, model: &'a M) -> Self {
        WhatIf { cat, model }
    }

    /// `c(q, d, I)`.
    pub fn query_cost(&self, q: &Query, cfg: &IndexConfig) -> f64 {
        self.model.query_cost(self.cat, q, cfg)
    }

    /// `c(W, d, I)`.
    pub fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        self.model.workload_cost(self.cat, w, cfg)
    }

    /// Relative cost reduction of `cfg` over the empty configuration for a
    /// query: `1 - c(q,d,I)/c(q,d,∅)`. This is the reward most learned IAs
    /// optimize (paper Eq. 7 numerator).
    pub fn query_benefit(&self, q: &Query, cfg: &IndexConfig) -> f64 {
        let base = self.query_cost(q, &IndexConfig::empty());
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.query_cost(q, cfg) / base
    }

    /// Relative cost reduction for a whole workload.
    pub fn workload_benefit(&self, w: &Workload, cfg: &IndexConfig) -> f64 {
        let base = self.workload_cost(w, &IndexConfig::empty());
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.workload_cost(w, cfg) / base
    }

    /// Among `candidates`, the single index with the lowest query cost
    /// (ties: first). Returns `None` for an empty candidate list.
    pub fn best_single_index(
        &self,
        q: &Query,
        candidates: &[crate::index::Index],
    ) -> Option<crate::index::Index> {
        candidates
            .iter()
            .map(|i| {
                let cfg = IndexConfig::from_indexes([i.clone()]);
                (self.query_cost(q, &cfg), i)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, i)| i.clone())
    }
}
