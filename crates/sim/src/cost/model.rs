//! The analytical cost model: access-path selection per table, greedy
//! left-deep join ordering, and aggregation/sort surcharges.
//!
//! The model follows PostgreSQL's shape without its full complexity:
//!
//! * **Seq scan** — `seq_page_cost · pages + cpu` over all rows;
//! * **Index scan** — B+-tree descent + leaf traversal + correlation-
//!   interpolated heap fetches over the matched selectivity;
//! * **Index-only scan** — as above but heap fetches mostly elided when
//!   the index covers every referenced column of the table;
//! * **Joins** — greedy left-deep order by filtered cardinality; each join
//!   costed as the cheaper of a hash join and an index nested-loop join
//!   (the latter only when the inner table has an index whose leading
//!   column is the join key).
//!
//! What matters for reproducing the paper is *ordinal fidelity*: a good
//! index must beat a bad one, a covering index must beat a partial one, and
//! index benefit must scale with selectivity. The tests pin those
//! properties down.

use super::{Catalog, CostModel, CostParams};
use crate::index::{Index, IndexConfig};
use crate::predicate::Predicate;
use crate::query::Query;
use crate::schema::{ColumnId, TableId};

/// Fraction of heap fetches an index-only scan still pays (visibility map
/// misses).
const INDEX_ONLY_HEAP_FRACTION: f64 = 0.05;

/// Config-independent access data for one table of a query: the
/// predicates that land on it, the columns it must produce (for
/// index-only detection), the sequential-scan baseline, and the filtered
/// output cardinality.
///
/// Both the scalar path ([`AnalyticalCostModel::query_cost`]) and the
/// incremental benefit matrix ([`super::matrix::BenefitMatrix`]) derive
/// per-index access costs from this same struct via
/// [`AnalyticalCostModel::index_access_cost`], which is what makes the
/// two paths bit-identical: they execute the same float operations on
/// the same inputs.
#[derive(Debug, Clone)]
pub(crate) struct TableAccess<'q> {
    /// The table.
    pub table: TableId,
    /// Predicates of the query that filter this table.
    pub preds: Vec<&'q Predicate>,
    /// Referenced columns of this table.
    pub referenced: Vec<ColumnId>,
    /// Sequential-scan cost (the index-free baseline).
    pub seq_cost: f64,
    /// Filtered output cardinality.
    pub rows_out: f64,
}

/// One step of a [`JoinPlan`]: a table attached to the greedy left-deep
/// prefix, together with every **config-independent** quantity the model
/// needs to cost that step under an arbitrary index configuration.
///
/// Step 0 is the driver table (its cost is just its access path); every
/// later step pays `min(hash join, index nested-loop)` where
///
/// * the hash-join cost is `access_cost + f(rows_out, outer_rows)` (see
///   [`AnalyticalCostModel::hash_join_cost`]), and
/// * the nested-loop alternatives exist only when [`Self::inner_col`] is
///   `Some` and an index on this table leads on that column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct JoinStep {
    /// The table attached at this step.
    pub table: TableId,
    /// Sequential-scan baseline for this table (the "no index" access).
    pub seq_cost: f64,
    /// Filtered cardinality of this table (the scalar path's `t_rows`).
    pub rows_out: f64,
    /// Result cardinality of the join prefix *before* this step (the
    /// scalar path's `result_rows`; `0.0` and unused for step 0).
    pub outer_rows: f64,
    /// Join column on this table linking it to the prefix, or `None`
    /// when the step is a cross join (no index nested-loop alternative).
    pub inner_col: Option<ColumnId>,
}

/// The config-independent skeleton of a multi-table query's plan: the
/// greedy left-deep join order, per-step cardinalities and join edges,
/// and the final result cardinality for surcharges.
///
/// The skeleton depends only on the catalog and the query — the greedy
/// order sorts by filtered cardinalities (`rows_out`), which no index
/// can change, and the containment-assumption cardinality chain uses
/// only column NDVs. Index configurations influence *only* the per-step
/// access costs and nested-loop alternatives, which is exactly what
/// makes join queries decomposable into per-(query, index) matrix cells
/// (see `super::matrix`). Built by [`AnalyticalCostModel::join_plan`];
/// both the scalar path and the benefit matrix evaluate it through
/// [`AnalyticalCostModel::join_cost_from_steps`], so the two paths
/// execute literally identical float operations.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JoinPlan {
    /// Steps in greedy left-deep order; step 0 is the driver table.
    pub steps: Vec<JoinStep>,
    /// Final result cardinality (surcharge input).
    pub result_rows: f64,
}

/// Config-dependent state of one [`JoinStep`] under a concrete index
/// configuration: the running minima an evaluation (or an incremental
/// session) maintains per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct JoinStepState {
    /// `min(seq_cost, applicable index access costs)` for this step's
    /// table.
    pub raw: f64,
    /// `min(index nested-loop alternatives)`, `+∞` when none apply.
    pub nl: f64,
}

/// PostgreSQL-style analytical cost model.
#[derive(Debug, Clone, Default)]
pub struct AnalyticalCostModel {
    params: CostParams,
}

impl AnalyticalCostModel {
    /// Model with default (PostgreSQL) constants.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model with custom constants.
    pub fn with_params(params: CostParams) -> Self {
        AnalyticalCostModel { params }
    }

    /// The cost constants in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Combined selectivity of a conjunctive predicate list (independence
    /// assumption).
    fn combined_selectivity(&self, cat: Catalog<'_>, preds: &[&Predicate]) -> f64 {
        preds
            .iter()
            .map(|p| p.selectivity(cat.column(p.col)))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Cost of a sequential scan of `table` applying `n_preds` filters.
    fn seq_scan_cost(&self, cat: Catalog<'_>, table: TableId, n_preds: usize) -> f64 {
        let ts = cat.table(table);
        let p = &self.params;
        p.seq_page_cost * ts.pages as f64
            + p.cpu_tuple_cost * ts.rows as f64
            + p.cpu_operator_cost * ts.rows as f64 * n_preds.max(1) as f64
    }

    /// How much of the index key prefix the predicates can use, and the
    /// resulting matched selectivity. Returns `None` when the leading
    /// column has no sargable predicate (B+-tree unusable).
    fn index_match(&self, cat: Catalog<'_>, index: &Index, preds: &[&Predicate]) -> Option<f64> {
        let mut sel = 1.0f64;
        let mut matched_any = false;
        for (depth, &col) in index.columns.iter().enumerate() {
            let matching: Vec<&&Predicate> = preds.iter().filter(|p| p.col == col).collect();
            if matching.is_empty() {
                break;
            }
            matched_any = true;
            let mut all_eq = true;
            for p in &matching {
                sel *= p.selectivity(cat.column(p.col));
                all_eq &= p.is_equality();
            }
            // A range predicate at this depth consumes the prefix: deeper
            // columns can only be used as filter (ignored here).
            if !all_eq {
                let _ = depth;
                break;
            }
        }
        matched_any.then_some(sel.clamp(0.0, 1.0))
    }

    /// Cost of scanning `table` through `index` with matched selectivity
    /// `sel`; `covering` marks index-only eligibility, `n_resid` counts
    /// residual predicates re-checked per fetched row.
    fn index_scan_cost(
        &self,
        cat: Catalog<'_>,
        table: TableId,
        index: &Index,
        sel: f64,
        covering: bool,
        n_resid: usize,
    ) -> f64 {
        let ts = cat.table(table);
        let p = &self.params;
        let rows = ts.rows as f64;
        let tuples = (sel * rows).max(1.0);
        let leaf_pages = index.leaf_pages(cat.schema, ts) as f64;
        let descent = f64::from(index.height(cat.schema, ts)) * p.random_page_cost;
        let leaf_cost = p.seq_page_cost * (sel * leaf_pages).max(1.0);

        // Heap fetches: interpolate between perfectly correlated
        // (sequential, sel·pages) and uncorrelated (one random page per
        // tuple, capped at 2·pages) by correlation².
        let corr = cat.column(index.leading()).correlation;
        let c2 = corr * corr;
        let heap_pages_corr = sel * ts.pages as f64;
        let heap_pages_rand = tuples.min(2.0 * ts.pages as f64);
        let mut heap = c2 * heap_pages_corr + (1.0 - c2) * heap_pages_rand;
        let mut heap_cost_per_page = p.random_page_cost;
        if c2 > 0.5 {
            heap_cost_per_page =
                p.seq_page_cost + (p.random_page_cost - p.seq_page_cost) * (1.0 - c2);
        }
        if covering {
            heap *= INDEX_ONLY_HEAP_FRACTION;
        }
        descent
            + leaf_cost
            + heap * heap_cost_per_page
            + p.cpu_index_tuple_cost * tuples
            + p.cpu_tuple_cost * tuples
            + p.cpu_operator_cost * tuples * n_resid as f64
    }

    /// Config-independent access data for one table of the query (the
    /// seq-scan baseline and everything [`Self::index_access_cost`]
    /// needs to cost an index against it).
    pub(crate) fn table_access<'q>(
        &self,
        cat: Catalog<'_>,
        q: &'q Query,
        table: TableId,
    ) -> TableAccess<'q> {
        let preds = q.predicates_on(cat.schema, table);
        let sel_all = self.combined_selectivity(cat, &preds);
        let rows_out = (cat.table(table).rows as f64 * sel_all).max(1.0);
        let seq_cost = self.seq_scan_cost(cat, table, preds.len());
        // Referenced columns of this table (for index-only detection).
        let referenced: Vec<ColumnId> = q
            .referenced_columns()
            .into_iter()
            .filter(|&c| cat.schema.table_of(c) == table)
            .collect();
        TableAccess {
            table,
            preds,
            referenced,
            seq_cost,
            rows_out,
        }
    }

    /// Cost of scanning `acc`'s table through `index`, or `None` when the
    /// index lives on another table or its leading column has no sargable
    /// predicate.
    pub(crate) fn index_access_cost(
        &self,
        cat: Catalog<'_>,
        acc: &TableAccess<'_>,
        index: &Index,
    ) -> Option<f64> {
        if index.table(cat.schema) != acc.table {
            return None;
        }
        let sel = self.index_match(cat, index, &acc.preds)?;
        let covering = acc.referenced.iter().all(|c| index.columns.contains(c));
        let n_resid = acc
            .preds
            .iter()
            .filter(|p| !index.columns.contains(&p.col))
            .count();
        Some(self.index_scan_cost(cat, acc.table, index, sel, covering, n_resid))
    }

    /// Aggregation / grouping / sorting surcharges applied on top of the
    /// join-tree cost. Depends only on `result_rows` (config-independent),
    /// never on which access paths were chosen.
    pub(crate) fn apply_surcharges(&self, q: &Query, mut total: f64, result_rows: f64) -> f64 {
        let p = &self.params;
        if !q.aggregates.is_empty() || !q.group_by.is_empty() {
            total += p.cpu_operator_cost
                * result_rows
                * (q.aggregates.len() + q.group_by.len()).max(1) as f64;
        }
        if !q.order_by.is_empty() && result_rows > 1.0 {
            total += 2.0 * p.cpu_operator_cost * result_rows * result_rows.log2().max(1.0);
        }
        total
    }

    /// Best access path for a single table of the query. Returns
    /// `(cost, filtered_rows)`.
    fn best_access_path(
        &self,
        cat: Catalog<'_>,
        q: &Query,
        table: TableId,
        cfg: &IndexConfig,
    ) -> (f64, f64) {
        let acc = self.table_access(cat, q, table);
        let mut best = acc.seq_cost;
        for index in cfg.indexes() {
            let Some(cost) = self.index_access_cost(cat, &acc, index) else {
                continue;
            };
            if cost < best {
                best = cost;
            }
        }
        (best, acc.rows_out)
    }

    /// EXPLAIN-style access-path summary: for each table of the query,
    /// which path the model would choose under `cfg` and at what cost.
    /// (Join strategy selection happens inside [`CostModel::query_cost`];
    /// this view covers the per-table decisions that index advisors act
    /// on.)
    pub fn explain(&self, cat: Catalog<'_>, q: &Query, cfg: &IndexConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan (total cost {:.0}):",
            self.query_cost(cat, q, cfg)
        );
        for &t in &q.tables {
            let acc = self.table_access(cat, q, t);
            let seq = acc.seq_cost;
            let mut choice = format!("seq scan (cost {seq:.0})");
            let mut best = seq;
            for index in cfg.indexes() {
                let Some(cost) = self.index_access_cost(cat, &acc, index) else {
                    continue;
                };
                if cost < best {
                    best = cost;
                    let sel = self
                        .index_match(cat, index, &acc.preds)
                        .expect("costed index matched");
                    let covering = acc.referenced.iter().all(|c| index.columns.contains(c));
                    let kind = if covering { "index-only" } else { "index" };
                    choice = format!(
                        "{kind} scan via {} (sel {sel:.4}, cost {cost:.0})",
                        index.name(cat.schema)
                    );
                }
            }
            let _ = writeln!(
                out,
                "  {:<12} rows {:>10}  -> {choice}",
                cat.schema.table(t).name,
                cat.table(t).rows
            );
        }
        out
    }

    /// Index nested-loop probe cost into `table` via an index whose leading
    /// column is `join_col`, for `outer_rows` probes. Heap fetches per
    /// probe shrink with the join column's physical correlation: matches
    /// of a clustered key (e.g. `l_orderkey`) share heap pages.
    pub(crate) fn index_nl_cost(
        &self,
        cat: Catalog<'_>,
        table: TableId,
        index: &Index,
        join_col: ColumnId,
        outer_rows: f64,
    ) -> f64 {
        let ts = cat.table(table);
        let p = &self.params;
        let ndv = cat.column(join_col).ndv.max(1) as f64;
        let matches = (ts.rows as f64 / ndv).max(1.0);
        let corr = cat.column(join_col).correlation;
        let c2 = corr * corr;
        let heap_pages = (matches * (1.0 - c2)).max(1.0).min(ts.pages as f64);
        let descent = f64::from(index.height(cat.schema, ts)) * p.random_page_cost;
        let per_probe = descent
            + p.cpu_index_tuple_cost * matches
            + p.random_page_cost * heap_pages
            + p.cpu_tuple_cost * matches;
        outer_rows * per_probe
    }

    /// Derive the config-independent [`JoinPlan`] skeleton of a
    /// multi-table query: greedy left-deep order (smallest filtered
    /// cardinality first, then repeatedly attach a join-connected table,
    /// falling back to the smallest remaining for cross joins), per-step
    /// cardinalities, join columns, and the containment-assumption
    /// result-cardinality chain.
    ///
    /// This is the *only* implementation of the join-order heuristic in
    /// the workspace; [`CostModel::query_cost`] and the benefit matrix
    /// both consume its output, so they cannot drift.
    pub(crate) fn join_plan(&self, cat: Catalog<'_>, q: &Query) -> JoinPlan {
        debug_assert!(q.tables.len() >= 2, "join_plan needs a multi-table query");
        let accs: Vec<TableAccess<'_>> = q
            .tables
            .iter()
            .map(|&t| self.table_access(cat, q, t))
            .collect();

        let mut steps: Vec<JoinStep> = Vec::with_capacity(accs.len());
        let mut order: Vec<usize> = Vec::with_capacity(accs.len());
        let mut remaining: Vec<usize> = (0..accs.len()).collect();
        remaining.sort_by(|&a, &b| accs[a].rows_out.total_cmp(&accs[b].rows_out));
        order.push(remaining.remove(0));
        let first = &accs[order[0]];
        let mut result_rows = first.rows_out;
        steps.push(JoinStep {
            table: first.table,
            seq_cost: first.seq_cost,
            rows_out: first.rows_out,
            outer_rows: 0.0,
            inner_col: None,
        });

        while !remaining.is_empty() {
            // Prefer a table connected to the current prefix by a join
            // edge; fall back to the smallest remaining (cross join).
            let connected_pos = remaining.iter().position(|&i| {
                q.joins.iter().any(|j| {
                    let lt = cat.schema.table_of(j.left);
                    let rt = cat.schema.table_of(j.right);
                    let in_prefix = |t: TableId| order.iter().any(|&o| accs[o].table == t);
                    (accs[i].table == lt && in_prefix(rt))
                        || (accs[i].table == rt && in_prefix(lt))
                })
            });
            let next = remaining.remove(connected_pos.unwrap_or(0));
            let t = accs[next].table;

            // Join edge linking `t` to the prefix (if any).
            let edge = q.joins.iter().find(|j| {
                let lt = cat.schema.table_of(j.left);
                let rt = cat.schema.table_of(j.right);
                (lt == t) != (rt == t)
                    && (order.iter().any(|&o| accs[o].table == lt)
                        || order.iter().any(|&o| accs[o].table == rt))
            });
            let inner_col = edge.map(|j| {
                if cat.schema.table_of(j.left) == t {
                    j.left
                } else {
                    j.right
                }
            });
            steps.push(JoinStep {
                table: t,
                seq_cost: accs[next].seq_cost,
                rows_out: accs[next].rows_out,
                outer_rows: result_rows,
                inner_col,
            });

            // Output cardinality via containment assumption.
            result_rows = if let Some(j) = edge {
                let ndv_l = cat.column(j.left).ndv.max(1) as f64;
                let ndv_r = cat.column(j.right).ndv.max(1) as f64;
                (result_rows * accs[next].rows_out / ndv_l.max(ndv_r)).max(1.0)
            } else {
                result_rows * accs[next].rows_out
            };
            order.push(next);
        }

        JoinPlan { steps, result_rows }
    }

    /// Hash-join cost of one [`JoinStep`] given the chosen inner access
    /// path: inner access + build/probe CPU. Kept as the single shared
    /// expression (left-associative, in this exact operand order) so the
    /// scalar path and the benefit matrix produce bit-identical sums.
    pub(crate) fn hash_join_cost(&self, access_cost: f64, step: &JoinStep) -> f64 {
        let p = &self.params;
        access_cost
            + 2.0 * p.cpu_tuple_cost * step.rows_out
            + p.cpu_operator_cost * (step.outer_rows + step.rows_out)
    }

    /// Config-dependent state of one [`JoinStep`] under `cfg`: the best
    /// raw access path for the step's table and the best index
    /// nested-loop alternative (`+∞` when none applies).
    pub(crate) fn join_step_state(
        &self,
        cat: Catalog<'_>,
        q: &Query,
        step: &JoinStep,
        cfg: &IndexConfig,
    ) -> JoinStepState {
        let (raw, _) = self.best_access_path(cat, q, step.table, cfg);
        let mut nl = f64::INFINITY;
        if let Some(col) = step.inner_col {
            // Index nested loop: only if an index leads on t's join key.
            for index in cfg.indexes() {
                if index.table(cat.schema) == step.table && index.leading() == col {
                    let c = self.index_nl_cost(cat, step.table, index, col, step.outer_rows);
                    if c < nl {
                        nl = c;
                    }
                }
            }
        }
        JoinStepState { raw, nl }
    }

    /// Total query cost from a [`JoinPlan`] plus per-step
    /// [`JoinStepState`]s: step 0 pays its access path, every later step
    /// pays `min(hash join, best nested loop)`, accumulated in plan
    /// order, then surcharges on the final cardinality.
    ///
    /// This is the single accumulation loop both cost paths share. The
    /// scalar path feeds it states computed directly from `cfg`; the
    /// benefit matrix feeds it states assembled from memoized cells. The
    /// sum is evaluated left-associatively in plan order either way,
    /// which is what makes the two paths bit-identical despite float
    /// addition being non-associative.
    pub(crate) fn join_cost_from_steps(
        &self,
        q: &Query,
        plan: &JoinPlan,
        states: &[JoinStepState],
    ) -> f64 {
        self.join_cost_substituted(q, plan, states, None)
    }

    /// [`Self::join_cost_from_steps`] with one step's state substituted
    /// (allocation-free preview of a single-index edit: the caller
    /// computes the touched step's updated minima and folds them in
    /// without cloning the session's state vector).
    pub(crate) fn join_cost_substituted(
        &self,
        q: &Query,
        plan: &JoinPlan,
        states: &[JoinStepState],
        replace: Option<(usize, JoinStepState)>,
    ) -> f64 {
        let mut total = 0.0;
        for (k, step) in plan.steps.iter().enumerate() {
            let st = match replace {
                Some((i, s)) if i == k => s,
                _ => states[k],
            };
            if k == 0 {
                total = st.raw;
                continue;
            }
            let hash_cost = self.hash_join_cost(st.raw, step);
            // Strict `<` so ties keep the hash join, exactly like the
            // pre-decomposition scalar loop.
            let best_join = if st.nl < hash_cost { st.nl } else { hash_cost };
            total += best_join;
        }
        self.apply_surcharges(q, total, plan.result_rows)
    }
}

impl CostModel for AnalyticalCostModel {
    fn query_cost(&self, cat: Catalog<'_>, q: &Query, cfg: &IndexConfig) -> f64 {
        if q.tables.is_empty() {
            return 0.0;
        }

        if q.tables.len() == 1 {
            let (total, result_rows) = self.best_access_path(cat, q, q.tables[0], cfg);
            return self.apply_surcharges(q, total, result_rows);
        }

        // Multi-table: derive the config-independent skeleton, then cost
        // each step under `cfg` and accumulate in plan order.
        let plan = self.join_plan(cat, q);
        let states: Vec<JoinStepState> = plan
            .steps
            .iter()
            .map(|s| self.join_step_state(cat, q, s, cfg))
            .collect();
        self.join_cost_from_steps(q, &plan, &states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{WhatIf, PAGE_SIZE};
    use crate::query::QueryBuilder;
    use crate::schema::{DataType, Schema};
    use crate::stats::{ColumnStats, TableStats};

    /// A toy catalog: one big `fact` table and one small `dim` table.
    struct Fixture {
        schema: Schema,
        tstats: Vec<TableStats>,
        cstats: Vec<ColumnStats>,
    }

    impl Fixture {
        fn new() -> Self {
            let mut schema = Schema::new();
            schema.add_table(
                "fact",
                1_000_000,
                &[
                    ("f_id", DataType::BigInt),
                    ("f_dim", DataType::Int),
                    ("f_price", DataType::Decimal),
                    ("f_qty", DataType::Int),
                ],
            );
            schema.add_table(
                "dim",
                1000,
                &[("d_id", DataType::Int), ("d_cat", DataType::Int)],
            );
            let tstats = schema
                .tables()
                .iter()
                .map(|t| {
                    let rows = t.base_rows;
                    let width = schema.row_width(t.id) as u64;
                    TableStats {
                        rows,
                        pages: (rows * width).div_ceil(PAGE_SIZE).max(1),
                    }
                })
                .collect();
            let cstats = schema
                .columns()
                .iter()
                .map(|c| {
                    let rows = schema.table(c.table).base_rows;
                    let ndv = match c.name.as_str() {
                        "f_id" => rows,
                        "f_dim" | "d_id" => 1000,
                        "f_price" => 10_000,
                        "f_qty" => 50,
                        "d_cat" => 10,
                        _ => unreachable!(),
                    };
                    ColumnStats::uniform(c.id, c.ty, ndv, 0, ndv as i64 - 1)
                })
                .collect();
            Fixture {
                schema,
                tstats,
                cstats,
            }
        }

        fn cat(&self) -> Catalog<'_> {
            Catalog {
                schema: &self.schema,
                table_stats: &self.tstats,
                column_stats: &self.cstats,
            }
        }

        fn col(&self, n: &str) -> ColumnId {
            self.schema.column_id(n).unwrap()
        }
    }

    fn point_query(fx: &Fixture, col: &str) -> Query {
        QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col(col), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap()
    }

    #[test]
    fn selective_index_beats_seq_scan() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let q = point_query(&fx, "f_id");
        let no_idx = m.query_cost(fx.cat(), &q, &IndexConfig::empty());
        let with_idx = m.query_cost(
            fx.cat(),
            &q,
            &IndexConfig::from_indexes([Index::single(fx.col("f_id"))]),
        );
        assert!(
            with_idx < no_idx / 100.0,
            "point lookup must be far cheaper: {with_idx} vs {no_idx}"
        );
    }

    #[test]
    fn irrelevant_index_changes_nothing() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let q = point_query(&fx, "f_id");
        let base = m.query_cost(fx.cat(), &q, &IndexConfig::empty());
        let other = m.query_cost(
            fx.cat(),
            &q,
            &IndexConfig::from_indexes([Index::single(fx.col("d_cat"))]),
        );
        assert_eq!(base, other);
    }

    #[test]
    fn benefit_scales_with_selectivity() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let wi = WhatIf::new(fx.cat(), &m);
        // High-NDV column (very selective eq) vs low-NDV column.
        let q_hi = point_query(&fx, "f_id");
        let q_lo = point_query(&fx, "f_qty");
        let b_hi = wi.query_benefit(
            &q_hi,
            &IndexConfig::from_indexes([Index::single(fx.col("f_id"))]),
        );
        let b_lo = wi.query_benefit(
            &q_lo,
            &IndexConfig::from_indexes([Index::single(fx.col("f_qty"))]),
        );
        assert!(b_hi > b_lo, "b_hi={b_hi} b_lo={b_lo}");
        assert!(b_hi > 0.9);
    }

    #[test]
    fn unselective_range_prefers_seq_scan() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::between(fx.col("f_price"), 0.0, 0.95))
            .select(fx.col("f_qty"))
            .build(&fx.schema)
            .unwrap();
        let base = m.query_cost(fx.cat(), &q, &IndexConfig::empty());
        let idx = m.query_cost(
            fx.cat(),
            &q,
            &IndexConfig::from_indexes([Index::single(fx.col("f_price"))]),
        );
        // The optimizer should not pick the index (cost identical to seq).
        assert_eq!(base, idx);
    }

    #[test]
    fn covering_index_beats_non_covering() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::between(fx.col("f_dim"), 0.4, 0.42))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let partial = m.query_cost(
            fx.cat(),
            &q,
            &IndexConfig::from_indexes([Index::single(fx.col("f_dim"))]),
        );
        let covering = m.query_cost(
            fx.cat(),
            &q,
            &IndexConfig::from_indexes([Index::multi(
                &fx.schema,
                vec![fx.col("f_dim"), fx.col("f_price")],
            )
            .unwrap()]),
        );
        assert!(covering < partial, "covering={covering} partial={partial}");
    }

    #[test]
    fn multicolumn_prefix_rule() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let idx = Index::multi(&fx.schema, vec![fx.col("f_dim"), fx.col("f_qty")]).unwrap();
        // Predicate only on the second column: index unusable.
        let q = point_query(&fx, "f_qty");
        let base = m.query_cost(fx.cat(), &q, &IndexConfig::empty());
        let with = m.query_cost(fx.cat(), &q, &IndexConfig::from_indexes([idx.clone()]));
        assert_eq!(base, with);
        // Predicates on both: better than leading-only match.
        let q2 = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_dim"), 0.3))
            .filter(&fx.schema, Predicate::eq(fx.col("f_qty"), 0.3))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let both = m.query_cost(fx.cat(), &q2, &IndexConfig::from_indexes([idx]));
        let lead_only = m.query_cost(
            fx.cat(),
            &q2,
            &IndexConfig::from_indexes([Index::single(fx.col("f_dim"))]),
        );
        assert!(both < lead_only);
    }

    #[test]
    fn join_index_on_join_key_helps() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        // One dim row selected → one probe into fact: the classic case
        // where an index nested loop beats scanning the fact table.
        let q = QueryBuilder::new()
            .join(&fx.schema, fx.col("f_dim"), fx.col("d_id"))
            .filter(&fx.schema, Predicate::eq(fx.col("d_id"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let base = m.query_cost(fx.cat(), &q, &IndexConfig::empty());
        let with = m.query_cost(
            fx.cat(),
            &q,
            &IndexConfig::from_indexes([Index::single(fx.col("f_dim"))]),
        );
        assert!(with < base, "with={with} base={base}");
    }

    #[test]
    fn correlation_cheapens_range_scans() {
        let fx = Fixture::new();
        let mut fx2 = Fixture::new();
        let price_idx = fx2.col("f_price").0 as usize;
        fx2.cstats[price_idx].correlation = 1.0;
        let m = AnalyticalCostModel::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::between(fx.col("f_price"), 0.1, 0.25))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(fx.col("f_price"))]);
        let uncorr = m.query_cost(fx.cat(), &q, &cfg);
        let corr = m.query_cost(fx2.cat(), &q, &cfg);
        assert!(corr < uncorr, "corr={corr} uncorr={uncorr}");
    }

    #[test]
    fn workload_cost_weights_frequencies() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let q = point_query(&fx, "f_id");
        let single = crate::workload::Workload::from_queries([(q.clone(), 1)]);
        let triple = crate::workload::Workload::from_queries([(q, 3)]);
        let cat = fx.cat();
        let c1 = m.workload_cost(cat, &single, &IndexConfig::empty());
        let c3 = m.workload_cost(cat, &triple, &IndexConfig::empty());
        assert!((c3 - 3.0 * c1).abs() < 1e-6);
    }

    #[test]
    fn order_by_adds_sort_cost() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let base = QueryBuilder::new()
            .filter(&fx.schema, Predicate::between(fx.col("f_price"), 0.0, 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let mut sorted = base.clone();
        sorted.order_by.push(fx.col("f_price"));
        let c_base = m.query_cost(fx.cat(), &base, &IndexConfig::empty());
        let c_sorted = m.query_cost(fx.cat(), &sorted, &IndexConfig::empty());
        assert!(c_sorted > c_base);
    }

    #[test]
    fn best_single_index_picks_the_filter_column() {
        let fx = Fixture::new();
        let m = AnalyticalCostModel::new();
        let wi = WhatIf::new(fx.cat(), &m);
        let q = point_query(&fx, "f_id");
        let cands = vec![
            Index::single(fx.col("f_qty")),
            Index::single(fx.col("f_id")),
            Index::single(fx.col("f_price")),
        ];
        let best = wi.best_single_index(&q, &cands).unwrap();
        assert_eq!(best.leading(), fx.col("f_id"));
    }
}
