//! Thread-safe what-if cost cache.
//!
//! Every advisor training run, probing epoch, and injection search issues
//! the same `c(q, d, I)` what-if calls over and over — across epochs,
//! across runs of one experiment cell, and across cells of a grid. The
//! cost model is pure (a function of the catalog, query, and index
//! configuration), so repeated probes are pure waste. This module
//! memoizes them behind a sharded `RwLock` map keyed on 128-bit
//! structural fingerprints of the query and configuration.
//!
//! Concurrency: reads take a shard read-lock; misses compute *outside*
//! any lock and then take the shard write-lock to publish. Two threads
//! may race to compute the same entry, but the cost model is
//! deterministic, so both compute the identical value and the insert is
//! idempotent — correctness never depends on who wins.
//!
//! Determinism: a cache hit returns a previously computed `f64`
//! bit-for-bit, so cached and uncached runs produce identical results
//! (see `DESIGN.md`, "Determinism guarantees").
//!
//! Capacity: by default the cache is unbounded (the paper-scale grids
//! fit comfortably). [`CostCache::set_capacity`] bounds residency for
//! million-query streams; eviction is CLOCK/second-chance per shard
//! (hits set a reference bit under the read lock, the insert path
//! sweeps a clock hand over the shard's slots). Eviction affects
//! *presence only* — the cost model is pure, so a re-miss recomputes
//! the bit-identical value and every capacity (including 0) returns
//! costs bit-identical to the unbounded cache
//! (`tests/scale_properties.rs` pins this).

use crate::index::IndexConfig;
use crate::predicate::PredOp;
use crate::query::{Aggregate, Query};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

/// Number of independently locked shards. A power of two so the shard
/// pick is a mask; 16 keeps contention negligible at the thread counts
/// the experiment runner uses without bloating an idle `Database`.
const SHARDS: usize = 16;

/// A 128-bit structural fingerprint (two independent FNV-1a streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    /// The fingerprint as one 128-bit value (observability keys).
    pub fn to_u128(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Incremental FNV-1a × 2 hasher over canonical byte encodings.
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    fn new() -> Self {
        // Standard FNV-1a offset for stream A; an arbitrary odd constant
        // (pi fraction) decorrelates stream B.
        Fnv2 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x2437_54c8_10f8_6cb5,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_0197);
        }
    }

    fn u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn finish(self) -> Fingerprint {
        Fingerprint {
            a: self.a,
            b: self.b,
        }
    }
}

/// Structural fingerprint of a query: every field that can influence its
/// cost, tagged and length-prefixed so distinct structures cannot
/// collide by concatenation.
pub fn fingerprint_query(q: &Query) -> Fingerprint {
    let mut h = Fnv2::new();
    h.u32(q.tables.len() as u32);
    for t in &q.tables {
        h.u32(t.0);
    }
    h.u32(q.joins.len() as u32);
    for j in &q.joins {
        h.u32(j.left.0);
        h.u32(j.right.0);
    }
    h.u32(q.predicates.len() as u32);
    for p in &q.predicates {
        h.u32(p.col.0);
        match &p.op {
            PredOp::Eq(v) => {
                h.u32(1);
                h.f64(*v);
            }
            PredOp::Le(v) => {
                h.u32(2);
                h.f64(*v);
            }
            PredOp::Ge(v) => {
                h.u32(3);
                h.f64(*v);
            }
            PredOp::Between(lo, hi) => {
                h.u32(4);
                h.f64(*lo);
                h.f64(*hi);
            }
            PredOp::In(vs) => {
                h.u32(5);
                h.u32(vs.len() as u32);
                for v in vs {
                    h.f64(*v);
                }
            }
        }
    }
    h.u32(q.projection.len() as u32);
    for c in &q.projection {
        h.u32(c.0);
    }
    h.u32(q.aggregates.len() as u32);
    for a in &q.aggregates {
        match a {
            Aggregate::CountStar => h.u32(0xffff_ffff),
            Aggregate::Sum(c) => {
                h.u32(1);
                h.u32(c.0);
            }
            Aggregate::Avg(c) => {
                h.u32(2);
                h.u32(c.0);
            }
            Aggregate::Min(c) => {
                h.u32(3);
                h.u32(c.0);
            }
            Aggregate::Max(c) => {
                h.u32(4);
                h.u32(c.0);
            }
        }
    }
    h.u32(q.group_by.len() as u32);
    for c in &q.group_by {
        h.u32(c.0);
    }
    h.u32(q.order_by.len() as u32);
    for c in &q.order_by {
        h.u32(c.0);
    }
    h.u64(q.limit.map_or(u64::MAX, |l| l.wrapping_add(1)));
    h.finish()
}

/// Structural fingerprint of a single index (its column list). Keys the
/// per-(query, index) benefit matrix the same way [`fingerprint_config`]
/// keys the per-(query, config) cost cache.
pub fn fingerprint_index(idx: &crate::index::Index) -> Fingerprint {
    let mut h = Fnv2::new();
    h.u32(idx.columns.len() as u32);
    for c in &idx.columns {
        h.u32(c.0);
    }
    h.finish()
}

/// Structural fingerprint of an index configuration (order-sensitive:
/// the cost model is order-insensitive, so keying on insertion order
/// only costs duplicate entries, never correctness).
pub fn fingerprint_config(cfg: &IndexConfig) -> Fingerprint {
    let mut h = Fnv2::new();
    h.u32(cfg.len() as u32);
    for idx in cfg.indexes() {
        h.u32(idx.columns.len() as u32);
        for c in &idx.columns {
            h.u32(c.0);
        }
    }
    h.finish()
}

/// Hit/miss counters and current size of a [`CostCache`], as returned by
/// [`CostCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the cost model.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries displaced by the CLOCK sweep (0 while unbounded).
    pub evictions: u64,
    /// Configured capacity bound (`usize::MAX` = unbounded).
    pub capacity: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Key = (Fingerprint, Fingerprint);

/// One resident cache entry. The reference bit is atomic so a *read*
/// lock suffices to mark recency on the hit path.
struct Slot {
    key: Key,
    value: f64,
    referenced: AtomicBool,
}

/// One shard: a key → slot-index map over a slot arena swept by a CLOCK
/// hand. Unbounded shards never sweep (the arena only grows).
#[derive(Default)]
struct Shard {
    map: HashMap<Key, usize>,
    slots: Vec<Slot>,
    hand: usize,
}

impl Shard {
    /// Pick a victim by second chance (referenced slots get their bit
    /// cleared and are passed over; a full sweep therefore always
    /// terminates), unlink it from the map, and return its index for
    /// reuse. Caller guarantees the arena is non-empty.
    fn evict_one(&mut self) -> usize {
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            if self.slots[i].referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            self.map.remove(&self.slots[i].key);
            return i;
        }
    }

    /// Shrink residency to `cap` entries, evicting by CLOCK. Returns the
    /// number of entries dropped.
    fn trim(&mut self, cap: usize) -> u64 {
        let mut dropped = 0;
        while self.slots.len() > cap {
            let i = self.evict_one();
            self.slots.swap_remove(i);
            if i < self.slots.len() {
                self.map.insert(self.slots[i].key, i);
            }
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            dropped += 1;
        }
        dropped
    }
}

/// A sharded, thread-safe `(query, config) → cost` memo table with
/// optional CLOCK-bounded residency.
pub struct CostCache {
    shards: Vec<RwLock<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Total capacity bound across shards; `usize::MAX` = unbounded.
    capacity: AtomicUsize,
    enabled: AtomicBool,
}

impl Default for CostCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CostCache {
    /// An empty, enabled, unbounded cache.
    pub fn new() -> Self {
        CostCache {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity: AtomicUsize::new(usize::MAX),
            enabled: AtomicBool::new(true),
        }
    }

    /// Enable or disable memoization (lookups bypass the map when
    /// disabled; existing entries are kept). Used by benchmarks to
    /// measure cold-path cost.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether memoization is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Bound residency to `capacity` total entries (`usize::MAX` =
    /// unbounded, the default; `0` = store nothing). Shards each hold up
    /// to `capacity / SHARDS` (rounded up) entries, evicting by CLOCK
    /// when full; a shrinking bound trims immediately. Eviction affects
    /// presence only — every capacity returns bit-identical costs.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let cap = Self::per_shard(capacity);
        for s in &self.shards {
            let dropped = s.write().expect("cache shard poisoned").trim(cap);
            if dropped > 0 {
                self.evictions.fetch_add(dropped, Ordering::Relaxed);
                pipa_obs::count("whatif_cache_evict", dropped);
            }
        }
    }

    fn per_shard(capacity: usize) -> usize {
        if capacity == usize::MAX {
            usize::MAX
        } else {
            capacity.div_ceil(SHARDS)
        }
    }

    /// Look up `(q, cfg)`, computing and publishing via `compute` on a
    /// miss. `compute` runs outside all locks.
    pub fn get_or_compute(
        &self,
        q: Fingerprint,
        cfg: Fingerprint,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        if !self.is_enabled() {
            return compute();
        }
        let key = (q, cfg);
        let shard = &self.shards[(q.a ^ cfg.a) as usize & (SHARDS - 1)];
        {
            let s = shard.read().expect("cache shard poisoned");
            if let Some(&i) = s.map.get(&key) {
                let slot = &s.slots[i];
                slot.referenced.store(true, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return slot.value;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        let cap = Self::per_shard(self.capacity.load(Ordering::Relaxed));
        if cap == 0 {
            return v;
        }
        let mut s = shard.write().expect("cache shard poisoned");
        if let Some(&i) = s.map.get(&key) {
            // A racing thread published first; the model is pure, so its
            // value is bit-identical to ours.
            return s.slots[i].value;
        }
        let i = if s.slots.len() < cap {
            s.slots.push(Slot {
                key,
                value: v,
                referenced: AtomicBool::new(false),
            });
            s.slots.len() - 1
        } else {
            let i = s.evict_one();
            self.evictions.fetch_add(1, Ordering::Relaxed);
            pipa_obs::count("whatif_cache_evict", 1);
            s.slots[i] = Slot {
                key,
                value: v,
                referenced: AtomicBool::new(false),
            };
            i
        };
        s.map.insert(key, i);
        v
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache shard poisoned").map.len())
                .sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity.load(Ordering::Relaxed),
        }
    }

    /// Drop all entries and zero the counters (the capacity bound and
    /// enabled flag persist).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.write().expect("cache shard poisoned");
            s.map.clear();
            s.slots.clear();
            s.hand = 0;
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Index;
    use crate::schema::ColumnId;

    fn q(frac: f64) -> Query {
        Query {
            tables: vec![crate::schema::TableId(0)],
            joins: vec![],
            predicates: vec![crate::predicate::Predicate::eq(ColumnId(0), frac)],
            projection: vec![ColumnId(0)],
            aggregates: vec![],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn distinct_structures_get_distinct_fingerprints() {
        let a = fingerprint_query(&q(0.25));
        let b = fingerprint_query(&q(0.75));
        assert_ne!(a, b);
        let c1 = fingerprint_config(&IndexConfig::empty());
        let c2 = fingerprint_config(&IndexConfig::from_indexes([Index::single(ColumnId(1))]));
        assert_ne!(c1, c2);
    }

    #[test]
    fn fingerprints_are_stable() {
        assert_eq!(fingerprint_query(&q(0.5)), fingerprint_query(&q(0.5)));
    }

    #[test]
    fn hit_returns_cached_value_and_counts() {
        let cache = CostCache::new();
        let qf = fingerprint_query(&q(0.5));
        let cf = fingerprint_config(&IndexConfig::empty());
        let first = cache.get_or_compute(qf, cf, || 42.0);
        let second = cache.get_or_compute(qf, cf, || panic!("must hit"));
        assert_eq!(first, 42.0);
        assert_eq!(second, 42.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache = CostCache::new();
        cache.set_enabled(false);
        let qf = fingerprint_query(&q(0.5));
        let cf = fingerprint_config(&IndexConfig::empty());
        assert_eq!(cache.get_or_compute(qf, cf, || 1.0), 1.0);
        assert_eq!(cache.get_or_compute(qf, cf, || 2.0), 2.0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = CostCache::new();
        let qf = fingerprint_query(&q(0.5));
        let cf = fingerprint_config(&IndexConfig::empty());
        let _ = cache.get_or_compute(qf, cf, || 1.0);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn bounded_cache_evicts_but_never_changes_values() {
        let cache = CostCache::new();
        cache.set_capacity(16); // 1 slot per shard
        let qs: Vec<Fingerprint> = (0..200)
            .map(|i| fingerprint_query(&q(i as f64 / 200.0)))
            .collect();
        let cf = fingerprint_config(&IndexConfig::empty());
        // Two passes over 200 distinct keys through ≤16 slots: values
        // must stay bit-identical to the pure model on every lookup.
        for pass in 0..2 {
            for (i, &qf) in qs.iter().enumerate() {
                let v = cache.get_or_compute(qf, cf, || i as f64 * 1.5);
                assert_eq!(v, i as f64 * 1.5, "pass {pass} key {i}");
            }
        }
        let s = cache.stats();
        assert!(s.entries <= 16, "resident {} > capacity", s.entries);
        assert!(s.evictions > 0, "200 keys through 16 slots must evict");
        assert_eq!(s.capacity, 16);
        assert_eq!(s.hits + s.misses, 400);
    }

    #[test]
    fn zero_capacity_stores_nothing_and_capacity_one_works() {
        let cf = fingerprint_config(&IndexConfig::empty());
        let cache = CostCache::new();
        cache.set_capacity(0);
        let qf = fingerprint_query(&q(0.5));
        assert_eq!(cache.get_or_compute(qf, cf, || 7.0), 7.0);
        assert_eq!(cache.get_or_compute(qf, cf, || 7.0), 7.0);
        assert_eq!(cache.stats().entries, 0);
        let one = CostCache::new();
        one.set_capacity(1);
        for i in 0..50 {
            let qf = fingerprint_query(&q(i as f64 / 50.0));
            assert_eq!(one.get_or_compute(qf, cf, || i as f64), i as f64);
        }
        assert!(one.stats().entries <= SHARDS, "per-shard cap is 1");
    }

    #[test]
    fn second_chance_prefers_hot_entries() {
        let cache = CostCache::new();
        // 2 slots per shard: enough room for the clock to pass over a
        // referenced hot entry and land on an unreferenced cold one.
        cache.set_capacity(32);
        let hot = fingerprint_query(&q(0.001));
        let cf = fingerprint_config(&IndexConfig::empty());
        let _ = cache.get_or_compute(hot, cf, || 1.0);
        let mut hot_hits = 0;
        for i in 0..100 {
            // Re-touch the hot key (sets its reference bit), then insert
            // a cold key that may land in the same shard.
            let v = cache.get_or_compute(hot, cf, || f64::NAN);
            assert_eq!(v, 1.0, "hot entry round {i}");
            hot_hits += 1;
            let cold = fingerprint_query(&q(0.002 + i as f64 / 1000.0));
            let _ = cache.get_or_compute(cold, cf, || 2.0);
        }
        assert_eq!(hot_hits, 100);
        // The referenced bit must have spared the hot entry every round:
        // its 100 re-touches were all hits (else get_or_compute would
        // have returned NAN's compute above and the assert_eq failed).
    }

    #[test]
    fn shrinking_capacity_trims_immediately() {
        let cache = CostCache::new();
        let cf = fingerprint_config(&IndexConfig::empty());
        for i in 0..100 {
            let qf = fingerprint_query(&q(i as f64 / 100.0));
            let _ = cache.get_or_compute(qf, cf, || i as f64);
        }
        assert_eq!(cache.stats().entries, 100);
        cache.set_capacity(32);
        let s = cache.stats();
        assert!(s.entries <= 32, "trim left {} resident", s.entries);
        assert!(s.evictions >= 68);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = CostCache::new();
        let qs: Vec<Fingerprint> = (0..64)
            .map(|i| fingerprint_query(&q(i as f64 / 64.0)))
            .collect();
        let cf = fingerprint_config(&IndexConfig::empty());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (i, &qf) in qs.iter().enumerate() {
                        let v = cache.get_or_compute(qf, cf, || i as f64);
                        assert_eq!(v, i as f64);
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 64);
    }
}
