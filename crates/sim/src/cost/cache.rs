//! Thread-safe what-if cost cache.
//!
//! Every advisor training run, probing epoch, and injection search issues
//! the same `c(q, d, I)` what-if calls over and over — across epochs,
//! across runs of one experiment cell, and across cells of a grid. The
//! cost model is pure (a function of the catalog, query, and index
//! configuration), so repeated probes are pure waste. This module
//! memoizes them behind a sharded `RwLock` map keyed on 128-bit
//! structural fingerprints of the query and configuration.
//!
//! Concurrency: reads take a shard read-lock; misses compute *outside*
//! any lock and then take the shard write-lock to publish. Two threads
//! may race to compute the same entry, but the cost model is
//! deterministic, so both compute the identical value and the insert is
//! idempotent — correctness never depends on who wins.
//!
//! Determinism: a cache hit returns a previously computed `f64`
//! bit-for-bit, so cached and uncached runs produce identical results
//! (see `DESIGN.md`, "Determinism guarantees").

use crate::index::IndexConfig;
use crate::predicate::PredOp;
use crate::query::{Aggregate, Query};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// Number of independently locked shards. A power of two so the shard
/// pick is a mask; 16 keeps contention negligible at the thread counts
/// the experiment runner uses without bloating an idle `Database`.
const SHARDS: usize = 16;

/// A 128-bit structural fingerprint (two independent FNV-1a streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    /// The fingerprint as one 128-bit value (observability keys).
    pub fn to_u128(self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Incremental FNV-1a × 2 hasher over canonical byte encodings.
struct Fnv2 {
    a: u64,
    b: u64,
}

impl Fnv2 {
    fn new() -> Self {
        // Standard FNV-1a offset for stream A; an arbitrary odd constant
        // (pi fraction) decorrelates stream B.
        Fnv2 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x2437_54c8_10f8_6cb5,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01b3);
            self.b = (self.b ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_0197);
        }
    }

    fn u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn finish(self) -> Fingerprint {
        Fingerprint {
            a: self.a,
            b: self.b,
        }
    }
}

/// Structural fingerprint of a query: every field that can influence its
/// cost, tagged and length-prefixed so distinct structures cannot
/// collide by concatenation.
pub fn fingerprint_query(q: &Query) -> Fingerprint {
    let mut h = Fnv2::new();
    h.u32(q.tables.len() as u32);
    for t in &q.tables {
        h.u32(t.0);
    }
    h.u32(q.joins.len() as u32);
    for j in &q.joins {
        h.u32(j.left.0);
        h.u32(j.right.0);
    }
    h.u32(q.predicates.len() as u32);
    for p in &q.predicates {
        h.u32(p.col.0);
        match &p.op {
            PredOp::Eq(v) => {
                h.u32(1);
                h.f64(*v);
            }
            PredOp::Le(v) => {
                h.u32(2);
                h.f64(*v);
            }
            PredOp::Ge(v) => {
                h.u32(3);
                h.f64(*v);
            }
            PredOp::Between(lo, hi) => {
                h.u32(4);
                h.f64(*lo);
                h.f64(*hi);
            }
            PredOp::In(vs) => {
                h.u32(5);
                h.u32(vs.len() as u32);
                for v in vs {
                    h.f64(*v);
                }
            }
        }
    }
    h.u32(q.projection.len() as u32);
    for c in &q.projection {
        h.u32(c.0);
    }
    h.u32(q.aggregates.len() as u32);
    for a in &q.aggregates {
        match a {
            Aggregate::CountStar => h.u32(0xffff_ffff),
            Aggregate::Sum(c) => {
                h.u32(1);
                h.u32(c.0);
            }
            Aggregate::Avg(c) => {
                h.u32(2);
                h.u32(c.0);
            }
            Aggregate::Min(c) => {
                h.u32(3);
                h.u32(c.0);
            }
            Aggregate::Max(c) => {
                h.u32(4);
                h.u32(c.0);
            }
        }
    }
    h.u32(q.group_by.len() as u32);
    for c in &q.group_by {
        h.u32(c.0);
    }
    h.u32(q.order_by.len() as u32);
    for c in &q.order_by {
        h.u32(c.0);
    }
    h.u64(q.limit.map_or(u64::MAX, |l| l.wrapping_add(1)));
    h.finish()
}

/// Structural fingerprint of a single index (its column list). Keys the
/// per-(query, index) benefit matrix the same way [`fingerprint_config`]
/// keys the per-(query, config) cost cache.
pub fn fingerprint_index(idx: &crate::index::Index) -> Fingerprint {
    let mut h = Fnv2::new();
    h.u32(idx.columns.len() as u32);
    for c in &idx.columns {
        h.u32(c.0);
    }
    h.finish()
}

/// Structural fingerprint of an index configuration (order-sensitive:
/// the cost model is order-insensitive, so keying on insertion order
/// only costs duplicate entries, never correctness).
pub fn fingerprint_config(cfg: &IndexConfig) -> Fingerprint {
    let mut h = Fnv2::new();
    h.u32(cfg.len() as u32);
    for idx in cfg.indexes() {
        h.u32(idx.columns.len() as u32);
        for c in &idx.columns {
            h.u32(c.0);
        }
    }
    h.finish()
}

/// Hit/miss counters and current size of a [`CostCache`], as returned by
/// [`CostCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the cost model.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe `(query, config) → cost` memo table.
pub struct CostCache {
    shards: Vec<RwLock<HashMap<(Fingerprint, Fingerprint), f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: AtomicBool,
}

impl Default for CostCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CostCache {
    /// An empty, enabled cache.
    pub fn new() -> Self {
        CostCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Enable or disable memoization (lookups bypass the map when
    /// disabled; existing entries are kept). Used by benchmarks to
    /// measure cold-path cost.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether memoization is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Look up `(q, cfg)`, computing and publishing via `compute` on a
    /// miss. `compute` runs outside all locks.
    pub fn get_or_compute(
        &self,
        q: Fingerprint,
        cfg: Fingerprint,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        if !self.is_enabled() {
            return compute();
        }
        let key = (q, cfg);
        let shard = &self.shards[(q.a ^ cfg.a) as usize & (SHARDS - 1)];
        if let Some(&v) = shard.read().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        shard
            .write()
            .expect("cache shard poisoned")
            .entry(key)
            .or_insert(v);
        v
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache shard poisoned").len())
                .sum(),
        }
    }

    /// Drop all entries and zero the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().expect("cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Index;
    use crate::schema::ColumnId;

    fn q(frac: f64) -> Query {
        Query {
            tables: vec![crate::schema::TableId(0)],
            joins: vec![],
            predicates: vec![crate::predicate::Predicate::eq(ColumnId(0), frac)],
            projection: vec![ColumnId(0)],
            aggregates: vec![],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn distinct_structures_get_distinct_fingerprints() {
        let a = fingerprint_query(&q(0.25));
        let b = fingerprint_query(&q(0.75));
        assert_ne!(a, b);
        let c1 = fingerprint_config(&IndexConfig::empty());
        let c2 = fingerprint_config(&IndexConfig::from_indexes([Index::single(ColumnId(1))]));
        assert_ne!(c1, c2);
    }

    #[test]
    fn fingerprints_are_stable() {
        assert_eq!(fingerprint_query(&q(0.5)), fingerprint_query(&q(0.5)));
    }

    #[test]
    fn hit_returns_cached_value_and_counts() {
        let cache = CostCache::new();
        let qf = fingerprint_query(&q(0.5));
        let cf = fingerprint_config(&IndexConfig::empty());
        let first = cache.get_or_compute(qf, cf, || 42.0);
        let second = cache.get_or_compute(qf, cf, || panic!("must hit"));
        assert_eq!(first, 42.0);
        assert_eq!(second, 42.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache = CostCache::new();
        cache.set_enabled(false);
        let qf = fingerprint_query(&q(0.5));
        let cf = fingerprint_config(&IndexConfig::empty());
        assert_eq!(cache.get_or_compute(qf, cf, || 1.0), 1.0);
        assert_eq!(cache.get_or_compute(qf, cf, || 2.0), 2.0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = CostCache::new();
        let qf = fingerprint_query(&q(0.5));
        let cf = fingerprint_config(&IndexConfig::empty());
        let _ = cache.get_or_compute(qf, cf, || 1.0);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = CostCache::new();
        let qs: Vec<Fingerprint> = (0..64)
            .map(|i| fingerprint_query(&q(i as f64 / 64.0)))
            .collect();
        let cf = fingerprint_config(&IndexConfig::empty());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (i, &qf) in qs.iter().enumerate() {
                        let v = cache.get_or_compute(qf, cf, || i as f64);
                        assert_eq!(v, i as f64);
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 64);
    }
}
