//! Incremental what-if evaluation: the per-(query, index) benefit matrix.
//!
//! Every advisor action loop evaluates thousands of index configurations
//! that differ by a single index. Full re-costing treats each
//! configuration as opaque, paying `O(|W| · |I|)` model work per
//! evaluation; the per-(query, config) [`super::CostCache`] removes exact
//! repeats but still stores the combinatorial `(query, config)` space.
//! This module exploits the cost model's structure instead:
//!
//! * For a **single-table query** the model's plan is
//!   `surcharges(min(seq_scan, index_scan(i) for i in config))` where the
//!   surcharges depend only on the (config-independent) filtered
//!   cardinality. The per-index access costs are a *matrix* indexed by
//!   `(query, index)` — `O(|W| · L)` entries, not `O(|W| · 2^L)` — and a
//!   config cost is a running `min` over the row.
//! * For a **join query** the greedy left-deep skeleton — join order,
//!   per-step cardinalities, join columns, and the final result
//!   cardinality — is itself config-independent (the order sorts by
//!   filtered cardinalities, which no index changes). The model exposes
//!   it as a `JoinPlan`, and the per-step costs decompose into the
//!   same `(query, index)` access cells plus a second family of
//!   `(query, index)` *nested-loop* cells (the probe cost of an index
//!   that leads on the step's join key, for the step's fixed outer
//!   cardinality). A config cost is per-step running `min`s folded by
//!   `AnalyticalCostModel::join_cost_from_steps`, and a config *edit*
//!   re-costs only the step whose table the index touches.
//! * Only **genuinely non-decomposable** shapes — a table scanned twice
//!   in one query (raw self-join), where `(query, index)` cell keys
//!   would collide across steps — take the full-model fallback,
//!   memoized by the [`super::CostCache`].
//!
//! Equality contract: matrix answers are **bit-identical** to the scalar
//! model. Both paths call the same crate-internal `table_access` /
//! `index_access_cost` / `index_nl_cost` / `join_cost_from_steps` /
//! `apply_surcharges` helpers on the same `JoinPlan` skeleton, the
//! `min` runs over the same values, and "index not applicable" is
//! encoded as `+∞` so the `e < best` comparison skips it exactly like the
//! scalar path's `continue`. `tests/whatif_differential.rs` pins this
//! with proptest-generated workloads and edit sequences.
//!
//! Concurrency mirrors [`super::CostCache`]: sharded `RwLock` maps,
//! misses compute outside locks, racy inserts are idempotent because the
//! model is pure.

use super::cache::{fingerprint_index, Fingerprint};
use super::model::{AnalyticalCostModel, JoinPlan, JoinStep, JoinStepState, TableAccess};
use super::Catalog;
use crate::index::{Index, IndexConfig};
use crate::query::Query;
use crate::schema::{ColumnId, TableId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Shard count (power of two, same rationale as the cost cache).
const SHARDS: usize = 16;

/// Approximate resident footprint of one matrix cell: the 32-byte
/// `(Fingerprint, Fingerprint)` key, the 8-byte cost, and amortized
/// hash-table bucket overhead. Used for the `matrix_bytes` accounting —
/// an estimate, deliberately conservative rather than allocator-exact,
/// so the byte budget bounds real memory.
const CELL_BYTES: usize = 48;

/// How a query's cost depends on the index configuration.
///
/// Classification decision (memoized per query fingerprint):
///
/// ```text
/// tables = 0 ─────────────────────────────► Trivial
/// tables = 1 ─────────────────────────────► Decomposable
/// tables ≥ 2, all tables distinct ────────► JoinDecomposable
/// tables ≥ 2, some table scanned twice ───► JoinCoupled (full model)
/// ```
///
/// Duplicate scans of one table are the genuinely non-decomposable case:
/// the matrix keys cells by `(query, index)` and resolves the step an
/// index belongs to via the index's table, which is ambiguous when two
/// steps scan the same table.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QueryShape {
    /// No tables: cost is 0 under every configuration.
    Trivial,
    /// Single table: cost decomposes into a per-index matrix row.
    Decomposable {
        /// The query's only table.
        table: TableId,
        /// Sequential-scan baseline (the row's "no index" entry).
        seq_cost: f64,
        /// Filtered output cardinality (surcharge input).
        rows_out: f64,
    },
    /// Multi-table with distinct tables: the config-independent
    /// [`JoinPlan`] skeleton decomposes the cost into per-step access
    /// and nested-loop matrix cells.
    JoinDecomposable {
        /// The memoized plan skeleton (shared with session states).
        plan: Arc<JoinPlan>,
    },
    /// A table is scanned more than once: `(query, index)` cell keys
    /// would be ambiguous across steps, so only the full model is
    /// correct.
    JoinCoupled,
}

/// Counter snapshot of a [`BenefitMatrix`], as returned by
/// [`BenefitMatrix::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixStats {
    /// Per-query config evaluations answered from the single-table
    /// matrix rows (decomposable shape, including trivial queries).
    pub matrix_evals: u64,
    /// Per-query config evaluations answered from a decomposed join
    /// plan (join-decomposable shape).
    pub join_evals: u64,
    /// Per-query evaluations that fell back to the full model
    /// (join-coupled shape).
    pub full_fallbacks: u64,
    /// Delta operations (`what_if_delta`, incremental-eval previews and
    /// commits).
    pub delta_evals: u64,
    /// Matrix-cell lookups answered from the resident matrix (access and
    /// nested-loop cells).
    pub entry_hits: u64,
    /// Matrix-cell lookups that computed a fresh cost (access and
    /// nested-loop cells).
    pub entry_misses: u64,
    /// `(query, index)` access cells currently resident.
    pub entries: usize,
    /// `(query, index)` nested-loop cells currently resident.
    pub nl_entries: usize,
    /// Query shapes classified so far.
    pub shapes: usize,
    /// Approximate resident cell footprint in bytes
    /// (`(entries + nl_entries) × 48`).
    pub approx_bytes: usize,
    /// High-water mark of [`Self::approx_bytes`] since the last clear.
    pub peak_bytes: usize,
    /// Shard-clear compactions run by the byte budget (0 while
    /// unbudgeted).
    pub compactions: u64,
    /// Configured byte budget (`usize::MAX` = unbounded).
    pub byte_budget: usize,
}

impl MatrixStats {
    /// All per-query evaluations counted (matrix, join, fallback).
    fn evals(&self) -> u64 {
        self.matrix_evals + self.join_evals + self.full_fallbacks
    }

    /// Full-model fallbacks as a fraction of all per-query evaluations
    /// (0 when nothing was evaluated).
    pub fn fallback_rate(&self) -> f64 {
        let total = self.evals();
        if total == 0 {
            0.0
        } else {
            self.full_fallbacks as f64 / total as f64
        }
    }

    /// Matrix-answered evaluations (single-table rows and decomposed
    /// joins) as a fraction of all per-query evaluations (0 when nothing
    /// was evaluated).
    pub fn matrix_rate(&self) -> f64 {
        let total = self.evals();
        if total == 0 {
            0.0
        } else {
            (self.matrix_evals + self.join_evals) as f64 / total as f64
        }
    }
}

/// A single-index edit against a base configuration, for
/// [`crate::db::Database::what_if_delta`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigDelta {
    /// Add this index to the base configuration.
    Add(Index),
    /// Remove this index from the base configuration.
    Remove(Index),
}

impl ConfigDelta {
    /// The edited configuration (`base ± index`).
    pub fn apply(&self, base: &IndexConfig) -> IndexConfig {
        let mut cfg = base.clone();
        match self {
            ConfigDelta::Add(idx) => {
                cfg.add(idx.clone());
            }
            ConfigDelta::Remove(idx) => {
                cfg.remove(idx);
            }
        }
        cfg
    }
}

/// Per-query state of an [`IncrementalEval`] session.
#[derive(Debug, Clone)]
pub(crate) enum QueryState {
    /// No tables: cost pinned at 0.
    Trivial,
    /// Decomposable: the running `min` over applied matrix entries plus
    /// the finalized (surcharged) per-query cost.
    Raw {
        /// The query's table (matrix-row key material).
        table: TableId,
        /// Filtered cardinality (surcharge input).
        rows_out: f64,
        /// `min(seq_cost, entries of the indexes applied so far)`.
        raw: f64,
        /// `apply_surcharges(raw)` — the per-query cost under the
        /// session's current configuration.
        cost: f64,
    },
    /// Join-decomposable: the memoized plan skeleton plus per-step
    /// running minima. Adding an index re-costs only the step whose
    /// table the index covers; every other step's state is untouched.
    Join {
        /// The plan skeleton (shared with the matrix's shape entry).
        plan: Arc<JoinPlan>,
        /// Per-step `(raw access, best nested loop)` minima over the
        /// indexes applied so far, in plan order.
        steps: Vec<JoinStepState>,
        /// `join_cost_from_steps(steps)` — the per-query cost under the
        /// session's current configuration.
        cost: f64,
    },
    /// Join-coupled (or matrix disabled): full per-query cost under the
    /// session's current configuration.
    Full(f64),
}

impl QueryState {
    /// The per-query cost under the session's current configuration.
    pub(crate) fn cost(&self) -> f64 {
        match self {
            QueryState::Trivial => 0.0,
            QueryState::Raw { cost, .. } => *cost,
            QueryState::Join { cost, .. } => *cost,
            QueryState::Full(c) => *c,
        }
    }
}

/// Per-workload-entry evaluation state.
#[derive(Debug, Clone)]
pub(crate) struct EvalState {
    /// Fingerprint of the entry's query (computed once per session).
    pub(crate) qf: Fingerprint,
    /// Current cost state.
    pub(crate) kind: QueryState,
}

/// An incremental what-if evaluation session: per-query cost state for
/// one workload under a configuration built up one index at a time.
///
/// Created by [`crate::db::Database::whatif_eval_begin`] (empty
/// configuration), advanced by `whatif_eval_add`, previewed without
/// commitment by `whatif_eval_preview_add`. Plain data (no borrows), so
/// advisors can store one per episode. Totals are always recomputed as a
/// fresh frequency-weighted sum in workload order — never maintained via
/// `+= diff` — so they stay bit-identical to a scalar recompute.
#[derive(Debug, Clone)]
pub struct IncrementalEval {
    /// One state per workload entry, in workload order.
    pub(crate) states: Vec<EvalState>,
}

impl IncrementalEval {
    /// Number of workload entries tracked.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the session tracks an empty workload.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// The per-(query, index) benefit matrix with shape classification and
/// counters. Owned by [`crate::db::Database`] next to its
/// [`super::CostCache`].
pub struct BenefitMatrix {
    /// Query fingerprint → shape (lazily classified).
    shapes: RwLock<HashMap<Fingerprint, QueryShape>>,
    /// `(query, index)` → raw access cost; `+∞` = index not applicable.
    /// For join-decomposable queries the index's table resolves which
    /// plan step the cell belongs to (tables are distinct by shape
    /// classification, so the key is unambiguous).
    entries: Vec<RwLock<HashMap<(Fingerprint, Fingerprint), f64>>>,
    /// `(query, index)` → index nested-loop probe cost into the step the
    /// index's table identifies, for that step's fixed outer
    /// cardinality. Kept separate from `entries` because an index on a
    /// join key owns cells in *both* families under the same key.
    nl_entries: Vec<RwLock<HashMap<(Fingerprint, Fingerprint), f64>>>,
    enabled: AtomicBool,
    matrix_evals: AtomicU64,
    join_evals: AtomicU64,
    full_fallbacks: AtomicU64,
    delta_evals: AtomicU64,
    entry_hits: AtomicU64,
    entry_misses: AtomicU64,
    /// Resident cell count across both families (maintained on insert so
    /// the byte check is one atomic load, not 32 shard locks).
    cells: AtomicUsize,
    /// High-water mark of `cells × CELL_BYTES`.
    peak_bytes: AtomicUsize,
    /// Approximate byte budget; `usize::MAX` = unbounded (default).
    byte_budget: AtomicUsize,
    /// Next shard the rotating compactor clears (mod `2 × SHARDS`).
    compact_cursor: AtomicUsize,
    compactions: AtomicU64,
}

impl Default for BenefitMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl BenefitMatrix {
    /// An empty, enabled matrix.
    pub fn new() -> Self {
        BenefitMatrix {
            shapes: RwLock::new(HashMap::new()),
            entries: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            nl_entries: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            enabled: AtomicBool::new(true),
            matrix_evals: AtomicU64::new(0),
            join_evals: AtomicU64::new(0),
            full_fallbacks: AtomicU64::new(0),
            delta_evals: AtomicU64::new(0),
            entry_hits: AtomicU64::new(0),
            entry_misses: AtomicU64::new(0),
            cells: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            byte_budget: AtomicUsize::new(usize::MAX),
            compact_cursor: AtomicUsize::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Approximate resident cell footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.cells.load(Ordering::Relaxed) * CELL_BYTES
    }

    /// Bound the matrix's approximate cell footprint (`usize::MAX` =
    /// unbounded, the default). When an insert pushes the footprint past
    /// the budget, the compactor clears whole cell shards in rotation
    /// until back under; cleared cells recompute bit-identically on the
    /// next touch, so the budget trades recompute work for memory, never
    /// correctness. Shape classifications are tiny (one per distinct
    /// query) and are not subject to the budget.
    pub fn set_byte_budget(&self, bytes: usize) {
        self.byte_budget.store(bytes, Ordering::Relaxed);
        if self.approx_bytes() > bytes {
            self.compact(bytes);
        }
    }

    /// One fresh cell landed in a shard: maintain the footprint
    /// accounting and run the compactor if the budget is exceeded.
    fn note_insert(&self) {
        let cells = self.cells.fetch_add(1, Ordering::Relaxed) + 1;
        let bytes = cells * CELL_BYTES;
        self.peak_bytes.fetch_max(bytes, Ordering::Relaxed);
        let budget = self.byte_budget.load(Ordering::Relaxed);
        if budget != usize::MAX {
            pipa_obs::count("matrix_bytes", CELL_BYTES as u64);
            if bytes > budget {
                self.compact(budget);
            }
        }
    }

    /// Clear cell shards in rotation (access shards `0..SHARDS`, then
    /// nested-loop shards) until the footprint is back under `budget` or
    /// every shard was swept once.
    fn compact(&self, budget: usize) {
        for _ in 0..(2 * SHARDS) {
            if self.approx_bytes() <= budget {
                break;
            }
            let k = self.compact_cursor.fetch_add(1, Ordering::Relaxed) % (2 * SHARDS);
            let shard = if k < SHARDS {
                &self.entries[k]
            } else {
                &self.nl_entries[k - SHARDS]
            };
            let dropped = {
                let mut w = shard.write().expect("matrix shard poisoned");
                let n = w.len();
                w.clear();
                w.shrink_to_fit();
                n
            };
            if dropped > 0 {
                self.cells.fetch_sub(dropped, Ordering::Relaxed);
                self.compactions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Enable or disable the matrix (evaluations route to the full model
    /// when disabled; resident cells are kept). Benchmarks use this to
    /// measure the scalar path; results are identical either way.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the matrix is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Drop all cells and shapes and zero the counters.
    pub fn clear(&self) {
        self.shapes.write().expect("matrix shapes poisoned").clear();
        for s in self.entries.iter().chain(&self.nl_entries) {
            s.write().expect("matrix shard poisoned").clear();
        }
        self.matrix_evals.store(0, Ordering::Relaxed);
        self.join_evals.store(0, Ordering::Relaxed);
        self.full_fallbacks.store(0, Ordering::Relaxed);
        self.delta_evals.store(0, Ordering::Relaxed);
        self.entry_hits.store(0, Ordering::Relaxed);
        self.entry_misses.store(0, Ordering::Relaxed);
        self.cells.store(0, Ordering::Relaxed);
        self.peak_bytes.store(0, Ordering::Relaxed);
        self.compactions.store(0, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MatrixStats {
        MatrixStats {
            matrix_evals: self.matrix_evals.load(Ordering::Relaxed),
            join_evals: self.join_evals.load(Ordering::Relaxed),
            full_fallbacks: self.full_fallbacks.load(Ordering::Relaxed),
            delta_evals: self.delta_evals.load(Ordering::Relaxed),
            entry_hits: self.entry_hits.load(Ordering::Relaxed),
            entry_misses: self.entry_misses.load(Ordering::Relaxed),
            entries: self
                .entries
                .iter()
                .map(|s| s.read().expect("matrix shard poisoned").len())
                .sum(),
            nl_entries: self
                .nl_entries
                .iter()
                .map(|s| s.read().expect("matrix shard poisoned").len())
                .sum(),
            shapes: self.shapes.read().expect("matrix shapes poisoned").len(),
            approx_bytes: self.approx_bytes(),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            byte_budget: self.byte_budget.load(Ordering::Relaxed),
        }
    }

    /// One per-query evaluation was answered from the matrix.
    pub(crate) fn note_matrix_eval(&self) {
        self.matrix_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// One per-query evaluation was answered from a decomposed join plan.
    pub(crate) fn note_join_eval(&self) {
        self.join_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// One per-query evaluation fell back to the full model.
    pub(crate) fn note_fallback(&self) {
        self.full_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// One delta operation was requested.
    pub(crate) fn note_delta(&self) {
        self.delta_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// Classify `q` (memoized by fingerprint).
    pub(crate) fn shape(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        qf: Fingerprint,
    ) -> QueryShape {
        if let Some(s) = self
            .shapes
            .read()
            .expect("matrix shapes poisoned")
            .get(&qf)
        {
            return s.clone();
        }
        let s = if q.tables.is_empty() {
            QueryShape::Trivial
        } else if q.tables.len() == 1 {
            let acc = model.table_access(cat, q, q.tables[0]);
            QueryShape::Decomposable {
                table: acc.table,
                seq_cost: acc.seq_cost,
                rows_out: acc.rows_out,
            }
        } else if q
            .tables
            .iter()
            .enumerate()
            .any(|(i, t)| q.tables[..i].contains(t))
        {
            // A table scanned twice: `(query, index)` cell keys can't
            // tell the two steps apart, so only the full model is
            // correct.
            QueryShape::JoinCoupled
        } else {
            QueryShape::JoinDecomposable {
                plan: Arc::new(model.join_plan(cat, q)),
            }
        };
        self.shapes
            .write()
            .expect("matrix shapes poisoned")
            .entry(qf)
            .or_insert(s)
            .clone()
    }

    /// One matrix cell: the raw access cost of scanning the query's
    /// table through `index` (`+∞` when the index is on another table or
    /// unusable). `acc` is a lazily-built [`TableAccess`] shared across a
    /// row's lookups so a cold row costs one `table_access` total.
    fn cell<'q>(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        key: &QueryKey<'q>,
        idxf: Fingerprint,
        index: &Index,
        acc: &mut Option<TableAccess<'q>>,
    ) -> f64 {
        let cell_key = (key.qf, idxf);
        let shard = &self.entries[(key.qf.to_u128() as u64 ^ idxf.to_u128() as u64) as usize
            & (SHARDS - 1)];
        if let Some(&v) = shard.read().expect("matrix shard poisoned").get(&cell_key) {
            self.entry_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.entry_misses.fetch_add(1, Ordering::Relaxed);
        let a = acc.get_or_insert_with(|| model.table_access(cat, key.q, key.table));
        let v = model
            .index_access_cost(cat, a, index)
            .unwrap_or(f64::INFINITY);
        let inserted = {
            let mut w = shard.write().expect("matrix shard poisoned");
            let before = w.len();
            w.entry(cell_key).or_insert(v);
            w.len() > before
        };
        if inserted {
            self.note_insert();
        }
        v
    }

    /// `min(seq_cost, matrix row entries for the keyed indexes)` — the
    /// raw (pre-surcharge) best access cost of a decomposable query.
    /// Bit-identical to the scalar `best_access_path` because
    /// inapplicable indexes are `+∞` and `+∞ < best` never fires, exactly
    /// like the scalar path's `continue`.
    pub(crate) fn best_raw(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        key: &QueryKey<'_>,
        seq_cost: f64,
        keyed: &[(Fingerprint, &Index)],
    ) -> f64 {
        let mut acc = None;
        let mut best = seq_cost;
        for &(idxf, index) in keyed {
            let e = self.cell(model, cat, key, idxf, index, &mut acc);
            if e < best {
                best = e;
            }
        }
        best
    }

    /// One matrix cell for a single index (the delta hot path).
    pub(crate) fn index_cell(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        key: &QueryKey<'_>,
        idxf: Fingerprint,
        index: &Index,
    ) -> f64 {
        let mut acc = None;
        self.cell(model, cat, key, idxf, index, &mut acc)
    }

    /// One nested-loop cell: the probe cost of driving `index` on the
    /// step's join key for the step's fixed outer cardinality. Callers
    /// pass only applicable candidates (index on the step's table,
    /// leading on the step's join column — a pure metadata check), so
    /// unlike access cells there is no `+∞` encoding here.
    #[allow(clippy::too_many_arguments)]
    fn nl_cell(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        qf: Fingerprint,
        step: &JoinStep,
        idxf: Fingerprint,
        index: &Index,
        col: ColumnId,
    ) -> f64 {
        let cell_key = (qf, idxf);
        let shard = &self.nl_entries
            [(qf.to_u128() as u64 ^ idxf.to_u128() as u64) as usize & (SHARDS - 1)];
        if let Some(&v) = shard.read().expect("matrix shard poisoned").get(&cell_key) {
            self.entry_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.entry_misses.fetch_add(1, Ordering::Relaxed);
        let v = model.index_nl_cost(cat, step.table, index, col, step.outer_rows);
        let inserted = {
            let mut w = shard.write().expect("matrix shard poisoned");
            let before = w.len();
            w.entry(cell_key).or_insert(v);
            w.len() > before
        };
        if inserted {
            self.note_insert();
        }
        v
    }

    /// Per-step [`JoinStepState`]s of a decomposed join under the keyed
    /// configuration: for each step, `raw = min(seq_cost, access cells
    /// of the config's indexes on that table)` and `nl = min(nested-loop
    /// cells of indexes leading on the step's join key)`. Bit-identical
    /// to [`AnalyticalCostModel::join_step_state`] because both paths
    /// take the `min` of the same `index_access_cost` / `index_nl_cost`
    /// values over the same applicable candidates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn join_states(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        qf: Fingerprint,
        plan: &JoinPlan,
        keyed: &[(Fingerprint, &Index)],
    ) -> Vec<JoinStepState> {
        plan.steps
            .iter()
            .map(|step| {
                let mut acc = None;
                let key = QueryKey {
                    q,
                    qf,
                    table: step.table,
                };
                let mut raw = step.seq_cost;
                for &(idxf, index) in keyed {
                    // Only this step's table: the cell key `(qf, idxf)`
                    // must always hold the cost against the index's own
                    // table, never another step's `+∞`.
                    if index.table(cat.schema) != step.table {
                        continue;
                    }
                    let e = self.cell(model, cat, &key, idxf, index, &mut acc);
                    if e < raw {
                        raw = e;
                    }
                }
                let mut nl = f64::INFINITY;
                if let Some(col) = step.inner_col {
                    for &(idxf, index) in keyed {
                        if index.table(cat.schema) == step.table && index.leading() == col {
                            let c = self.nl_cell(model, cat, qf, step, idxf, index, col);
                            if c < nl {
                                nl = c;
                            }
                        }
                    }
                }
                JoinStepState { raw, nl }
            })
            .collect()
    }

    /// Full-config cost of a decomposed join: per-step minima from the
    /// matrix cells folded through the model's shared accumulation loop.
    pub(crate) fn join_eval(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        qf: Fingerprint,
        plan: &JoinPlan,
        keyed: &[(Fingerprint, &Index)],
    ) -> f64 {
        let states = self.join_states(model, cat, q, qf, plan, keyed);
        model.join_cost_from_steps(q, plan, &states)
    }

    /// One step's state with `index` folded into its minima (access cell
    /// always; nested-loop cell only when the index leads on the step's
    /// join column).
    #[allow(clippy::too_many_arguments)]
    fn step_with_index(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        qf: Fingerprint,
        step: &JoinStep,
        mut st: JoinStepState,
        idxf: Fingerprint,
        index: &Index,
    ) -> JoinStepState {
        let key = QueryKey {
            q,
            qf,
            table: step.table,
        };
        let e = self.index_cell(model, cat, &key, idxf, index);
        if e < st.raw {
            st.raw = e;
        }
        if let Some(col) = step.inner_col {
            if index.leading() == col {
                let c = self.nl_cell(model, cat, qf, step, idxf, index, col);
                if c < st.nl {
                    st.nl = c;
                }
            }
        }
        st
    }

    /// Apply one added index to a join session's per-step states,
    /// re-costing only the step whose table the index covers (tables are
    /// distinct by shape classification, so at most one step matches; an
    /// index on a table the query never scans touches nothing).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn join_apply_add(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        qf: Fingerprint,
        plan: &JoinPlan,
        steps: &mut [JoinStepState],
        idxf: Fingerprint,
        index: &Index,
    ) {
        let t = index.table(cat.schema);
        if let Some(k) = plan.steps.iter().position(|s| s.table == t) {
            steps[k] =
                self.step_with_index(model, cat, q, qf, &plan.steps[k], steps[k], idxf, index);
        }
    }

    /// Cost of a join session's configuration plus one index, without
    /// committing: the touched step's minima are recomputed (one or two
    /// cell probes) and substituted into the shared accumulation loop;
    /// untouched steps are read as-is.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn join_preview_add(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        qf: Fingerprint,
        plan: &JoinPlan,
        steps: &[JoinStepState],
        idxf: Fingerprint,
        index: &Index,
    ) -> f64 {
        let t = index.table(cat.schema);
        let replace = plan
            .steps
            .iter()
            .position(|s| s.table == t)
            .map(|k| {
                (
                    k,
                    self.step_with_index(model, cat, q, qf, &plan.steps[k], steps[k], idxf, index),
                )
            });
        model.join_cost_substituted(q, plan, steps, replace)
    }
}

/// Identity of a decomposable query inside the matrix: the query, its
/// structural fingerprint, and its single table.
pub(crate) struct QueryKey<'q> {
    pub(crate) q: &'q Query,
    pub(crate) qf: Fingerprint,
    pub(crate) table: TableId,
}

/// Fingerprint every index of a configuration once (hoisted out of the
/// per-query loops).
pub(crate) fn keyed_indexes(cfg: &IndexConfig) -> Vec<(Fingerprint, &Index)> {
    cfg.indexes()
        .iter()
        .map(|i| (fingerprint_index(i), i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cache::fingerprint_query;
    use crate::cost::{CostModel, PAGE_SIZE};
    use crate::predicate::Predicate;
    use crate::query::QueryBuilder;
    use crate::schema::{ColumnId, DataType, Schema};
    use crate::stats::{ColumnStats, TableStats};

    struct Fixture {
        schema: Schema,
        tstats: Vec<TableStats>,
        cstats: Vec<ColumnStats>,
    }

    impl Fixture {
        fn new() -> Self {
            let mut schema = Schema::new();
            schema.add_table(
                "fact",
                500_000,
                &[
                    ("f_id", DataType::BigInt),
                    ("f_dim", DataType::Int),
                    ("f_price", DataType::Decimal),
                ],
            );
            schema.add_table(
                "dim",
                1000,
                &[("d_id", DataType::Int), ("d_cat", DataType::Int)],
            );
            let tstats = schema
                .tables()
                .iter()
                .map(|t| {
                    let rows = t.base_rows;
                    let width = schema.row_width(t.id) as u64;
                    TableStats {
                        rows,
                        pages: (rows * width).div_ceil(PAGE_SIZE).max(1),
                    }
                })
                .collect();
            let cstats = schema
                .columns()
                .iter()
                .map(|c| {
                    let rows = schema.table(c.table).base_rows;
                    let ndv = match c.name.as_str() {
                        "f_id" => rows,
                        "f_dim" | "d_id" => 1000,
                        "f_price" => 10_000,
                        "d_cat" => 10,
                        _ => unreachable!(),
                    };
                    ColumnStats::uniform(c.id, c.ty, ndv, 0, ndv as i64 - 1)
                })
                .collect();
            Fixture {
                schema,
                tstats,
                cstats,
            }
        }

        fn cat(&self) -> Catalog<'_> {
            Catalog {
                schema: &self.schema,
                table_stats: &self.tstats,
                column_stats: &self.cstats,
            }
        }

        fn col(&self, n: &str) -> ColumnId {
            self.schema.column_id(n).unwrap()
        }
    }

    fn eval_decomposable(
        m: &BenefitMatrix,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        cfg: &IndexConfig,
    ) -> f64 {
        let qf = fingerprint_query(q);
        match m.shape(model, cat, q, qf) {
            QueryShape::Decomposable {
                table,
                seq_cost,
                rows_out,
            } => {
                let keyed = keyed_indexes(cfg);
                let raw = m.best_raw(model, cat, &QueryKey { q, qf, table }, seq_cost, &keyed);
                model.apply_surcharges(q, raw, rows_out)
            }
            s => panic!("expected decomposable shape, got {s:?}"),
        }
    }

    #[test]
    fn single_table_costs_match_the_scalar_model_bit_for_bit() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_dim"), 0.4))
            .filter(&fx.schema, Predicate::between(fx.col("f_price"), 0.1, 0.3))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let configs = [
            IndexConfig::empty(),
            IndexConfig::from_indexes([Index::single(fx.col("f_dim"))]),
            IndexConfig::from_indexes([Index::single(fx.col("d_cat"))]),
            IndexConfig::from_indexes([
                Index::single(fx.col("f_price")),
                Index::single(fx.col("f_dim")),
                Index::multi(&fx.schema, vec![fx.col("f_dim"), fx.col("f_price")]).unwrap(),
            ]),
        ];
        for cfg in &configs {
            let scalar = model.query_cost(fx.cat(), &q, cfg);
            // Cold then warm: both must be bit-identical to the scalar path.
            let cold = eval_decomposable(&m, &model, fx.cat(), &q, cfg);
            let warm = eval_decomposable(&m, &model, fx.cat(), &q, cfg);
            assert_eq!(scalar.to_bits(), cold.to_bits());
            assert_eq!(scalar.to_bits(), warm.to_bits());
        }
        let s = m.stats();
        assert!(s.entry_hits > 0, "warm pass must hit resident cells");
        assert!(s.entries > 0 && s.shapes == 1);
    }

    #[test]
    fn join_queries_classify_as_join_decomposable() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .join(&fx.schema, fx.col("f_dim"), fx.col("d_id"))
            .filter(&fx.schema, Predicate::eq(fx.col("d_id"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let qf = fingerprint_query(&q);
        match m.shape(&model, fx.cat(), &q, qf) {
            QueryShape::JoinDecomposable { plan } => {
                assert_eq!(plan.steps.len(), 2);
                // Every later step carries the join column it probes on.
                assert!(plan.steps[1].inner_col.is_some());
            }
            s => panic!("expected join-decomposable shape, got {s:?}"),
        }
    }

    #[test]
    fn duplicate_table_scans_classify_as_join_coupled() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        // A raw self-join scanning `fact` twice: the builder dedupes
        // tables, so construct the query directly.
        let mut q = QueryBuilder::new()
            .join(&fx.schema, fx.col("f_dim"), fx.col("d_id"))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let fact = fx.schema.table_of(fx.col("f_id"));
        q.tables.push(fact);
        let qf = fingerprint_query(&q);
        assert_eq!(m.shape(&model, fx.cat(), &q, qf), QueryShape::JoinCoupled);
    }

    #[test]
    fn join_matrix_costs_match_the_scalar_model_bit_for_bit() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .join(&fx.schema, fx.col("f_dim"), fx.col("d_id"))
            .filter(&fx.schema, Predicate::eq(fx.col("d_cat"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let qf = fingerprint_query(&q);
        let QueryShape::JoinDecomposable { plan } = m.shape(&model, fx.cat(), &q, qf) else {
            panic!("expected join-decomposable shape");
        };
        let configs = [
            IndexConfig::empty(),
            // Leads on the fact join key: enables the nested loop.
            IndexConfig::from_indexes([Index::single(fx.col("f_dim"))]),
            // Dimension-side filter index plus the join-key index.
            IndexConfig::from_indexes([
                Index::single(fx.col("d_cat")),
                Index::single(fx.col("f_dim")),
                Index::multi(&fx.schema, vec![fx.col("f_dim"), fx.col("f_price")]).unwrap(),
            ]),
        ];
        for cfg in &configs {
            let scalar = model.query_cost(fx.cat(), &q, cfg);
            let keyed = keyed_indexes(cfg);
            let cold = m.join_eval(&model, fx.cat(), &q, qf, &plan, &keyed);
            let warm = m.join_eval(&model, fx.cat(), &q, qf, &plan, &keyed);
            assert_eq!(scalar.to_bits(), cold.to_bits());
            assert_eq!(scalar.to_bits(), warm.to_bits());
        }
        let s = m.stats();
        assert!(s.entry_hits > 0, "warm pass must hit resident cells");
        assert!(s.nl_entries > 0, "join-key index must own a nested-loop cell");
    }

    #[test]
    fn join_apply_add_recosts_only_the_touched_step() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .join(&fx.schema, fx.col("f_dim"), fx.col("d_id"))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let qf = fingerprint_query(&q);
        let QueryShape::JoinDecomposable { plan } = m.shape(&model, fx.cat(), &q, qf) else {
            panic!("expected join-decomposable shape");
        };
        // Start from the empty config: per-step (seq, +inf).
        let mut steps: Vec<JoinStepState> = plan
            .steps
            .iter()
            .map(|s| JoinStepState {
                raw: s.seq_cost,
                nl: f64::INFINITY,
            })
            .collect();
        let before = steps.clone();
        let idx = Index::single(fx.col("f_dim"));
        let idxf = fingerprint_index(&idx);
        m.join_apply_add(&model, fx.cat(), &q, qf, &plan, &mut steps, idxf, &idx);
        let fact = fx.schema.table_of(fx.col("f_dim"));
        for (k, step) in plan.steps.iter().enumerate() {
            if step.table == fact {
                assert!(
                    steps[k].nl.is_finite(),
                    "join-key index must open the nested-loop alternative"
                );
            } else {
                assert_eq!(steps[k].raw.to_bits(), before[k].raw.to_bits());
                assert_eq!(steps[k].nl.to_bits(), before[k].nl.to_bits());
            }
        }
        // The updated states must equal a from-scratch evaluation.
        let keyed = [(idxf, &idx)];
        let fresh = m.join_states(&model, fx.cat(), &q, qf, &plan, &keyed);
        let incr = model.join_cost_from_steps(&q, &plan, &steps);
        let full = model.join_cost_from_steps(&q, &plan, &fresh);
        assert_eq!(incr.to_bits(), full.to_bits());
        let scalar = model.query_cost(fx.cat(), &q, &IndexConfig::from_indexes([idx]));
        assert_eq!(incr.to_bits(), scalar.to_bits());
    }

    #[test]
    fn inapplicable_index_is_infinity_and_never_wins() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_id"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let qf = fingerprint_query(&q);
        let other = Index::single(fx.col("d_cat"));
        let cell = m.index_cell(
            &model,
            fx.cat(),
            &QueryKey {
                q: &q,
                qf,
                table: q.tables[0],
            },
            fingerprint_index(&other),
            &other,
        );
        assert!(cell.is_infinite());
        let with = eval_decomposable(
            &m,
            &model,
            fx.cat(),
            &q,
            &IndexConfig::from_indexes([other]),
        );
        let base = model.query_cost(fx.cat(), &q, &IndexConfig::empty());
        assert_eq!(with.to_bits(), base.to_bits());
    }

    #[test]
    fn clear_resets_cells_shapes_and_counters() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_id"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(fx.col("f_id"))]);
        let _ = eval_decomposable(&m, &model, fx.cat(), &q, &cfg);
        m.note_matrix_eval();
        m.note_delta();
        m.clear();
        let s = m.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.shapes, 0);
        assert_eq!((s.matrix_evals, s.delta_evals, s.entry_misses), (0, 0, 0));
        assert_eq!(s.fallback_rate(), 0.0);
    }

    #[test]
    fn config_delta_applies_both_directions() {
        let fx = Fixture::new();
        let a = Index::single(fx.col("f_id"));
        let b = Index::single(fx.col("f_dim"));
        let base = IndexConfig::from_indexes([a.clone()]);
        let added = ConfigDelta::Add(b.clone()).apply(&base);
        assert_eq!(added.len(), 2);
        let removed = ConfigDelta::Remove(a).apply(&added);
        assert_eq!(removed.indexes(), &[b]);
    }

    #[test]
    fn byte_budget_compacts_but_never_changes_costs() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        // Budget of 4 cells' worth: a stream of distinct queries ×
        // indexes must trigger rotating shard clears.
        m.set_byte_budget(4 * super::CELL_BYTES);
        let cols = ["f_id", "f_dim", "f_price"];
        let mut scalars = Vec::new();
        for round in 0..3 {
            for (i, fc) in cols.iter().enumerate() {
                for ic in &cols {
                    let q = QueryBuilder::new()
                        .filter(
                            &fx.schema,
                            Predicate::eq(fx.col(fc), 0.1 + i as f64 / 10.0),
                        )
                        .select(fx.col("f_price"))
                        .build(&fx.schema)
                        .unwrap();
                    let cfg = IndexConfig::from_indexes([Index::single(fx.col(ic))]);
                    let got = eval_decomposable(&m, &model, fx.cat(), &q, &cfg);
                    if round == 0 {
                        scalars.push(model.query_cost(fx.cat(), &q, &cfg));
                    }
                    let want = scalars[i * cols.len()
                        + cols.iter().position(|c| c == ic).unwrap()];
                    assert_eq!(got.to_bits(), want.to_bits(), "round {round} {fc}/{ic}");
                }
            }
        }
        let s = m.stats();
        assert!(s.compactions > 0, "budget must have forced compactions");
        assert!(
            s.approx_bytes <= 4 * super::CELL_BYTES + super::CELL_BYTES,
            "footprint {} over budget",
            s.approx_bytes
        );
        assert!(s.peak_bytes >= s.approx_bytes);
        assert_eq!(s.byte_budget, 4 * super::CELL_BYTES);
    }

    #[test]
    fn unbudgeted_matrix_never_compacts() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_id"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(fx.col("f_id"))]);
        let _ = eval_decomposable(&m, &model, fx.cat(), &q, &cfg);
        let s = m.stats();
        assert_eq!(s.compactions, 0);
        assert_eq!(s.byte_budget, usize::MAX);
        assert_eq!(s.approx_bytes, (s.entries + s.nl_entries) * super::CELL_BYTES);
    }

    #[test]
    fn stats_rates_partition_evaluations() {
        let m = BenefitMatrix::new();
        for _ in 0..3 {
            m.note_matrix_eval();
        }
        m.note_fallback();
        let s = m.stats();
        assert!((s.matrix_rate() - 0.75).abs() < 1e-12);
        assert!((s.fallback_rate() - 0.25).abs() < 1e-12);
    }
}
