//! Incremental what-if evaluation: the per-(query, index) benefit matrix.
//!
//! Every advisor action loop evaluates thousands of index configurations
//! that differ by a single index. Full re-costing treats each
//! configuration as opaque, paying `O(|W| · |I|)` model work per
//! evaluation; the per-(query, config) [`super::CostCache`] removes exact
//! repeats but still stores the combinatorial `(query, config)` space.
//! This module exploits the cost model's structure instead:
//!
//! * For a **single-table query** the model's plan is
//!   `surcharges(min(seq_scan, index_scan(i) for i in config))` where the
//!   surcharges depend only on the (config-independent) filtered
//!   cardinality. The per-index access costs are a *matrix* indexed by
//!   `(query, index)` — `O(|W| · L)` entries, not `O(|W| · 2^L)` — and a
//!   config cost is a running `min` over the row.
//! * For a **join query** the access-path choice couples with join
//!   planning (an index on the join key enables an index nested-loop
//!   join whose cost depends on the outer cardinality), so decomposition
//!   would change results. Those queries take the full-model fallback,
//!   memoized by the [`super::CostCache`].
//!
//! Equality contract: matrix answers are **bit-identical** to the scalar
//! model. Both paths call the same crate-internal `table_access` /
//! `index_access_cost` / `apply_surcharges` helpers, the `min` runs over
//! the same values in the same order, and "index not applicable" is
//! encoded as `+∞` so the `e < best` comparison skips it exactly like the
//! scalar path's `continue`. `tests/whatif_differential.rs` pins this
//! with proptest-generated workloads and edit sequences.
//!
//! Concurrency mirrors [`super::CostCache`]: sharded `RwLock` maps,
//! misses compute outside locks, racy inserts are idempotent because the
//! model is pure.

use super::cache::{fingerprint_index, Fingerprint};
use super::model::{AnalyticalCostModel, TableAccess};
use super::Catalog;
use crate::index::{Index, IndexConfig};
use crate::query::Query;
use crate::schema::TableId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// Shard count (power of two, same rationale as the cost cache).
const SHARDS: usize = 16;

/// How a query's cost depends on the index configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum QueryShape {
    /// No tables: cost is 0 under every configuration.
    Trivial,
    /// Single table: cost decomposes into a per-index matrix row.
    Decomposable {
        /// The query's only table.
        table: TableId,
        /// Sequential-scan baseline (the row's "no index" entry).
        seq_cost: f64,
        /// Filtered output cardinality (surcharge input).
        rows_out: f64,
    },
    /// Joins present: index choice interacts with join planning; only the
    /// full model is correct.
    JoinCoupled,
}

/// Counter snapshot of a [`BenefitMatrix`], as returned by
/// [`BenefitMatrix::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixStats {
    /// Per-query config evaluations answered from the matrix
    /// (decomposable shape, including trivial queries).
    pub matrix_evals: u64,
    /// Per-query evaluations that fell back to the full model
    /// (join-coupled shape).
    pub full_fallbacks: u64,
    /// Delta operations (`what_if_delta`, incremental-eval previews and
    /// commits).
    pub delta_evals: u64,
    /// Matrix-cell lookups answered from the resident matrix.
    pub entry_hits: u64,
    /// Matrix-cell lookups that computed a fresh access cost.
    pub entry_misses: u64,
    /// `(query, index)` cells currently resident.
    pub entries: usize,
    /// Query shapes classified so far.
    pub shapes: usize,
}

impl MatrixStats {
    /// Full-model fallbacks as a fraction of all per-query evaluations
    /// (0 when nothing was evaluated).
    pub fn fallback_rate(&self) -> f64 {
        let total = self.matrix_evals + self.full_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.full_fallbacks as f64 / total as f64
        }
    }

    /// Matrix evaluations as a fraction of all per-query evaluations
    /// (0 when nothing was evaluated).
    pub fn matrix_rate(&self) -> f64 {
        let total = self.matrix_evals + self.full_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.matrix_evals as f64 / total as f64
        }
    }
}

/// A single-index edit against a base configuration, for
/// [`crate::db::Database::what_if_delta`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigDelta {
    /// Add this index to the base configuration.
    Add(Index),
    /// Remove this index from the base configuration.
    Remove(Index),
}

impl ConfigDelta {
    /// The edited configuration (`base ± index`).
    pub fn apply(&self, base: &IndexConfig) -> IndexConfig {
        let mut cfg = base.clone();
        match self {
            ConfigDelta::Add(idx) => {
                cfg.add(idx.clone());
            }
            ConfigDelta::Remove(idx) => {
                cfg.remove(idx);
            }
        }
        cfg
    }
}

/// Per-query state of an [`IncrementalEval`] session.
#[derive(Debug, Clone, Copy)]
pub(crate) enum QueryState {
    /// No tables: cost pinned at 0.
    Trivial,
    /// Decomposable: the running `min` over applied matrix entries plus
    /// the finalized (surcharged) per-query cost.
    Raw {
        /// The query's table (matrix-row key material).
        table: TableId,
        /// Filtered cardinality (surcharge input).
        rows_out: f64,
        /// `min(seq_cost, entries of the indexes applied so far)`.
        raw: f64,
        /// `apply_surcharges(raw)` — the per-query cost under the
        /// session's current configuration.
        cost: f64,
    },
    /// Join-coupled (or matrix disabled): full per-query cost under the
    /// session's current configuration.
    Full(f64),
}

impl QueryState {
    /// The per-query cost under the session's current configuration.
    pub(crate) fn cost(&self) -> f64 {
        match *self {
            QueryState::Trivial => 0.0,
            QueryState::Raw { cost, .. } => cost,
            QueryState::Full(c) => c,
        }
    }
}

/// Per-workload-entry evaluation state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EvalState {
    /// Fingerprint of the entry's query (computed once per session).
    pub(crate) qf: Fingerprint,
    /// Current cost state.
    pub(crate) kind: QueryState,
}

/// An incremental what-if evaluation session: per-query cost state for
/// one workload under a configuration built up one index at a time.
///
/// Created by [`crate::db::Database::whatif_eval_begin`] (empty
/// configuration), advanced by `whatif_eval_add`, previewed without
/// commitment by `whatif_eval_preview_add`. Plain data (no borrows), so
/// advisors can store one per episode. Totals are always recomputed as a
/// fresh frequency-weighted sum in workload order — never maintained via
/// `+= diff` — so they stay bit-identical to a scalar recompute.
#[derive(Debug, Clone)]
pub struct IncrementalEval {
    /// One state per workload entry, in workload order.
    pub(crate) states: Vec<EvalState>,
}

impl IncrementalEval {
    /// Number of workload entries tracked.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the session tracks an empty workload.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// The per-(query, index) benefit matrix with shape classification and
/// counters. Owned by [`crate::db::Database`] next to its
/// [`super::CostCache`].
pub struct BenefitMatrix {
    /// Query fingerprint → shape (lazily classified).
    shapes: RwLock<HashMap<Fingerprint, QueryShape>>,
    /// `(query, index)` → raw access cost; `+∞` = index not applicable.
    entries: Vec<RwLock<HashMap<(Fingerprint, Fingerprint), f64>>>,
    enabled: AtomicBool,
    matrix_evals: AtomicU64,
    full_fallbacks: AtomicU64,
    delta_evals: AtomicU64,
    entry_hits: AtomicU64,
    entry_misses: AtomicU64,
}

impl Default for BenefitMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl BenefitMatrix {
    /// An empty, enabled matrix.
    pub fn new() -> Self {
        BenefitMatrix {
            shapes: RwLock::new(HashMap::new()),
            entries: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            enabled: AtomicBool::new(true),
            matrix_evals: AtomicU64::new(0),
            full_fallbacks: AtomicU64::new(0),
            delta_evals: AtomicU64::new(0),
            entry_hits: AtomicU64::new(0),
            entry_misses: AtomicU64::new(0),
        }
    }

    /// Enable or disable the matrix (evaluations route to the full model
    /// when disabled; resident cells are kept). Benchmarks use this to
    /// measure the scalar path; results are identical either way.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the matrix is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Drop all cells and shapes and zero the counters.
    pub fn clear(&self) {
        self.shapes.write().expect("matrix shapes poisoned").clear();
        for s in &self.entries {
            s.write().expect("matrix shard poisoned").clear();
        }
        self.matrix_evals.store(0, Ordering::Relaxed);
        self.full_fallbacks.store(0, Ordering::Relaxed);
        self.delta_evals.store(0, Ordering::Relaxed);
        self.entry_hits.store(0, Ordering::Relaxed);
        self.entry_misses.store(0, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MatrixStats {
        MatrixStats {
            matrix_evals: self.matrix_evals.load(Ordering::Relaxed),
            full_fallbacks: self.full_fallbacks.load(Ordering::Relaxed),
            delta_evals: self.delta_evals.load(Ordering::Relaxed),
            entry_hits: self.entry_hits.load(Ordering::Relaxed),
            entry_misses: self.entry_misses.load(Ordering::Relaxed),
            entries: self
                .entries
                .iter()
                .map(|s| s.read().expect("matrix shard poisoned").len())
                .sum(),
            shapes: self.shapes.read().expect("matrix shapes poisoned").len(),
        }
    }

    /// One per-query evaluation was answered from the matrix.
    pub(crate) fn note_matrix_eval(&self) {
        self.matrix_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// One per-query evaluation fell back to the full model.
    pub(crate) fn note_fallback(&self) {
        self.full_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// One delta operation was requested.
    pub(crate) fn note_delta(&self) {
        self.delta_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// Classify `q` (memoized by fingerprint).
    pub(crate) fn shape(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        qf: Fingerprint,
    ) -> QueryShape {
        if let Some(&s) = self
            .shapes
            .read()
            .expect("matrix shapes poisoned")
            .get(&qf)
        {
            return s;
        }
        let s = if q.tables.is_empty() {
            QueryShape::Trivial
        } else if q.tables.len() == 1 {
            let acc = model.table_access(cat, q, q.tables[0]);
            QueryShape::Decomposable {
                table: acc.table,
                seq_cost: acc.seq_cost,
                rows_out: acc.rows_out,
            }
        } else {
            QueryShape::JoinCoupled
        };
        self.shapes
            .write()
            .expect("matrix shapes poisoned")
            .entry(qf)
            .or_insert(s);
        s
    }

    /// One matrix cell: the raw access cost of scanning the query's
    /// table through `index` (`+∞` when the index is on another table or
    /// unusable). `acc` is a lazily-built [`TableAccess`] shared across a
    /// row's lookups so a cold row costs one `table_access` total.
    fn cell<'q>(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        key: &QueryKey<'q>,
        idxf: Fingerprint,
        index: &Index,
        acc: &mut Option<TableAccess<'q>>,
    ) -> f64 {
        let cell_key = (key.qf, idxf);
        let shard = &self.entries[(key.qf.to_u128() as u64 ^ idxf.to_u128() as u64) as usize
            & (SHARDS - 1)];
        if let Some(&v) = shard.read().expect("matrix shard poisoned").get(&cell_key) {
            self.entry_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.entry_misses.fetch_add(1, Ordering::Relaxed);
        let a = acc.get_or_insert_with(|| model.table_access(cat, key.q, key.table));
        let v = model
            .index_access_cost(cat, a, index)
            .unwrap_or(f64::INFINITY);
        shard
            .write()
            .expect("matrix shard poisoned")
            .entry(cell_key)
            .or_insert(v);
        v
    }

    /// `min(seq_cost, matrix row entries for the keyed indexes)` — the
    /// raw (pre-surcharge) best access cost of a decomposable query.
    /// Bit-identical to the scalar `best_access_path` because
    /// inapplicable indexes are `+∞` and `+∞ < best` never fires, exactly
    /// like the scalar path's `continue`.
    pub(crate) fn best_raw(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        key: &QueryKey<'_>,
        seq_cost: f64,
        keyed: &[(Fingerprint, &Index)],
    ) -> f64 {
        let mut acc = None;
        let mut best = seq_cost;
        for &(idxf, index) in keyed {
            let e = self.cell(model, cat, key, idxf, index, &mut acc);
            if e < best {
                best = e;
            }
        }
        best
    }

    /// One matrix cell for a single index (the delta hot path).
    pub(crate) fn index_cell(
        &self,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        key: &QueryKey<'_>,
        idxf: Fingerprint,
        index: &Index,
    ) -> f64 {
        let mut acc = None;
        self.cell(model, cat, key, idxf, index, &mut acc)
    }
}

/// Identity of a decomposable query inside the matrix: the query, its
/// structural fingerprint, and its single table.
pub(crate) struct QueryKey<'q> {
    pub(crate) q: &'q Query,
    pub(crate) qf: Fingerprint,
    pub(crate) table: TableId,
}

/// Fingerprint every index of a configuration once (hoisted out of the
/// per-query loops).
pub(crate) fn keyed_indexes(cfg: &IndexConfig) -> Vec<(Fingerprint, &Index)> {
    cfg.indexes()
        .iter()
        .map(|i| (fingerprint_index(i), i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cache::fingerprint_query;
    use crate::cost::{CostModel, PAGE_SIZE};
    use crate::predicate::Predicate;
    use crate::query::QueryBuilder;
    use crate::schema::{ColumnId, DataType, Schema};
    use crate::stats::{ColumnStats, TableStats};

    struct Fixture {
        schema: Schema,
        tstats: Vec<TableStats>,
        cstats: Vec<ColumnStats>,
    }

    impl Fixture {
        fn new() -> Self {
            let mut schema = Schema::new();
            schema.add_table(
                "fact",
                500_000,
                &[
                    ("f_id", DataType::BigInt),
                    ("f_dim", DataType::Int),
                    ("f_price", DataType::Decimal),
                ],
            );
            schema.add_table(
                "dim",
                1000,
                &[("d_id", DataType::Int), ("d_cat", DataType::Int)],
            );
            let tstats = schema
                .tables()
                .iter()
                .map(|t| {
                    let rows = t.base_rows;
                    let width = schema.row_width(t.id) as u64;
                    TableStats {
                        rows,
                        pages: (rows * width).div_ceil(PAGE_SIZE).max(1),
                    }
                })
                .collect();
            let cstats = schema
                .columns()
                .iter()
                .map(|c| {
                    let rows = schema.table(c.table).base_rows;
                    let ndv = match c.name.as_str() {
                        "f_id" => rows,
                        "f_dim" | "d_id" => 1000,
                        "f_price" => 10_000,
                        "d_cat" => 10,
                        _ => unreachable!(),
                    };
                    ColumnStats::uniform(c.id, c.ty, ndv, 0, ndv as i64 - 1)
                })
                .collect();
            Fixture {
                schema,
                tstats,
                cstats,
            }
        }

        fn cat(&self) -> Catalog<'_> {
            Catalog {
                schema: &self.schema,
                table_stats: &self.tstats,
                column_stats: &self.cstats,
            }
        }

        fn col(&self, n: &str) -> ColumnId {
            self.schema.column_id(n).unwrap()
        }
    }

    fn eval_decomposable(
        m: &BenefitMatrix,
        model: &AnalyticalCostModel,
        cat: Catalog<'_>,
        q: &Query,
        cfg: &IndexConfig,
    ) -> f64 {
        let qf = fingerprint_query(q);
        match m.shape(model, cat, q, qf) {
            QueryShape::Decomposable {
                table,
                seq_cost,
                rows_out,
            } => {
                let keyed = keyed_indexes(cfg);
                let raw = m.best_raw(model, cat, &QueryKey { q, qf, table }, seq_cost, &keyed);
                model.apply_surcharges(q, raw, rows_out)
            }
            s => panic!("expected decomposable shape, got {s:?}"),
        }
    }

    #[test]
    fn single_table_costs_match_the_scalar_model_bit_for_bit() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_dim"), 0.4))
            .filter(&fx.schema, Predicate::between(fx.col("f_price"), 0.1, 0.3))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let configs = [
            IndexConfig::empty(),
            IndexConfig::from_indexes([Index::single(fx.col("f_dim"))]),
            IndexConfig::from_indexes([Index::single(fx.col("d_cat"))]),
            IndexConfig::from_indexes([
                Index::single(fx.col("f_price")),
                Index::single(fx.col("f_dim")),
                Index::multi(&fx.schema, vec![fx.col("f_dim"), fx.col("f_price")]).unwrap(),
            ]),
        ];
        for cfg in &configs {
            let scalar = model.query_cost(fx.cat(), &q, cfg);
            // Cold then warm: both must be bit-identical to the scalar path.
            let cold = eval_decomposable(&m, &model, fx.cat(), &q, cfg);
            let warm = eval_decomposable(&m, &model, fx.cat(), &q, cfg);
            assert_eq!(scalar.to_bits(), cold.to_bits());
            assert_eq!(scalar.to_bits(), warm.to_bits());
        }
        let s = m.stats();
        assert!(s.entry_hits > 0, "warm pass must hit resident cells");
        assert!(s.entries > 0 && s.shapes == 1);
    }

    #[test]
    fn join_queries_classify_as_join_coupled() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .join(&fx.schema, fx.col("f_dim"), fx.col("d_id"))
            .filter(&fx.schema, Predicate::eq(fx.col("d_id"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let qf = fingerprint_query(&q);
        assert_eq!(
            m.shape(&model, fx.cat(), &q, qf),
            QueryShape::JoinCoupled
        );
    }

    #[test]
    fn inapplicable_index_is_infinity_and_never_wins() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_id"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let qf = fingerprint_query(&q);
        let other = Index::single(fx.col("d_cat"));
        let cell = m.index_cell(
            &model,
            fx.cat(),
            &QueryKey {
                q: &q,
                qf,
                table: q.tables[0],
            },
            fingerprint_index(&other),
            &other,
        );
        assert!(cell.is_infinite());
        let with = eval_decomposable(
            &m,
            &model,
            fx.cat(),
            &q,
            &IndexConfig::from_indexes([other]),
        );
        let base = model.query_cost(fx.cat(), &q, &IndexConfig::empty());
        assert_eq!(with.to_bits(), base.to_bits());
    }

    #[test]
    fn clear_resets_cells_shapes_and_counters() {
        let fx = Fixture::new();
        let model = AnalyticalCostModel::new();
        let m = BenefitMatrix::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_id"), 0.5))
            .select(fx.col("f_price"))
            .build(&fx.schema)
            .unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(fx.col("f_id"))]);
        let _ = eval_decomposable(&m, &model, fx.cat(), &q, &cfg);
        m.note_matrix_eval();
        m.note_delta();
        m.clear();
        let s = m.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.shapes, 0);
        assert_eq!((s.matrix_evals, s.delta_evals, s.entry_misses), (0, 0, 0));
        assert_eq!(s.fallback_rate(), 0.0);
    }

    #[test]
    fn config_delta_applies_both_directions() {
        let fx = Fixture::new();
        let a = Index::single(fx.col("f_id"));
        let b = Index::single(fx.col("f_dim"));
        let base = IndexConfig::from_indexes([a.clone()]);
        let added = ConfigDelta::Add(b.clone()).apply(&base);
        assert_eq!(added.len(), 2);
        let removed = ConfigDelta::Remove(a).apply(&added);
        assert_eq!(removed.indexes(), &[b]);
    }

    #[test]
    fn stats_rates_partition_evaluations() {
        let m = BenefitMatrix::new();
        for _ in 0..3 {
            m.note_matrix_eval();
        }
        m.note_fallback();
        let s = m.stats();
        assert!((s.matrix_rate() - 0.75).abs() < 1e-12);
        assert!((s.fallback_rate() - 0.25).abs() < 1e-12);
    }
}
