//! Analytic query AST and SQL rendering.
//!
//! Queries are select-project-join-aggregate blocks: a set of tables,
//! equi-join edges, conjunctive sargable [`Predicate`]s, a projection or
//! aggregate list, and optional grouping/ordering. This covers the query
//! shapes produced by the paper's FSM generator and by IABART, and is rich
//! enough for TPC-H/TPC-DS style templates.

use crate::error::{SimError, SimResult};
use crate::predicate::Predicate;
use crate::schema::{ColumnId, Schema, TableId};
use crate::stats::ColumnStats;

/// An equi-join edge `left = right` between columns of two tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// Column on one side of the equality.
    pub left: ColumnId,
    /// Column on the other side.
    pub right: ColumnId,
}

/// Aggregate expressions in the SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `count(*)`.
    CountStar,
    /// `sum(col)`.
    Sum(ColumnId),
    /// `avg(col)`.
    Avg(ColumnId),
    /// `min(col)`.
    Min(ColumnId),
    /// `max(col)`.
    Max(ColumnId),
}

impl Aggregate {
    /// The column referenced, if any.
    pub fn column(&self) -> Option<ColumnId> {
        match self {
            Aggregate::CountStar => None,
            Aggregate::Sum(c) | Aggregate::Avg(c) | Aggregate::Min(c) | Aggregate::Max(c) => {
                Some(*c)
            }
        }
    }
}

/// A single analytic query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Referenced tables (FROM list).
    pub tables: Vec<TableId>,
    /// Equi-join edges connecting the tables.
    pub joins: Vec<JoinEdge>,
    /// Conjunctive filter predicates.
    pub predicates: Vec<Predicate>,
    /// Plain projected columns (may be empty if aggregates are present).
    pub projection: Vec<ColumnId>,
    /// Aggregate expressions.
    pub aggregates: Vec<Aggregate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnId>,
    /// ORDER BY columns.
    pub order_by: Vec<ColumnId>,
    /// Optional LIMIT.
    pub limit: Option<u64>,
}

impl Query {
    /// Every column the query touches (projection, aggregates, predicates,
    /// joins, grouping, ordering), deduplicated and sorted.
    pub fn referenced_columns(&self) -> Vec<ColumnId> {
        let mut cols: Vec<ColumnId> = self
            .projection
            .iter()
            .copied()
            .chain(self.aggregates.iter().filter_map(|a| a.column()))
            .chain(self.predicates.iter().map(|p| p.col))
            .chain(self.joins.iter().flat_map(|j| [j.left, j.right]))
            .chain(self.group_by.iter().copied())
            .chain(self.order_by.iter().copied())
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Columns appearing in sargable filter predicates (the columns an
    /// index could help with).
    pub fn filter_columns(&self) -> Vec<ColumnId> {
        let mut cols: Vec<ColumnId> = self.predicates.iter().map(|p| p.col).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Columns appearing in join conditions.
    pub fn join_columns(&self) -> Vec<ColumnId> {
        let mut cols: Vec<ColumnId> = self.joins.iter().flat_map(|j| [j.left, j.right]).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Predicates restricted to one table.
    pub fn predicates_on(&self, schema: &Schema, table: TableId) -> Vec<&Predicate> {
        self.predicates
            .iter()
            .filter(|p| schema.table_of(p.col) == table)
            .collect()
    }

    /// Validate structural invariants: at least one table, all referenced
    /// columns belong to FROM tables, and the join graph connects every
    /// table when more than one is present.
    pub fn validate(&self, schema: &Schema) -> SimResult<()> {
        if self.tables.is_empty() {
            return Err(SimError::InvalidQuery("no tables".into()));
        }
        let in_scope = |c: ColumnId| self.tables.contains(&schema.table_of(c));
        for c in self.referenced_columns() {
            if !in_scope(c) {
                return Err(SimError::ColumnNotInScope(schema.column(c).name.clone()));
            }
        }
        if self.projection.is_empty() && self.aggregates.is_empty() {
            return Err(SimError::InvalidQuery("empty select list".into()));
        }
        if self.tables.len() > 1 {
            // Union-find connectivity over join edges.
            let mut parent: Vec<usize> = (0..self.tables.len()).collect();
            fn find(p: &mut Vec<usize>, i: usize) -> usize {
                if p[i] != i {
                    let r = find(p, p[i]);
                    p[i] = r;
                }
                p[i]
            }
            let pos = |t: TableId| self.tables.iter().position(|&x| x == t);
            for j in &self.joins {
                let (lt, rt) = (schema.table_of(j.left), schema.table_of(j.right));
                if let (Some(a), Some(b)) = (pos(lt), pos(rt)) {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    parent[ra] = rb;
                }
            }
            let root = find(&mut parent, 0);
            for i in 1..self.tables.len() {
                if find(&mut parent, i) != root {
                    return Err(SimError::InvalidQuery(format!(
                        "table {} not connected by joins",
                        schema.table(self.tables[i]).name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Render the query as SQL text. Literals are derived from each
    /// column's statistics (`stats_of` must cover every filtered column).
    pub fn render_sql<'a, F>(&self, schema: &Schema, mut stats_of: F) -> String
    where
        F: FnMut(ColumnId) -> &'a ColumnStats,
    {
        let mut select_items: Vec<String> = self
            .projection
            .iter()
            .map(|&c| schema.column(c).name.clone())
            .collect();
        for a in &self.aggregates {
            let item = match a {
                Aggregate::CountStar => "count(*)".to_string(),
                Aggregate::Sum(c) => format!("sum({})", schema.column(*c).name),
                Aggregate::Avg(c) => format!("avg({})", schema.column(*c).name),
                Aggregate::Min(c) => format!("min({})", schema.column(*c).name),
                Aggregate::Max(c) => format!("max({})", schema.column(*c).name),
            };
            select_items.push(item);
        }
        let mut sql = format!("select {} from ", select_items.join(", "));
        sql.push_str(
            &self
                .tables
                .iter()
                .map(|&t| schema.table(t).name.clone())
                .collect::<Vec<_>>()
                .join(", "),
        );
        let mut conds: Vec<String> = self
            .joins
            .iter()
            .map(|j| {
                format!(
                    "{} = {}",
                    schema.column(j.left).name,
                    schema.column(j.right).name
                )
            })
            .collect();
        for p in &self.predicates {
            let name = &schema.column(p.col).name;
            conds.push(p.render_sql(name, stats_of(p.col)));
        }
        if !conds.is_empty() {
            sql.push_str(" where ");
            sql.push_str(&conds.join(" and "));
        }
        if !self.group_by.is_empty() {
            sql.push_str(" group by ");
            sql.push_str(
                &self
                    .group_by
                    .iter()
                    .map(|&c| schema.column(c).name.clone())
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        if !self.order_by.is_empty() {
            sql.push_str(" order by ");
            sql.push_str(
                &self
                    .order_by
                    .iter()
                    .map(|&c| schema.column(c).name.clone())
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        if let Some(l) = self.limit {
            sql.push_str(&format!(" limit {l}"));
        }
        sql.push(';');
        sql
    }
}

/// Fluent builder for [`Query`].
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    q: QueryParts,
}

#[derive(Debug, Clone, Default)]
struct QueryParts {
    tables: Vec<TableId>,
    joins: Vec<JoinEdge>,
    predicates: Vec<Predicate>,
    projection: Vec<ColumnId>,
    aggregates: Vec<Aggregate>,
    group_by: Vec<ColumnId>,
    order_by: Vec<ColumnId>,
    limit: Option<u64>,
}

impl QueryBuilder {
    /// Start building a query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a FROM table (deduplicated).
    pub fn table(mut self, t: TableId) -> Self {
        if !self.q.tables.contains(&t) {
            self.q.tables.push(t);
        }
        self
    }

    /// Add an equi-join edge; both tables are added to FROM.
    pub fn join(mut self, schema: &Schema, left: ColumnId, right: ColumnId) -> Self {
        let lt = schema.table_of(left);
        let rt = schema.table_of(right);
        self = self.table(lt).table(rt);
        self.q.joins.push(JoinEdge { left, right });
        self
    }

    /// Add a filter predicate; the column's table is added to FROM.
    pub fn filter(mut self, schema: &Schema, p: Predicate) -> Self {
        self = self.table(schema.table_of(p.col));
        self.q.predicates.push(p);
        self
    }

    /// Project a column.
    pub fn select(mut self, c: ColumnId) -> Self {
        self.q.projection.push(c);
        self
    }

    /// Add an aggregate.
    pub fn aggregate(mut self, a: Aggregate) -> Self {
        self.q.aggregates.push(a);
        self
    }

    /// GROUP BY a column.
    pub fn group_by(mut self, c: ColumnId) -> Self {
        self.q.group_by.push(c);
        self
    }

    /// ORDER BY a column.
    pub fn order_by(mut self, c: ColumnId) -> Self {
        self.q.order_by.push(c);
        self
    }

    /// Set LIMIT.
    pub fn limit(mut self, n: u64) -> Self {
        self.q.limit = Some(n);
        self
    }

    /// Finish, validating against the schema.
    pub fn build(self, schema: &Schema) -> SimResult<Query> {
        let q = Query {
            tables: self.q.tables,
            joins: self.q.joins,
            predicates: self.q.predicates,
            projection: self.q.projection,
            aggregates: self.q.aggregates,
            group_by: self.q.group_by,
            order_by: self.q.order_by,
            limit: self.q.limit,
        };
        q.validate(schema)?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn toy() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            "orders",
            1000,
            &[
                ("o_orderkey", DataType::BigInt),
                ("o_custkey", DataType::Int),
                ("o_totalprice", DataType::Decimal),
            ],
        );
        s.add_table(
            "customer",
            100,
            &[("c_custkey", DataType::Int), ("c_name", DataType::Char(12))],
        );
        s
    }

    fn col(s: &Schema, n: &str) -> ColumnId {
        s.column_id(n).unwrap()
    }

    #[test]
    fn builder_builds_joined_query() {
        let s = toy();
        let q = QueryBuilder::new()
            .join(&s, col(&s, "o_custkey"), col(&s, "c_custkey"))
            .filter(&s, Predicate::eq(col(&s, "o_totalprice"), 0.5))
            .select(col(&s, "c_name"))
            .aggregate(Aggregate::Sum(col(&s, "o_totalprice")))
            .group_by(col(&s, "c_name"))
            .build(&s)
            .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.filter_columns(), vec![col(&s, "o_totalprice")]);
        assert!(q.join_columns().contains(&col(&s, "c_custkey")));
    }

    #[test]
    fn disconnected_join_graph_rejected() {
        let s = toy();
        let err = QueryBuilder::new()
            .table(s.table_id("orders").unwrap())
            .table(s.table_id("customer").unwrap())
            .select(col(&s, "o_orderkey"))
            .build(&s);
        assert!(matches!(err, Err(SimError::InvalidQuery(_))));
    }

    #[test]
    fn empty_select_list_rejected() {
        let s = toy();
        let err = QueryBuilder::new()
            .table(s.table_id("orders").unwrap())
            .build(&s);
        assert!(matches!(err, Err(SimError::InvalidQuery(_))));
    }

    #[test]
    fn renders_full_sql() {
        let s = toy();
        let price = col(&s, "o_totalprice");
        let stats = crate::stats::ColumnStats::uniform(price, DataType::Decimal, 100, 0, 10_000);
        let q = QueryBuilder::new()
            .filter(&s, Predicate::between(price, 0.0, 0.5))
            .select(col(&s, "o_orderkey"))
            .order_by(col(&s, "o_orderkey"))
            .limit(10)
            .build(&s)
            .unwrap();
        let sql = q.render_sql(&s, |_| &stats);
        assert_eq!(
            sql,
            "select o_orderkey from orders where o_totalprice between 0.00 and 50.00 \
             order by o_orderkey limit 10;"
        );
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let s = toy();
        let k = col(&s, "o_orderkey");
        let q = QueryBuilder::new()
            .select(k)
            .order_by(k)
            .filter(&s, Predicate::eq(k, 0.1))
            .build(&s)
            .unwrap();
        assert_eq!(q.referenced_columns(), vec![k]);
    }

    #[test]
    fn out_of_scope_column_rejected() {
        let s = toy();
        let q = QueryBuilder::new()
            .table(s.table_id("orders").unwrap())
            .select(col(&s, "c_name"));
        // select c_name but FROM only orders: builder adds the table only
        // via filter/join, so validation must fail.
        assert!(matches!(q.build(&s), Err(SimError::ColumnNotInScope(_))));
    }
}
