//! Deterministic synthetic data generation consistent with the catalog's
//! column statistics.
//!
//! Each column is generated independently from its [`ColumnStats`]:
//!
//! * values are uniform integer positions in `[min, max]` (the benchmark
//!   schemas set `max − min + 1 = ndv`, so equality predicates hit real
//!   values with the expected 1/ndv frequency);
//! * a column with `|correlation| ≈ 1` is generated in (reverse-)sorted
//!   heap order with light noise, so range scans through its index touch
//!   nearly sequential heap pages, matching the cost model's
//!   correlation interpolation;
//! * NULLs are encoded as `i64::MIN` and never matched by predicates.

use crate::cost::PAGE_SIZE;
use crate::schema::{Schema, TableId};
use crate::stats::ColumnStats;
use crate::storage::TableData;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sentinel position used for NULL values.
pub const NULL_POSITION: i64 = i64::MIN;

/// Generate the data for one table. `rows` overrides the statistics row
/// count (used to materialize a scaled-down heap while keeping statistics
/// at full scale for the analytical model).
pub fn generate_table(
    schema: &Schema,
    stats: &[ColumnStats],
    table: TableId,
    rows: u32,
    seed: u64,
) -> TableData {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0x9e37_79b9 * u64::from(table.0 + 1)));
    let cols = schema.columns_of(table);
    let mut columns: Vec<Vec<i64>> = Vec::with_capacity(cols.len());
    for &cid in cols {
        let st = &stats[cid.0 as usize];
        columns.push(generate_column(st, rows, &mut rng));
    }
    let width = schema.row_width(table) as u64;
    let rows_per_page = (PAGE_SIZE / width.max(1)).max(1) as u32;
    TableData {
        table,
        columns,
        rows,
        rows_per_page,
    }
}

fn generate_column(st: &ColumnStats, rows: u32, rng: &mut ChaCha8Rng) -> Vec<i64> {
    let span = (st.max - st.min).max(0);
    let mut out = Vec::with_capacity(rows as usize);
    let correlated = st.correlation.abs() >= 0.9;
    for r in 0..rows {
        if st.null_frac > 0.0 && rng.gen::<f64>() < st.null_frac {
            out.push(NULL_POSITION);
            continue;
        }
        let pos = if let Some(h) = &st.histogram {
            // Equi-depth histogram: buckets are equally likely; positions
            // are uniform within a bucket. Reproduces skew exactly as the
            // statistics describe it.
            let b = rng.gen_range(0..h.bounds.len() - 1);
            let (lo, hi) = (h.bounds[b], h.bounds[b + 1]);
            if hi > lo {
                rng.gen_range(lo..=hi)
            } else {
                lo
            }
        } else if correlated {
            // Heap-ordered value with ±1% jitter.
            let frac = if st.correlation > 0.0 {
                f64::from(r) / f64::from(rows.max(1))
            } else {
                1.0 - f64::from(r) / f64::from(rows.max(1))
            };
            let jitter = rng.gen_range(-0.01..0.01);
            st.min + (((frac + jitter).clamp(0.0, 1.0)) * span as f64).round() as i64
        } else if span == 0 {
            st.min
        } else {
            // Uniform over the ndv grid (grid == every position when the
            // schema follows the `ndv = span + 1` convention).
            let ndv = st.ndv.min(span as u64 + 1).max(1);
            let k = rng.gen_range(0..ndv) as i64;
            if ndv == span as u64 + 1 {
                st.min + k
            } else {
                st.min + (k as f64 * span as f64 / (ndv - 1).max(1) as f64).round() as i64
            }
        };
        out.push(pos.clamp(st.min, st.max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnId, DataType};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            "t",
            10_000,
            &[
                ("k", DataType::Int),
                ("sorted", DataType::Date),
                ("sparse", DataType::Int),
                ("nullable", DataType::Int),
            ],
        );
        s
    }

    fn stats(s: &Schema) -> Vec<ColumnStats> {
        let mut v = vec![
            ColumnStats::uniform(ColumnId(0), DataType::Int, 1000, 0, 999),
            ColumnStats::uniform(ColumnId(1), DataType::Date, 2000, 0, 1999),
            ColumnStats::uniform(ColumnId(2), DataType::Int, 10, 0, 999),
            ColumnStats::uniform(ColumnId(3), DataType::Int, 100, 0, 99),
        ];
        v[1].correlation = 1.0;
        v[3].null_frac = 0.3;
        let _ = s;
        v
    }

    #[test]
    fn deterministic_given_seed() {
        let s = schema();
        let st = stats(&s);
        let a = generate_table(&s, &st, TableId(0), 500, 42);
        let b = generate_table(&s, &st, TableId(0), 500, 42);
        let c = generate_table(&s, &st, TableId(0), 500, 43);
        assert_eq!(a.columns, b.columns);
        assert_ne!(a.columns, c.columns);
    }

    #[test]
    fn values_respect_domain() {
        let s = schema();
        let st = stats(&s);
        let d = generate_table(&s, &st, TableId(0), 2000, 7);
        for &v in &d.columns[0] {
            assert!((0..=999).contains(&v));
        }
    }

    #[test]
    fn correlated_column_is_chunkwise_sorted() {
        // What the executor exploits is *page-level* locality: rows in a
        // value range live on nearby pages. Check chunk means ascend.
        let s = schema();
        let st = stats(&s);
        let d = generate_table(&s, &st, TableId(0), 2000, 7);
        let col = &d.columns[1];
        let chunk = col.len() / 10;
        let means: Vec<f64> = col
            .chunks(chunk)
            .map(|c| c.iter().sum::<i64>() as f64 / c.len() as f64)
            .collect();
        for w in means.windows(2) {
            assert!(w[0] < w[1], "chunk means must ascend: {means:?}");
        }
    }

    #[test]
    fn sparse_ndv_limits_distinct_values() {
        let s = schema();
        let st = stats(&s);
        let d = generate_table(&s, &st, TableId(0), 5000, 7);
        let mut vals: Vec<i64> = d.columns[2].clone();
        vals.sort_unstable();
        vals.dedup();
        assert!(
            vals.len() <= 10,
            "expected ≤10 distinct, got {}",
            vals.len()
        );
    }

    #[test]
    fn null_fraction_approximated() {
        let s = schema();
        let st = stats(&s);
        let d = generate_table(&s, &st, TableId(0), 10_000, 7);
        let nulls = d.columns[3].iter().filter(|&&v| v == NULL_POSITION).count();
        let frac = nulls as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.05, "null frac {frac}");
    }

    #[test]
    fn histogram_stats_generate_matching_skew() {
        // A heavily left-skewed histogram must produce left-skewed data.
        let mut s = Schema::new();
        s.add_table("t", 10_000, &[("x", DataType::Int)]);
        let mut st = ColumnStats::uniform(ColumnId(0), DataType::Int, 1000, 0, 999);
        let sample: Vec<i64> = (0..1000)
            .map(|i| if i < 900 { i / 10 } else { 100 + (i - 900) * 9 })
            .collect();
        st.histogram = crate::stats::Histogram::from_sorted_sample(&sample, 10);
        let d = generate_table(&s, &[st], TableId(0), 10_000, 5);
        let below_100 = d.columns[0].iter().filter(|&&v| v < 100).count();
        let frac = below_100 as f64 / 10_000.0;
        assert!(frac > 0.75, "skew preserved: {frac} below 100");
    }

    #[test]
    fn eq_predicate_hit_rate_matches_ndv() {
        // With ndv == span+1 the expected hit count for any grid value is
        // rows/ndv.
        let s = schema();
        let st = stats(&s);
        let d = generate_table(&s, &st, TableId(0), 100_000, 11);
        let hits = d.columns[0].iter().filter(|&&v| v == 500).count();
        let expect = 100_000.0 / 1000.0;
        assert!(
            (hits as f64) > expect * 0.5 && (hits as f64) < expect * 2.0,
            "hits={hits} expect≈{expect}"
        );
    }
}
