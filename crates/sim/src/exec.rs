//! Row-store executor with simulated page-access accounting.
//!
//! The executor produces "actual" costs that are independent of the
//! analytical estimates: it picks an access path per table (by estimate,
//! as a real optimizer would), then *executes* it against the materialized
//! data, counting sequential page reads, random page reads, and tuples
//! processed. Joins are evaluated by semijoin reduction, which is exact
//! for the acyclic key–foreign-key joins all our benchmark templates use,
//! with an index nested-loop path when a join-key index makes probing
//! cheaper than scanning.

use crate::cost::{Catalog, CostParams};
use crate::datagen::NULL_POSITION;
use crate::error::{SimError, SimResult};
use crate::index::{Index, IndexConfig};
use crate::predicate::Predicate;
use crate::query::Query;
use crate::schema::{ColumnId, TableId};
use crate::storage::{PhysicalIndex, Storage};
use std::collections::{HashMap, HashSet};

/// Raw execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Sequentially read pages.
    pub seq_pages: u64,
    /// Randomly read pages (index descents, heap fetches, probes).
    pub random_pages: u64,
    /// Tuples processed (scanned or probed).
    pub tuples: u64,
    /// Rows in the final result.
    pub rows_out: u64,
}

impl ExecStats {
    /// Convert counters to a cost in the same units as the analytical
    /// model.
    pub fn cost(&self, p: &CostParams) -> f64 {
        p.seq_page_cost * self.seq_pages as f64
            + p.random_page_cost * self.random_pages as f64
            + p.cpu_tuple_cost * self.tuples as f64
    }
}

/// Executes queries against materialized [`Storage`], using physical
/// indexes supplied per call.
pub struct Executor<'a> {
    cat: Catalog<'a>,
    storage: &'a Storage,
    params: CostParams,
}

impl<'a> Executor<'a> {
    /// New executor over a catalog and its storage.
    pub fn new(cat: Catalog<'a>, storage: &'a Storage) -> Self {
        Executor {
            cat,
            storage,
            params: CostParams::default(),
        }
    }

    /// Execute a query under an index configuration. `physical` must hold
    /// a built [`PhysicalIndex`] for every index in `cfg` (extra entries
    /// are fine). Errors with [`SimError::MissingData`] when a referenced
    /// table has no materialized data.
    pub fn execute(
        &self,
        q: &Query,
        cfg: &IndexConfig,
        physical: &HashMap<Index, PhysicalIndex>,
    ) -> SimResult<ExecStats> {
        let mut st = ExecStats::default();
        if q.tables.is_empty() {
            return Ok(st);
        }

        // Estimated filtered rows per table, for join ordering.
        let est_rows = |t: TableId| -> f64 {
            let preds = q.predicates_on(self.cat.schema, t);
            let sel: f64 = preds
                .iter()
                .map(|p| p.selectivity(self.cat.column(p.col)))
                .product();
            (self.cat.table(t).rows as f64 * sel).max(1.0)
        };
        let mut order: Vec<TableId> = q.tables.clone();
        order.sort_by(|&a, &b| est_rows(a).total_cmp(&est_rows(b)));

        let mut matched: HashMap<TableId, Vec<u32>> = HashMap::new();
        for &t in &order {
            // Join edge to an already-processed table, if any.
            let edge = q.joins.iter().find(|j| {
                let lt = self.cat.schema.table_of(j.left);
                let rt = self.cat.schema.table_of(j.right);
                (lt == t && matched.contains_key(&rt) && rt != t)
                    || (rt == t && matched.contains_key(&lt) && lt != t)
            });

            let rows = if let Some(j) = edge {
                let (my_col, other_col) = if self.cat.schema.table_of(j.left) == t {
                    (j.left, j.right)
                } else {
                    (j.right, j.left)
                };
                let other_t = self.cat.schema.table_of(other_col);
                let outer_keys = self.column_values(other_t, other_col, &matched[&other_t])?;
                self.access_table(q, t, cfg, physical, Some((my_col, &outer_keys)), &mut st)?
            } else {
                self.access_table(q, t, cfg, physical, None, &mut st)?
            };
            matched.insert(t, rows);
        }

        // Extra semijoin reduction passes to propagate filters both ways.
        for _ in 0..2 {
            for j in &q.joins {
                self.reduce_edge(j.left, j.right, &mut matched, &mut st)?;
                self.reduce_edge(j.right, j.left, &mut matched, &mut st)?;
            }
        }

        // Result cardinality: the surviving rows of the largest (fact)
        // table — exact under key–FK star/snowflake joins.
        let fact = q
            .tables
            .iter()
            .copied()
            .max_by_key(|&t| self.cat.table(t).rows)
            .ok_or(SimError::Internal("query with tables lost them"))?;
        st.rows_out = matched
            .get(&fact)
            .ok_or(SimError::Internal("fact table never accessed"))?
            .len() as u64;
        Ok(st)
    }

    /// Execute and convert to cost, including aggregation/sort surcharges
    /// mirroring the analytical model.
    pub fn execute_cost(
        &self,
        q: &Query,
        cfg: &IndexConfig,
        physical: &HashMap<Index, PhysicalIndex>,
    ) -> SimResult<f64> {
        let st = self.execute(q, cfg, physical)?;
        pipa_obs::count("exec_queries", 1);
        pipa_obs::count("exec_seq_pages", st.seq_pages);
        pipa_obs::count("exec_random_pages", st.random_pages);
        pipa_obs::count("exec_tuples", st.tuples);
        let mut cost = st.cost(&self.params);
        let rows = st.rows_out as f64;
        if !q.aggregates.is_empty() || !q.group_by.is_empty() {
            cost += self.params.cpu_operator_cost
                * rows
                * (q.aggregates.len() + q.group_by.len()).max(1) as f64;
        }
        if !q.order_by.is_empty() && rows > 1.0 {
            cost += 2.0 * self.params.cpu_operator_cost * rows * rows.log2().max(1.0);
        }
        Ok(cost)
    }

    /// Values of `col` over the given rows (NULLs excluded).
    fn column_values(&self, t: TableId, col: ColumnId, rows: &[u32]) -> SimResult<HashSet<i64>> {
        let data = self.table_data(t)?;
        let ord = Storage::ordinal(self.cat.schema, col);
        let col_data = data.column(ord);
        Ok(rows
            .iter()
            .map(|&r| col_data[r as usize])
            .filter(|&v| v != NULL_POSITION)
            .collect())
    }

    /// Materialized data for `t`, or [`SimError::MissingData`].
    fn table_data(&self, t: TableId) -> SimResult<&'a crate::storage::TableData> {
        self.storage
            .table(t)
            .ok_or_else(|| SimError::MissingData(self.cat.schema.table(t).name.clone()))
    }

    /// Semijoin-reduce `keep` side against `by` side along one edge.
    fn reduce_edge(
        &self,
        keep_col: ColumnId,
        by_col: ColumnId,
        matched: &mut HashMap<TableId, Vec<u32>>,
        st: &mut ExecStats,
    ) -> SimResult<()> {
        let keep_t = self.cat.schema.table_of(keep_col);
        let by_t = self.cat.schema.table_of(by_col);
        if keep_t == by_t || !matched.contains_key(&keep_t) || !matched.contains_key(&by_t) {
            return Ok(());
        }
        let keys = self.column_values(by_t, by_col, &matched[&by_t])?;
        let data = self.table_data(keep_t)?;
        let ord = Storage::ordinal(self.cat.schema, keep_col);
        let col = data.column(ord);
        let rows = matched
            .get_mut(&keep_t)
            .ok_or(SimError::Internal("matched set vanished"))?;
        st.tuples += rows.len() as u64;
        rows.retain(|&r| {
            let v = col[r as usize];
            v != NULL_POSITION && keys.contains(&v)
        });
        Ok(())
    }

    /// Pick and execute an access path for one table, returning matched
    /// row ids. `probe` optionally provides (join column, outer key set)
    /// enabling an index nested-loop path.
    fn access_table(
        &self,
        q: &Query,
        t: TableId,
        cfg: &IndexConfig,
        physical: &HashMap<Index, PhysicalIndex>,
        probe: Option<(ColumnId, &HashSet<i64>)>,
        st: &mut ExecStats,
    ) -> SimResult<Vec<u32>> {
        let data = self.table_data(t)?;
        let preds = q.predicates_on(self.cat.schema, t);
        let p = &self.params;

        // Candidate estimates: (cost, plan). The probe variant carries
        // its outer key set so choosing it can never outlive the
        // knowledge that keys exist.
        enum Plan<'x> {
            Seq,
            IndexScan(&'x PhysicalIndex, &'x Predicate),
            IndexProbe(&'x PhysicalIndex, &'x HashSet<i64>),
        }
        let seq_est =
            p.seq_page_cost * data.pages() as f64 + p.cpu_tuple_cost * f64::from(data.rows);
        let mut best_est = seq_est;
        let mut plan = Plan::Seq;

        for idx in cfg.indexes() {
            if idx.table(self.cat.schema) != t {
                continue;
            }
            let Some(phys) = physical.get(idx) else {
                continue;
            };
            // Filter-driven index scan on the leading column.
            if let Some(pred) = preds.iter().find(|pr| pr.col == idx.leading()) {
                let sel = pred.selectivity(self.cat.column(pred.col));
                let tuples = sel * f64::from(data.rows);
                let est = f64::from(phys.height) * p.random_page_cost
                    + p.seq_page_cost * phys.leaf_pages_for(tuples.ceil() as u64) as f64
                    + p.random_page_cost * tuples.min(2.0 * data.pages() as f64)
                    + p.cpu_tuple_cost * tuples;
                if est < best_est {
                    best_est = est;
                    plan = Plan::IndexScan(phys, pred);
                }
            }
            // Join-driven probe.
            if let Some((join_col, keys)) = probe {
                if idx.leading() == join_col {
                    let per_key =
                        f64::from(data.rows) / self.cat.column(join_col).ndv.max(1) as f64;
                    let est = keys.len() as f64
                        * (f64::from(phys.height) * p.random_page_cost
                            + p.random_page_cost * per_key.max(1.0)
                            + p.cpu_tuple_cost * per_key.max(1.0));
                    if est < best_est {
                        best_est = est;
                        plan = Plan::IndexProbe(phys, keys);
                    }
                }
            }
        }

        let candidates: Vec<u32> = match plan {
            Plan::Seq => {
                st.seq_pages += data.pages();
                st.tuples += u64::from(data.rows);
                (0..data.rows).collect()
            }
            Plan::IndexScan(phys, pred) => {
                let (lo, hi) = pred.position_bounds(self.cat.column(pred.col));
                let (rows, entries) = phys.range_leading(lo, hi);
                st.random_pages += u64::from(phys.height);
                st.seq_pages += phys.leaf_pages_for(entries);
                st.tuples += entries;
                // Heap fetches: distinct pages of the fetched rows.
                let pages: HashSet<u32> = rows.iter().map(|&r| data.page_of(r)).collect();
                st.random_pages += pages.len() as u64;
                rows
            }
            Plan::IndexProbe(phys, keys) => {
                let mut rows = Vec::new();
                let mut pages: HashSet<u32> = HashSet::new();
                for &k in keys {
                    let (hit, entries) = phys.lookup_leading(k);
                    st.random_pages += u64::from(phys.height);
                    st.tuples += entries;
                    for &r in &hit {
                        pages.insert(data.page_of(r));
                    }
                    rows.extend(hit);
                }
                st.random_pages += pages.len() as u64;
                rows
            }
        };

        // Residual filtering: apply every predicate (re-checking the index
        // predicate is harmless) and the probe key membership.
        let mut out = Vec::with_capacity(candidates.len());
        'rows: for r in candidates {
            for pred in &preds {
                let ord = Storage::ordinal(self.cat.schema, pred.col);
                let v = data.column(ord)[r as usize];
                if v == NULL_POSITION || !pred.matches_position(v, self.cat.column(pred.col)) {
                    continue 'rows;
                }
            }
            if let Some((join_col, keys)) = probe {
                let ord = Storage::ordinal(self.cat.schema, join_col);
                let v = data.column(ord)[r as usize];
                if v == NULL_POSITION || !keys.contains(&v) {
                    continue 'rows;
                }
            }
            out.push(r);
        }
        Ok(out)
    }
}

/// Build physical indexes for every index of a configuration.
pub fn build_physical(
    cat: Catalog<'_>,
    storage: &Storage,
    cfg: &IndexConfig,
) -> HashMap<Index, PhysicalIndex> {
    cfg.indexes()
        .iter()
        .filter_map(|i| {
            let data = storage.table(i.table(cat.schema))?;
            Some((i.clone(), PhysicalIndex::build(cat.schema, data, i.clone())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AnalyticalCostModel, CostModel};
    use crate::datagen::generate_table;
    use crate::query::QueryBuilder;
    use crate::schema::{DataType, Schema};
    use crate::stats::{ColumnStats, TableStats};

    struct Fixture {
        schema: Schema,
        tstats: Vec<TableStats>,
        cstats: Vec<ColumnStats>,
        storage: Storage,
    }

    impl Fixture {
        fn new() -> Self {
            let mut schema = Schema::new();
            schema.add_table(
                "fact",
                100_000,
                &[
                    ("f_id", DataType::Int),
                    ("f_dim", DataType::Int),
                    ("f_val", DataType::Int),
                ],
            );
            schema.add_table(
                "dim",
                2000,
                &[("d_id", DataType::Int), ("d_cat", DataType::Int)],
            );
            let cstats = vec![
                ColumnStats::uniform(ColumnId(0), DataType::Int, 100_000, 0, 99_999),
                ColumnStats::uniform(ColumnId(1), DataType::Int, 2000, 0, 1999),
                ColumnStats::uniform(ColumnId(2), DataType::Int, 100, 0, 99),
                ColumnStats::uniform(ColumnId(3), DataType::Int, 2000, 0, 1999),
                ColumnStats::uniform(ColumnId(4), DataType::Int, 10, 0, 9),
            ];
            let mut storage = Storage::new(2);
            for t in schema.tables() {
                let rows = t.base_rows as u32;
                storage.set_table(generate_table(&schema, &cstats, t.id, rows, 99));
            }
            let tstats = schema
                .tables()
                .iter()
                .map(|t| {
                    let d = storage.table(t.id).unwrap();
                    TableStats {
                        rows: u64::from(d.rows),
                        pages: d.pages(),
                    }
                })
                .collect();
            Fixture {
                schema,
                tstats,
                cstats,
                storage,
            }
        }

        fn cat(&self) -> Catalog<'_> {
            Catalog {
                schema: &self.schema,
                table_stats: &self.tstats,
                column_stats: &self.cstats,
            }
        }

        fn col(&self, n: &str) -> ColumnId {
            self.schema.column_id(n).unwrap()
        }
    }

    #[test]
    fn index_reduces_actual_pages() {
        let fx = Fixture::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_id"), 0.5))
            .select(fx.col("f_val"))
            .build(&fx.schema)
            .unwrap();
        let ex = Executor::new(fx.cat(), &fx.storage);
        let empty = IndexConfig::empty();
        let none = ex.execute(&q, &empty, &HashMap::new()).unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(fx.col("f_id"))]);
        let phys = build_physical(fx.cat(), &fx.storage, &cfg);
        let with = ex.execute(&q, &cfg, &phys).unwrap();
        assert_eq!(none.rows_out, with.rows_out, "same answer");
        assert!(
            with.seq_pages + with.random_pages < (none.seq_pages + none.random_pages) / 4,
            "index must cut page reads: {with:?} vs {none:?}"
        );
    }

    #[test]
    fn seq_and_index_agree_on_result() {
        let fx = Fixture::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::between(fx.col("f_dim"), 0.2, 0.3))
            .filter(&fx.schema, Predicate::le(fx.col("f_val"), 0.5))
            .select(fx.col("f_id"))
            .build(&fx.schema)
            .unwrap();
        let ex = Executor::new(fx.cat(), &fx.storage);
        let none = ex.execute(&q, &IndexConfig::empty(), &HashMap::new()).unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(fx.col("f_dim"))]);
        let phys = build_physical(fx.cat(), &fx.storage, &cfg);
        let with = ex.execute(&q, &cfg, &phys).unwrap();
        assert_eq!(none.rows_out, with.rows_out);
        assert!(none.rows_out > 0, "fixture should match something");
    }

    #[test]
    fn join_semijoin_filters_fact() {
        let fx = Fixture::new();
        let q = QueryBuilder::new()
            .join(&fx.schema, fx.col("f_dim"), fx.col("d_id"))
            .filter(&fx.schema, Predicate::eq(fx.col("d_cat"), 0.0))
            .select(fx.col("f_val"))
            .build(&fx.schema)
            .unwrap();
        let ex = Executor::new(fx.cat(), &fx.storage);
        let st = ex.execute(&q, &IndexConfig::empty(), &HashMap::new()).unwrap();
        // ~1/10 of dims selected → ~1/10 of fact rows survive.
        let frac = st.rows_out as f64 / 100_000.0;
        assert!(frac > 0.02 && frac < 0.3, "join output fraction {frac}");
    }

    #[test]
    fn join_key_index_enables_cheap_probe() {
        let fx = Fixture::new();
        let q = QueryBuilder::new()
            .join(&fx.schema, fx.col("f_dim"), fx.col("d_id"))
            .filter(&fx.schema, Predicate::eq(fx.col("d_id"), 0.5))
            .select(fx.col("f_val"))
            .build(&fx.schema)
            .unwrap();
        let ex = Executor::new(fx.cat(), &fx.storage);
        let none = ex.execute(&q, &IndexConfig::empty(), &HashMap::new()).unwrap();
        let cfg = IndexConfig::from_indexes([Index::single(fx.col("f_dim"))]);
        let phys = build_physical(fx.cat(), &fx.storage, &cfg);
        let with = ex.execute(&q, &cfg, &phys).unwrap();
        assert_eq!(none.rows_out, with.rows_out);
        assert!(
            with.seq_pages + with.random_pages < none.seq_pages + none.random_pages,
            "probe should be cheaper: {with:?} vs {none:?}"
        );
    }

    #[test]
    fn actual_and_estimated_rank_indexes_alike() {
        // The executor and the analytical model must agree on *which*
        // index is best for a query (ordinal fidelity).
        let fx = Fixture::new();
        let q = QueryBuilder::new()
            .filter(&fx.schema, Predicate::eq(fx.col("f_id"), 0.25))
            .select(fx.col("f_val"))
            .build(&fx.schema)
            .unwrap();
        let m = AnalyticalCostModel::new();
        let ex = Executor::new(fx.cat(), &fx.storage);
        let mut est = Vec::new();
        let mut act = Vec::new();
        for c in ["f_id", "f_dim", "f_val"] {
            let cfg = IndexConfig::from_indexes([Index::single(fx.col(c))]);
            let phys = build_physical(fx.cat(), &fx.storage, &cfg);
            est.push((m.query_cost(fx.cat(), &q, &cfg), c));
            act.push((ex.execute_cost(&q, &cfg, &phys).unwrap(), c));
        }
        let best_est = est.iter().min_by(|a, b| a.0.total_cmp(&b.0)).unwrap().1;
        let best_act = act.iter().min_by(|a, b| a.0.total_cmp(&b.0)).unwrap().1;
        assert_eq!(best_est, best_act);
        assert_eq!(best_est, "f_id");
    }

    #[test]
    fn empty_result_is_handled() {
        let fx = Fixture::new();
        // f_val domain is [0,99]; In-list on a position that is filtered to
        // an empty set after residual checks still executes cleanly.
        let q = QueryBuilder::new()
            .filter(
                &fx.schema,
                Predicate::in_list(fx.col("f_id"), vec![0.123_456]),
            )
            .filter(&fx.schema, Predicate::eq(fx.col("f_val"), 0.77))
            .select(fx.col("f_val"))
            .build(&fx.schema)
            .unwrap();
        let ex = Executor::new(fx.cat(), &fx.storage);
        let st = ex.execute(&q, &IndexConfig::empty(), &HashMap::new()).unwrap();
        assert!(st.rows_out <= 5);
    }
}
