//! Index definitions and budgeted index configurations.
//!
//! An [`Index`] is an ordered list of columns of a single table (B+-tree
//! semantics: the leading column dominates usability, which is why the
//! paper's probing stage restricts itself to single-column information).
//! An [`IndexConfig`] is the set of indexes an advisor recommends, bounded
//! by a budget on index *count* (the paper's default `B = 4`) or storage.

use crate::error::{SimError, SimResult};
use crate::schema::{ColumnId, Schema, TableId};
use crate::stats::TableStats;
use std::fmt;

/// Entry overhead per index tuple (item pointer + header), bytes.
const INDEX_TUPLE_OVERHEAD: u32 = 12;

/// A (possibly multi-column) B+-tree index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Index {
    /// Key columns in order; all must belong to the same table.
    pub columns: Vec<ColumnId>,
}

impl Index {
    /// Single-column index.
    pub fn single(col: ColumnId) -> Self {
        Index { columns: vec![col] }
    }

    /// Multi-column index; validates non-emptiness, distinctness, and
    /// single-table membership.
    pub fn multi(schema: &Schema, columns: Vec<ColumnId>) -> SimResult<Self> {
        if columns.is_empty() {
            return Err(SimError::InvalidIndex("empty column list".into()));
        }
        let table = schema.table_of(columns[0]);
        for (i, &c) in columns.iter().enumerate() {
            if schema.table_of(c) != table {
                return Err(SimError::InvalidIndex(
                    "columns span multiple tables".into(),
                ));
            }
            if columns[..i].contains(&c) {
                return Err(SimError::InvalidIndex("duplicate column".into()));
            }
        }
        Ok(Index { columns })
    }

    /// The leading (primary) key column.
    pub fn leading(&self) -> ColumnId {
        self.columns[0]
    }

    /// The indexed table.
    pub fn table(&self, schema: &Schema) -> TableId {
        schema.table_of(self.columns[0])
    }

    /// Estimated size in bytes: one entry per row, key widths plus
    /// per-entry overhead, with a 1/0.9 fill-factor allowance.
    pub fn size_bytes(&self, schema: &Schema, rows: u64) -> u64 {
        let key_width: u32 = self
            .columns
            .iter()
            .map(|&c| schema.column(c).ty.width())
            .sum();
        let entry = u64::from(key_width + INDEX_TUPLE_OVERHEAD);
        (rows * entry * 10) / 9
    }

    /// Leaf pages of the index given the table's stats.
    pub fn leaf_pages(&self, schema: &Schema, stats: &TableStats) -> u64 {
        self.size_bytes(schema, stats.rows)
            .div_ceil(crate::cost::PAGE_SIZE)
            .max(1)
    }

    /// B+-tree height estimate (levels above the leaves).
    pub fn height(&self, schema: &Schema, stats: &TableStats) -> u32 {
        let mut pages = self.leaf_pages(schema, stats);
        let mut h = 0u32;
        // ~200 fanout for internal nodes.
        while pages > 1 {
            pages = pages.div_ceil(200);
            h += 1;
        }
        h.max(1)
    }

    /// Human-readable name, e.g. `idx_lineitem_l_partkey_l_suppkey`.
    pub fn name(&self, schema: &Schema) -> String {
        let t = schema.table(self.table(schema)).name.clone();
        let cols: Vec<&str> = self
            .columns
            .iter()
            .map(|&c| schema.column(c).name.as_str())
            .collect();
        format!("idx_{t}_{}", cols.join("_"))
    }
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.columns)
    }
}

/// A set of indexes recommended by an advisor, with budget accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexConfig {
    indexes: Vec<Index>,
}

impl IndexConfig {
    /// The empty configuration (no indexes; the paper's `∅`).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from a list, deduplicating.
    pub fn from_indexes(indexes: impl IntoIterator<Item = Index>) -> Self {
        let mut cfg = Self::default();
        for i in indexes {
            cfg.add(i);
        }
        cfg
    }

    /// Add an index if not already present. Returns whether it was added.
    pub fn add(&mut self, index: Index) -> bool {
        if self.indexes.contains(&index) {
            false
        } else {
            self.indexes.push(index);
            true
        }
    }

    /// Remove an index. Returns whether it was present.
    pub fn remove(&mut self, index: &Index) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|i| i != index);
        self.indexes.len() != before
    }

    /// The indexes in insertion order.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Number of indexes (the paper's count budget `B`).
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether no indexes are present.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Whether any index has the given leading column (the probing stage's
    /// `l_i ∈ I^p` test uses leading columns).
    pub fn has_leading_column(&self, col: ColumnId) -> bool {
        self.indexes.iter().any(|i| i.leading() == col)
    }

    /// Leading columns of all indexes, deduplicated, insertion order.
    pub fn leading_columns(&self) -> Vec<ColumnId> {
        let mut out = Vec::with_capacity(self.indexes.len());
        for i in &self.indexes {
            if !out.contains(&i.leading()) {
                out.push(i.leading());
            }
        }
        out
    }

    /// Total estimated size in bytes.
    pub fn size_bytes<F>(&self, schema: &Schema, mut rows_of: F) -> u64
    where
        F: FnMut(TableId) -> u64,
    {
        self.indexes
            .iter()
            .map(|i| i.size_bytes(schema, rows_of(i.table(schema))))
            .sum()
    }

    /// Whether the count budget is satisfied.
    pub fn within_count_budget(&self, budget: usize) -> bool {
        self.indexes.len() <= budget
    }
}

impl FromIterator<Index> for IndexConfig {
    fn from_iter<T: IntoIterator<Item = Index>>(iter: T) -> Self {
        Self::from_indexes(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn toy() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            "orders",
            1000,
            &[
                ("o_orderkey", DataType::BigInt),
                ("o_custkey", DataType::Int),
            ],
        );
        s.add_table("customer", 100, &[("c_custkey", DataType::Int)]);
        s
    }

    #[test]
    fn multi_rejects_cross_table_and_dups() {
        let s = toy();
        let o = s.column_id("o_orderkey").unwrap();
        let c = s.column_id("c_custkey").unwrap();
        assert!(Index::multi(&s, vec![o, c]).is_err());
        assert!(Index::multi(&s, vec![o, o]).is_err());
        assert!(Index::multi(&s, vec![]).is_err());
        assert!(Index::multi(&s, vec![o, s.column_id("o_custkey").unwrap()]).is_ok());
    }

    #[test]
    fn size_scales_with_rows_and_width() {
        let s = toy();
        let o = s.column_id("o_orderkey").unwrap();
        let idx = Index::single(o);
        let small = idx.size_bytes(&s, 1000);
        let big = idx.size_bytes(&s, 10_000);
        let ratio = big as f64 / small as f64;
        assert!((ratio - 10.0).abs() < 0.01, "ratio={ratio}");
        let wide = Index::multi(&s, vec![o, s.column_id("o_custkey").unwrap()]).unwrap();
        assert!(wide.size_bytes(&s, 1000) > small);
    }

    #[test]
    fn config_dedup_and_budget() {
        let s = toy();
        let o = s.column_id("o_orderkey").unwrap();
        let mut cfg = IndexConfig::empty();
        assert!(cfg.add(Index::single(o)));
        assert!(!cfg.add(Index::single(o)));
        assert_eq!(cfg.len(), 1);
        assert!(cfg.within_count_budget(1));
        assert!(!cfg.within_count_budget(0));
        assert!(cfg.has_leading_column(o));
        assert!(cfg.remove(&Index::single(o)));
        assert!(cfg.is_empty());
    }

    #[test]
    fn leading_columns_deduped() {
        let s = toy();
        let o = s.column_id("o_orderkey").unwrap();
        let c2 = s.column_id("o_custkey").unwrap();
        let cfg = IndexConfig::from_indexes([
            Index::single(o),
            Index::multi(&s, vec![o, c2]).unwrap(),
            Index::single(c2),
        ]);
        assert_eq!(cfg.leading_columns(), vec![o, c2]);
    }

    #[test]
    fn height_grows_slowly() {
        let s = toy();
        let idx = Index::single(s.column_id("o_orderkey").unwrap());
        let small = TableStats {
            rows: 1000,
            pages: 10,
        };
        let big = TableStats {
            rows: 100_000_000,
            pages: 1_000_000,
        };
        assert!(idx.height(&s, &small) <= idx.height(&s, &big));
        assert!(idx.height(&s, &big) <= 5);
    }

    #[test]
    fn names_are_descriptive() {
        let s = toy();
        let idx = Index::single(s.column_id("o_custkey").unwrap());
        assert_eq!(idx.name(&s), "idx_orders_o_custkey");
    }
}
