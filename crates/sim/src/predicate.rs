//! Sargable filter predicates.
//!
//! A predicate stores its operands as *domain fractions* so that
//! selectivity estimation, SQL rendering, and data-independent workload
//! generation all agree. The paper's attack requires injected queries to be
//! "executable and sargable"; every predicate representable here is both.

use crate::schema::ColumnId;
use crate::stats::ColumnStats;
use crate::value::fraction_to_value;

/// Predicate operator with normalized operands.
#[derive(Debug, Clone, PartialEq)]
pub enum PredOp {
    /// `col = v` where `v` sits at the given domain fraction.
    Eq(f64),
    /// `col <= v`.
    Le(f64),
    /// `col >= v`.
    Ge(f64),
    /// `v_lo <= col <= v_hi` (rendered as BETWEEN).
    Between(f64, f64),
    /// `col IN (v_1..v_k)` at the given fractions.
    In(Vec<f64>),
}

/// A single sargable predicate on one column.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Filtered column.
    pub col: ColumnId,
    /// Operator and operands.
    pub op: PredOp,
}

impl Predicate {
    /// Equality predicate at a domain fraction.
    pub fn eq(col: ColumnId, frac: f64) -> Self {
        Predicate {
            col,
            op: PredOp::Eq(frac),
        }
    }

    /// Range predicate covering `[lo, hi]` domain fractions.
    pub fn between(col: ColumnId, lo: f64, hi: f64) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Predicate {
            col,
            op: PredOp::Between(lo, hi),
        }
    }

    /// One-sided ranges.
    pub fn le(col: ColumnId, frac: f64) -> Self {
        Predicate {
            col,
            op: PredOp::Le(frac),
        }
    }

    /// `col >= v` at a domain fraction.
    pub fn ge(col: ColumnId, frac: f64) -> Self {
        Predicate {
            col,
            op: PredOp::Ge(frac),
        }
    }

    /// IN-list at the given fractions.
    pub fn in_list(col: ColumnId, fracs: Vec<f64>) -> Self {
        Predicate {
            col,
            op: PredOp::In(fracs),
        }
    }

    /// Estimated selectivity given the column's statistics.
    pub fn selectivity(&self, stats: &ColumnStats) -> f64 {
        match &self.op {
            PredOp::Eq(_) => stats.eq_selectivity(),
            PredOp::Le(f) => stats.range_selectivity(stats.min, stats.position_at(*f)),
            PredOp::Ge(f) => stats.range_selectivity(stats.position_at(*f), stats.max),
            PredOp::Between(lo, hi) => {
                stats.range_selectivity(stats.position_at(*lo), stats.position_at(*hi))
            }
            PredOp::In(fracs) => (stats.eq_selectivity() * fracs.len() as f64).clamp(0.0, 1.0),
        }
    }

    /// Whether this predicate is an equality (useful for index matching:
    /// equality prefixes extend multi-column index usability).
    pub fn is_equality(&self) -> bool {
        matches!(self.op, PredOp::Eq(_))
    }

    /// Render as SQL given the column's name and statistics.
    pub fn render_sql(&self, name: &str, stats: &ColumnStats) -> String {
        let v = |f: f64| fraction_to_value(stats.ty, stats.min, stats.max, f).render_sql();
        match &self.op {
            PredOp::Eq(f) => format!("{name} = {}", v(*f)),
            PredOp::Le(f) => format!("{name} <= {}", v(*f)),
            PredOp::Ge(f) => format!("{name} >= {}", v(*f)),
            PredOp::Between(lo, hi) => {
                format!("{name} between {} and {}", v(*lo), v(*hi))
            }
            PredOp::In(fs) => {
                let items: Vec<String> = fs.iter().map(|f| v(*f)).collect();
                format!("{name} in ({})", items.join(", "))
            }
        }
    }

    /// The inclusive domain-position interval this predicate accepts, for
    /// the executor. `None` bound means unbounded on that side. For IN
    /// lists the hull is returned (the executor re-checks membership).
    pub fn position_bounds(&self, stats: &ColumnStats) -> (Option<i64>, Option<i64>) {
        match &self.op {
            PredOp::Eq(f) => {
                let p = stats.position_at(*f);
                (Some(p), Some(p))
            }
            PredOp::Le(f) => (None, Some(stats.position_at(*f))),
            PredOp::Ge(f) => (Some(stats.position_at(*f)), None),
            PredOp::Between(lo, hi) => (Some(stats.position_at(*lo)), Some(stats.position_at(*hi))),
            PredOp::In(fs) => {
                let ps: Vec<i64> = fs.iter().map(|f| stats.position_at(*f)).collect();
                (ps.iter().min().copied(), ps.iter().max().copied())
            }
        }
    }

    /// Exact row-level check against a domain position (executor use).
    pub fn matches_position(&self, pos: i64, stats: &ColumnStats) -> bool {
        match &self.op {
            PredOp::Eq(f) => pos == stats.position_at(*f),
            PredOp::Le(f) => pos <= stats.position_at(*f),
            PredOp::Ge(f) => pos >= stats.position_at(*f),
            PredOp::Between(lo, hi) => {
                pos >= stats.position_at(*lo) && pos <= stats.position_at(*hi)
            }
            PredOp::In(fs) => fs.iter().any(|f| pos == stats.position_at(*f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn stats() -> ColumnStats {
        ColumnStats::uniform(ColumnId(3), DataType::Int, 1000, 0, 9999)
    }

    #[test]
    fn eq_selectivity_matches_stats() {
        let s = stats();
        let p = Predicate::eq(ColumnId(3), 0.5);
        assert!((p.selectivity(&s) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn between_selectivity_tracks_width() {
        let s = stats();
        let narrow = Predicate::between(ColumnId(3), 0.4, 0.45);
        let wide = Predicate::between(ColumnId(3), 0.1, 0.9);
        assert!(narrow.selectivity(&s) < wide.selectivity(&s));
        assert!((wide.selectivity(&s) - 0.8).abs() < 0.01);
    }

    #[test]
    fn between_normalizes_order() {
        let p = Predicate::between(ColumnId(3), 0.9, 0.1);
        assert_eq!(p, Predicate::between(ColumnId(3), 0.1, 0.9));
    }

    #[test]
    fn in_list_selectivity_scales() {
        let s = stats();
        let p = Predicate::in_list(ColumnId(3), vec![0.1, 0.2, 0.3]);
        assert!((p.selectivity(&s) - 0.003).abs() < 1e-9);
    }

    #[test]
    fn one_sided_ranges() {
        let s = stats();
        let le = Predicate::le(ColumnId(3), 0.25);
        let ge = Predicate::ge(ColumnId(3), 0.75);
        assert!((le.selectivity(&s) - 0.25).abs() < 0.01);
        assert!((ge.selectivity(&s) - 0.25).abs() < 0.01);
    }

    #[test]
    fn renders_sql() {
        let s = stats();
        let p = Predicate::between(ColumnId(3), 0.0, 1.0);
        assert_eq!(
            p.render_sql("l_quantity", &s),
            "l_quantity between 0 and 9999"
        );
        let p = Predicate::eq(ColumnId(3), 0.0);
        assert_eq!(p.render_sql("l_quantity", &s), "l_quantity = 0");
    }

    #[test]
    fn bounds_and_matching_agree() {
        let s = stats();
        let p = Predicate::between(ColumnId(3), 0.2, 0.4);
        let (lo, hi) = p.position_bounds(&s);
        let (lo, hi) = (lo.unwrap(), hi.unwrap());
        assert!(p.matches_position(lo, &s) && p.matches_position(hi, &s));
        assert!(!p.matches_position(lo - 1, &s) && !p.matches_position(hi + 1, &s));
    }

    #[test]
    fn in_hull_contains_members() {
        let s = stats();
        let p = Predicate::in_list(ColumnId(3), vec![0.9, 0.1]);
        let (lo, hi) = p.position_bounds(&s);
        assert!(lo.unwrap() <= hi.unwrap());
        assert!(p.matches_position(s.position_at(0.1), &s));
        assert!(!p.matches_position(s.position_at(0.5), &s));
    }
}
