//! Workloads: multisets of queries with frequencies.
//!
//! The paper's objects `W` (target/normal workload), `PW` (probing
//! workload), and `Ŵ` (injection workload) are all values of [`Workload`].

use crate::query::Query;
use crate::schema::ColumnId;

/// One workload entry: a query and how often it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadQuery {
    /// The query.
    pub query: Query,
    /// Execution frequency (the paper draws these uniformly at random for
    /// normal workloads and uses unit frequency for probing queries).
    pub frequency: u32,
}

/// A workload: queries with frequencies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    queries: Vec<WorkloadQuery>,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(query, frequency)` pairs.
    pub fn from_queries(items: impl IntoIterator<Item = (Query, u32)>) -> Self {
        Workload {
            queries: items
                .into_iter()
                .map(|(query, frequency)| WorkloadQuery { query, frequency })
                .collect(),
        }
    }

    /// Add a query with a frequency.
    pub fn push(&mut self, query: Query, frequency: u32) {
        self.queries.push(WorkloadQuery { query, frequency });
    }

    /// Append every entry of `other` (the paper's `{W, Ŵ}` training set).
    pub fn extend_from(&mut self, other: &Workload) {
        self.queries.extend(other.queries.iter().cloned());
    }

    /// Union into a new workload.
    pub fn union(&self, other: &Workload) -> Workload {
        let mut w = self.clone();
        w.extend_from(other);
        w
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload has no entries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Sum of frequencies (total query executions).
    pub fn total_frequency(&self) -> u64 {
        self.queries.iter().map(|q| u64::from(q.frequency)).sum()
    }

    /// Iterate over entries.
    pub fn iter(&self) -> impl Iterator<Item = &WorkloadQuery> {
        self.queries.iter()
    }

    /// The entries as a slice.
    pub fn entries(&self) -> &[WorkloadQuery] {
        &self.queries
    }

    /// Frequency-weighted count of how often each column appears in a
    /// sargable filter predicate, over the whole workload. Index advisors
    /// use this as their workload featurization, and SWIRL's invalid-action
    /// masking masks columns with zero counts.
    pub fn filter_column_frequencies(&self, num_columns: usize) -> Vec<f64> {
        let mut freq = vec![0.0; num_columns];
        for wq in &self.queries {
            for c in wq.query.filter_columns() {
                freq[c.0 as usize] += f64::from(wq.frequency);
            }
        }
        freq
    }

    /// All columns usable as index candidates: filter columns plus join
    /// columns (join keys benefit from index nested loops, and real
    /// advisors consider them).
    pub fn candidate_columns(&self) -> Vec<ColumnId> {
        let mut cols: Vec<ColumnId> = self
            .queries
            .iter()
            .flat_map(|wq| {
                let mut v = wq.query.filter_columns();
                v.extend(wq.query.join_columns());
                v
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// All columns appearing in any filter predicate.
    pub fn filter_columns(&self) -> Vec<ColumnId> {
        let mut cols: Vec<ColumnId> = self
            .queries
            .iter()
            .flat_map(|wq| wq.query.filter_columns())
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// True if the two workloads share no identical query (the paper's
    /// "extraneous" requirement `Ŵ ∩ W = ∅`).
    pub fn is_disjoint_from(&self, other: &Workload) -> bool {
        !self
            .queries
            .iter()
            .any(|a| other.queries.iter().any(|b| a.query == b.query))
    }
}

impl FromIterator<(Query, u32)> for Workload {
    fn from_iter<T: IntoIterator<Item = (Query, u32)>>(iter: T) -> Self {
        Self::from_queries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query::QueryBuilder;
    use crate::schema::{DataType, Schema};

    fn toy() -> (Schema, Query, Query) {
        let mut s = Schema::new();
        s.add_table("t", 100, &[("a", DataType::Int), ("b", DataType::Int)]);
        let a = s.column_id("a").unwrap();
        let b = s.column_id("b").unwrap();
        let qa = QueryBuilder::new()
            .filter(&s, Predicate::eq(a, 0.5))
            .select(a)
            .build(&s)
            .unwrap();
        let qb = QueryBuilder::new()
            .filter(&s, Predicate::eq(b, 0.5))
            .select(b)
            .build(&s)
            .unwrap();
        (s, qa, qb)
    }

    #[test]
    fn frequencies_accumulate() {
        let (s, qa, qb) = toy();
        let w = Workload::from_queries([(qa, 3), (qb, 2)]);
        assert_eq!(w.total_frequency(), 5);
        let f = w.filter_column_frequencies(s.num_columns());
        assert_eq!(f, vec![3.0, 2.0]);
    }

    #[test]
    fn union_keeps_both() {
        let (_, qa, qb) = toy();
        let w1 = Workload::from_queries([(qa.clone(), 1)]);
        let w2 = Workload::from_queries([(qb, 1)]);
        let u = w1.union(&w2);
        assert_eq!(u.len(), 2);
        assert!(!u.is_disjoint_from(&w1));
    }

    #[test]
    fn disjointness_detects_shared_queries() {
        let (_, qa, qb) = toy();
        let w1 = Workload::from_queries([(qa.clone(), 1)]);
        let w2 = Workload::from_queries([(qa, 7), (qb.clone(), 1)]);
        let w3 = Workload::from_queries([(qb, 1)]);
        assert!(!w1.is_disjoint_from(&w2), "same query, different freq");
        assert!(w1.is_disjoint_from(&w3));
    }

    #[test]
    fn filter_columns_sorted_dedup() {
        let (s, qa, qb) = toy();
        let w = Workload::from_queries([(qb, 1), (qa.clone(), 1), (qa, 1)]);
        assert_eq!(
            w.filter_columns(),
            vec![s.column_id("a").unwrap(), s.column_id("b").unwrap()]
        );
    }
}
