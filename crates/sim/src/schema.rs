//! Relational schema: tables, columns, data types, and foreign keys.
//!
//! Columns are addressed by a globally unique [`ColumnId`] so that the rest
//! of the system (index advisors, the probing stage, the query generator)
//! can treat "the set of indexable columns" as a flat `0..L` range, exactly
//! as the paper does (`L = 61` on TPC-H, `L = 425` on our TPC-DS encoding).

use crate::error::{SimError, SimResult};
use std::collections::HashMap;
use std::fmt;

/// Globally unique column identifier (dense, `0..schema.num_columns()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

/// Table identifier (dense, `0..schema.num_tables()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// SQL data type of a column. Only the properties the cost model and data
/// generator need are retained: byte width and whether the domain is
/// ordered text or numeric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 4-byte integer.
    Int,
    /// 8-byte integer (keys on large fact tables).
    BigInt,
    /// Fixed-point decimal, stored as 8 bytes.
    Decimal,
    /// Calendar date, 4 bytes.
    Date,
    /// Fixed-length character data of the given width.
    Char(u16),
    /// Variable-length character data with the given average width.
    Varchar(u16),
}

impl DataType {
    /// Average stored width in bytes, used for page-count estimation.
    pub fn width(self) -> u32 {
        match self {
            DataType::Int | DataType::Date => 4,
            DataType::BigInt | DataType::Decimal => 8,
            DataType::Char(w) => u32::from(w),
            // varlena header + average payload
            DataType::Varchar(w) => 4 + u32::from(w) / 2,
        }
    }

    /// Whether values of this type are rendered as quoted literals in SQL.
    pub fn is_textual(self) -> bool {
        matches!(self, DataType::Char(_) | DataType::Varchar(_))
    }
}

/// A column definition within a table.
#[derive(Debug, Clone)]
pub struct Column {
    /// Global identifier.
    pub id: ColumnId,
    /// Owning table.
    pub table: TableId,
    /// Lower-case column name, e.g. `l_partkey`.
    pub name: String,
    /// Declared data type.
    pub ty: DataType,
}

/// A foreign-key relationship: `from` references `to` (the primary key of
/// another table). The injecting stage uses the foreign-key closure of the
/// best index to delimit the "top-ranked" segment (paper §5, §6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column.
    pub from: ColumnId,
    /// Referenced (primary-key) column.
    pub to: ColumnId,
}

/// A table definition.
#[derive(Debug, Clone)]
pub struct Table {
    /// Global identifier.
    pub id: TableId,
    /// Lower-case table name, e.g. `lineitem`.
    pub name: String,
    /// Columns in declaration order. Their [`ColumnId`]s are dense and
    /// ascending but not necessarily contiguous across tables.
    pub columns: Vec<ColumnId>,
    /// Base row count at scale factor 1. The database scales this.
    pub base_rows: u64,
}

/// A complete relational schema.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    tables: Vec<Table>,
    columns: Vec<Column>,
    foreign_keys: Vec<ForeignKey>,
    table_by_name: HashMap<String, TableId>,
    column_by_name: HashMap<String, ColumnId>,
}

impl Schema {
    /// Create an empty schema; populate with [`Schema::add_table`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table with `(name, type)` columns and a base row count
    /// (row count at scale factor 1). Returns the new table id.
    ///
    /// Column names must be globally unique (TPC-style prefixes guarantee
    /// this), which lets queries reference columns without qualification.
    pub fn add_table(&mut self, name: &str, base_rows: u64, cols: &[(&str, DataType)]) -> TableId {
        let tid = TableId(self.tables.len() as u32);
        let mut column_ids = Vec::with_capacity(cols.len());
        for &(cname, ty) in cols {
            let cid = ColumnId(self.columns.len() as u32);
            assert!(
                !self.column_by_name.contains_key(cname),
                "duplicate column name {cname}"
            );
            self.columns.push(Column {
                id: cid,
                table: tid,
                name: cname.to_string(),
                ty,
            });
            self.column_by_name.insert(cname.to_string(), cid);
            column_ids.push(cid);
        }
        assert!(
            !self.table_by_name.contains_key(name),
            "duplicate table name {name}"
        );
        self.table_by_name.insert(name.to_string(), tid);
        self.tables.push(Table {
            id: tid,
            name: name.to_string(),
            columns: column_ids,
            base_rows,
        });
        tid
    }

    /// Register a foreign key by column names.
    pub fn add_foreign_key(&mut self, from: &str, to: &str) {
        let from = self
            .column_id(from)
            .unwrap_or_else(|_| panic!("unknown fk column {from}"));
        let to = self
            .column_id(to)
            .unwrap_or_else(|_| panic!("unknown fk column {to}"));
        self.foreign_keys.push(ForeignKey { from, to });
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of columns across all tables (the paper's `L`).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All tables in declaration order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// All registered foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Look up a table definition.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Look up a column definition.
    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.0 as usize]
    }

    /// Resolve a table name.
    pub fn table_id(&self, name: &str) -> SimResult<TableId> {
        self.table_by_name
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownTable(name.to_string()))
    }

    /// Resolve a column name.
    pub fn column_id(&self, name: &str) -> SimResult<ColumnId> {
        self.column_by_name
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownColumn(name.to_string()))
    }

    /// The table owning a column.
    pub fn table_of(&self, col: ColumnId) -> TableId {
        self.column(col).table
    }

    /// All columns usable as index keys (every column, per the paper's
    /// single-column probing space).
    pub fn indexable_columns(&self) -> Vec<ColumnId> {
        self.columns.iter().map(|c| c.id).collect()
    }

    /// Foreign-key closure of a column: every column related to `col` by a
    /// foreign key in either direction, transitively. Used by the injecting
    /// stage to widen the "top-ranked" segment (paper §6.4: the best index
    /// *and its foreign keys* are treated as top-ranked).
    pub fn foreign_key_closure(&self, col: ColumnId) -> Vec<ColumnId> {
        let mut seen = vec![false; self.columns.len()];
        let mut stack = vec![col];
        let mut out = Vec::new();
        while let Some(c) = stack.pop() {
            if std::mem::replace(&mut seen[c.0 as usize], true) {
                continue;
            }
            out.push(c);
            for fk in &self.foreign_keys {
                if fk.from == c && !seen[fk.to.0 as usize] {
                    stack.push(fk.to);
                }
                if fk.to == c && !seen[fk.from.0 as usize] {
                    stack.push(fk.from);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Columns of `table` in declaration order.
    pub fn columns_of(&self, table: TableId) -> &[ColumnId] {
        &self.table(table).columns
    }

    /// Average row width in bytes for a table (sum of column widths plus a
    /// fixed 24-byte tuple header, as in PostgreSQL).
    pub fn row_width(&self, table: TableId) -> u32 {
        24 + self
            .columns_of(table)
            .iter()
            .map(|&c| self.column(c).ty.width())
            .sum::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Schema {
        let mut s = Schema::new();
        s.add_table(
            "orders",
            1000,
            &[
                ("o_orderkey", DataType::BigInt),
                ("o_custkey", DataType::Int),
                ("o_comment", DataType::Varchar(40)),
            ],
        );
        s.add_table(
            "customer",
            100,
            &[("c_custkey", DataType::Int), ("c_name", DataType::Char(12))],
        );
        s.add_foreign_key("o_custkey", "c_custkey");
        s
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let s = toy();
        assert_eq!(s.num_tables(), 2);
        assert_eq!(s.num_columns(), 5);
        assert_eq!(s.column_id("o_custkey").unwrap(), ColumnId(1));
        assert_eq!(s.table_id("customer").unwrap(), TableId(1));
        assert_eq!(s.table_of(ColumnId(3)), TableId(1));
    }

    #[test]
    fn unknown_names_error() {
        let s = toy();
        assert!(matches!(s.table_id("nope"), Err(SimError::UnknownTable(_))));
        assert!(matches!(
            s.column_id("nope"),
            Err(SimError::UnknownColumn(_))
        ));
    }

    #[test]
    fn fk_closure_is_symmetric_and_transitive() {
        let s = toy();
        let o_custkey = s.column_id("o_custkey").unwrap();
        let c_custkey = s.column_id("c_custkey").unwrap();
        let cl = s.foreign_key_closure(o_custkey);
        assert!(cl.contains(&o_custkey) && cl.contains(&c_custkey));
        // Closure from the other side reaches back.
        let cl2 = s.foreign_key_closure(c_custkey);
        assert_eq!(cl, cl2);
    }

    #[test]
    fn row_width_includes_header() {
        let s = toy();
        let w = s.row_width(TableId(0));
        assert_eq!(w, 24 + 8 + 4 + (4 + 20));
    }

    #[test]
    fn textual_types_and_widths() {
        assert!(DataType::Varchar(10).is_textual());
        assert!(!DataType::Decimal.is_textual());
        assert_eq!(DataType::Char(25).width(), 25);
        assert_eq!(DataType::Int.width(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_column_panics() {
        let mut s = toy();
        s.add_table("x", 1, &[("o_orderkey", DataType::Int)]);
    }
}
