//! # pipa-obs — deterministic observability for the PIPA stress-test stack
//!
//! A zero-dependency span/counter/event layer threaded through every crate
//! (`pipa-sim` what-if lookups and executor page accesses, `pipa-ia`
//! training timings and reward traces, `pipa-core` harness stages). The
//! experiment binaries expose it as `--trace <path>` (events) and
//! `--metrics-out <path>` (timings).
//!
//! ## The two channels
//!
//! Instrumentation records into two separate streams with different
//! contracts:
//!
//! * the **trace** channel carries semantic events (phase transitions,
//!   probing epochs, counters, reward traces, stress outcomes). Every
//!   value in it is a pure function of the experiment's seeds, so the
//!   rendered JSONL is **byte-identical** across `--jobs 1` and
//!   `--jobs N` — the same determinism contract the result artifacts
//!   already obey (see `DESIGN.md`);
//! * the **metrics** channel carries wall-clock timings ([`timer`]),
//!   which are inherently nondeterministic and therefore quarantined in
//!   their own stream. Everything else about a metrics line (ordering,
//!   context fields) is still deterministic.
//!
//! ## How recording works
//!
//! Each experiment cell runs entirely on one thread, so the recorder is
//! thread-local: [`record_cell`] installs it, the instrumented code calls
//! the free functions ([`phase`], [`emit`], [`count`], [`count_unique`],
//! [`metric`], [`timer`]) without carrying a handle, and the finished
//! [`CellTrace`] is returned to the caller. The parallel runner buffers
//! one `CellTrace` per cell and flushes them **in input order**, which is
//! what makes the concatenated stream independent of thread scheduling.
//!
//! When no cell is being recorded every instrumentation point is a single
//! relaxed atomic load — cheap enough to leave in the hot paths
//! unconditionally (<5% on the runner benchmark).
//!
//! ## Line format
//!
//! One JSON object per line. Every line carries the required fields
//! `event`, `cell_seed` and `phase`, then any cell-context fields
//! (advisor, injector, run) followed by event-specific fields. Field
//! order is fixed by construction, never by a hash map, so rendering is
//! reproducible. [`json::top_level_keys`] provides the minimal validating
//! parser that `trace_lint` and CI use to check these invariants.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod recorder;
pub mod sink;

pub use event::{Event, Value};
pub use recorder::{
    count, count_unique, emit, is_recording, metric, phase, record_cell, timer, CellCtx,
    CellTrace, Timer,
};
pub use sink::{JsonlSink, MemorySink, NoopSink, Sink, TraceOutputs};
