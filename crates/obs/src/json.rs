//! A minimal validating JSON parser for trace lines.
//!
//! The vendored `serde_json` shim only *serializes* (the build container
//! has no crates-io access), so trace validation — the `trace_lint`
//! binary and the CI smoke step — needs its own parser. This is a strict
//! recursive-descent implementation of the JSON grammar, specialized to
//! the one question the lint asks: *is this line a syntactically valid
//! JSON object, and what are its top-level keys?*

/// Parse `line` as a JSON object and return its top-level keys in
/// document order. Errors describe the first syntax violation with a
/// byte offset.
pub fn top_level_keys(line: &str) -> Result<Vec<String>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let keys = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(keys)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self
            .peek()
            .ok_or_else(|| format!("unexpected end of input at offset {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let at = self.pos;
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected '{}' at offset {at}, found '{}'",
                want as char, got as char
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn object(&mut self) -> Result<Vec<String>, String> {
        self.expect(b'{')?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.string()?);
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(keys),
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found '{}'",
                        self.pos - 1,
                        other as char
                    ))
                }
            }
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.object()?;
                Ok(())
            }
            Some(b'[') => self.array(),
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at offset {}",
                other as char, self.pos
            )),
            None => Err(format!("unexpected end of input at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(()),
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found '{}'",
                        self.pos - 1,
                        other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            let d = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            code = code * 16 + d;
                        }
                        // Lone surrogates are replaced, not rejected: the
                        // lint cares about structure, not codepoints.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!(
                            "invalid escape '\\{}' at offset {}",
                            other as char,
                            self.pos - 1
                        ))
                    }
                },
                b if b < 0x20 => {
                    return Err(format!(
                        "unescaped control byte 0x{b:02x} at offset {}",
                        self.pos - 1
                    ))
                }
                b => {
                    // Re-assemble UTF-8 continuation bytes; the input is a
                    // &str so the sequence is already valid.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err(format!("truncated UTF-8 at offset {start}"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at offset {start}"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(format!("expected digits at offset {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(format!("expected fraction digits at offset {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(format!("expected exponent digits at offset {}", self.pos));
            }
        }
        // Leading zeros like "01" violate the grammar.
        let text = &self.bytes[start..self.pos];
        let unsigned = if text[0] == b'-' { &text[1..] } else { text };
        if unsigned.len() > 1 && unsigned[0] == b'0' && unsigned[1].is_ascii_digit() {
            return Err(format!("leading zero in number at offset {start}"));
        }
        Ok(())
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(format!("expected '{word}' at offset {}", self.pos))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_rendered_events() {
        let line = crate::Event::new("probe_epoch")
            .field("epoch", 3u64)
            .field("benefit", -0.25e-3)
            .field("trace", vec![1.0, 2.5])
            .field("note", "a\"b\\c")
            .render(&[("cell_seed", crate::Value::U64(42))], "probe");
        let keys = top_level_keys(&line).expect("valid");
        assert_eq!(
            keys,
            vec!["event", "cell_seed", "phase", "epoch", "benefit", "trace", "note"]
        );
    }

    #[test]
    fn accepts_nested_structures() {
        let keys =
            top_level_keys(r#"{"a":{"b":[1,2,{"c":null}]},"d":true,"e":false}"#).expect("valid");
        assert_eq!(keys, vec!["a", "d", "e"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}x",
            "[1,2]",
            r#"{"a":}"#,
            r#"{"a":01}"#,
            r#"{"a":1,}"#,
            r#"{"a":"unterminated}"#,
            r#"{"a":nul}"#,
            r#"{"a":1e}"#,
            "{\"a\":\"ctrl\u{1}\"}",
        ] {
            assert!(top_level_keys(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accepts_unicode_and_escapes() {
        let keys = top_level_keys(r#"{"k":"μ=0.5 →  é"}"#).expect("valid");
        assert_eq!(keys, vec!["k"]);
    }

    #[test]
    fn control_characters_round_trip_through_event_rendering() {
        // The renderer must escape every C0 control so its output always
        // re-parses; probe one field per control codepoint.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let line = crate::Event::new("edge")
                .field("payload", format!("a{c}b"))
                .render(&[], "test");
            let keys = top_level_keys(&line)
                .unwrap_or_else(|e| panic!("control 0x{code:02x} broke the line: {e}\n{line}"));
            assert_eq!(keys, vec!["event", "phase", "payload"]);
        }
    }

    #[test]
    fn escaped_controls_and_raw_controls_differ() {
        // Escaped forms are valid JSON…
        for ok in [
            r#"{"k":"\u0000"}"#,
            r#"{"k":"\u001f"}"#,
            r#"{"k":"\b\f\n\r\t"}"#,
        ] {
            assert!(top_level_keys(ok).is_ok(), "rejected {ok:?}");
        }
        // …raw control bytes are not, anywhere a string can appear.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let in_value = format!("{{\"k\":\"{c}\"}}");
            let in_key = format!("{{\"{c}\":1}}");
            assert!(top_level_keys(&in_value).is_err(), "accepted raw 0x{code:02x} in value");
            assert!(top_level_keys(&in_key).is_err(), "accepted raw 0x{code:02x} in key");
        }
    }

    #[test]
    fn non_ascii_keys_and_values_parse_at_every_utf8_width() {
        // 2-byte (é), 3-byte (→), and 4-byte (𝛼) sequences, in both key
        // and value position.
        let keys = top_level_keys(r#"{"é":"ok","→":2,"𝛼":"β γ 𝛿"}"#).expect("valid");
        assert_eq!(keys, vec!["é", "→", "𝛼"]);
        // \u escapes decode to the same key as the literal character.
        let escaped = top_level_keys(r#"{"é":1}"#).expect("valid");
        assert_eq!(escaped, vec!["é"]);
    }

    #[test]
    fn empty_keys_are_legal_json() {
        assert_eq!(top_level_keys(r#"{"":1}"#).expect("valid"), vec![""]);
        assert_eq!(
            top_level_keys(r#"{"":{"":[]},"x":""}"#).expect("valid"),
            vec!["", "x"]
        );
    }

    #[test]
    fn validation_failures_report_an_offset() {
        for (bad, why) in [
            (r#"{"k":"\x"}"#, "invalid escape"),
            (r#"{"k":"\u12"}"#, "truncated \\u"),
            (r#"{"k":"\u12zz"}"#, "non-hex \\u digits"),
            (r#"{"k" 1}"#, "missing colon"),
            (r#"{k:1}"#, "unquoted key"),
            (r#"{"k":1}{"#, "trailing object"),
            (r#"{"k":+1}"#, "leading plus"),
            (r#"{"k":.5}"#, "bare fraction"),
            (r#"{"k":1.}"#, "empty fraction"),
            (r#"{"k":[1,]}"#, "trailing array comma"),
            (r#"{"k":tru}"#, "truncated literal"),
            ("{\"k\":1}\u{0}", "trailing NUL"),
        ] {
            let err = top_level_keys(bad).expect_err(why);
            assert!(
                err.contains("offset"),
                "{why}: error {err:?} lacks an offset"
            );
        }
    }

    #[test]
    fn lone_surrogate_escapes_are_structurally_accepted() {
        // The lint checks structure, not codepoints: \ud800 becomes
        // U+FFFD rather than failing the whole trace line.
        let keys = top_level_keys(r#"{"\ud800":"\udfff"}"#).expect("valid");
        assert_eq!(keys, vec!["\u{fffd}"]);
    }
}
