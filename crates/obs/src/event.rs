//! Events and their deterministic JSON rendering.

use std::fmt::Write as _;

/// A field value. Floats render via Rust's shortest-roundtrip `Display`
/// (deterministic for equal bit patterns); non-finite floats render as
/// `null` because JSON has no NaN/Infinity.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// A sequence of floats (reward traces).
    F64Seq(Vec<f64>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::F64Seq(v)
    }
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => render_f64(*v, out),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => render_str(s, out),
            Value::F64Seq(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_f64(*v, out);
                }
                out.push(']');
            }
        }
    }
}

fn render_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One observability event: a name plus ordered `(key, value)` fields.
///
/// Field order is the insertion order, so a given construction sequence
/// always renders the same bytes. The per-line envelope (`event`,
/// `cell_seed`, context, `phase`) is added at render time by the
/// recorder.
#[derive(Debug, Clone)]
pub struct Event {
    pub(crate) name: &'static str,
    pub(crate) fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event with no fields.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Append a field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Render one JSONL line: `event` first, then the context fields
    /// (which include `cell_seed`), then `phase`, then this event's own
    /// fields.
    pub fn render(&self, ctx: &[(&'static str, Value)], phase: &str) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"event\":");
        render_str(self.name, &mut out);
        for (k, v) in ctx {
            out.push(',');
            render_str(k, &mut out);
            out.push(':');
            v.render(&mut out);
        }
        out.push_str(",\"phase\":");
        render_str(phase, &mut out);
        for (k, v) in &self.fields {
            out.push(',');
            render_str(k, &mut out);
            out.push(':');
            v.render(&mut out);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_envelope_then_fields() {
        let ev = Event::new("probe_epoch")
            .field("epoch", 3u64)
            .field("benefit", 0.25)
            .field("label", "I-L");
        let line = ev.render(&[("cell_seed", Value::U64(42))], "probe");
        assert_eq!(
            line,
            "{\"event\":\"probe_epoch\",\"cell_seed\":42,\"phase\":\"probe\",\
             \"epoch\":3,\"benefit\":0.25,\"label\":\"I-L\"}"
        );
    }

    #[test]
    fn escapes_strings_and_nan() {
        let ev = Event::new("e")
            .field("s", "a\"b\\c\nd")
            .field("x", f64::NAN)
            .field("xs", vec![1.0, f64::INFINITY]);
        let line = ev.render(&[], "p");
        assert!(line.contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"x\":null"));
        assert!(line.contains("\"xs\":[1,null]"));
    }

    #[test]
    fn integer_valued_floats_render_as_json_numbers() {
        let ev = Event::new("e").field("v", 2.0);
        assert!(ev.render(&[], "p").contains("\"v\":2"));
    }

    #[test]
    fn rendering_is_reproducible() {
        let ev = Event::new("e").field("a", 1u64).field("b", 0.1 + 0.2);
        let ctx = [("cell_seed", Value::U64(7)), ("run", Value::U64(0))];
        assert_eq!(ev.render(&ctx, "train"), ev.render(&ctx, "train"));
    }
}
