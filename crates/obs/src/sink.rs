//! Pluggable line sinks and the per-run output pair.

use crate::event::Event;
use crate::recorder::CellTrace;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A destination for rendered JSONL lines.
///
/// Sinks receive *whole lines* (no trailing newline) in the order the
/// flushing side hands them over; the deterministic-ordering guarantee is
/// the flusher's job ([`TraceOutputs::write_cell`] is called in input
/// order by the runner), not the sink's.
pub trait Sink: Send + Sync {
    /// Append one line.
    fn write_line(&self, line: &str);

    /// Flush buffered lines to the underlying medium.
    fn flush(&self) {}
}

/// Discards everything (the default when no `--trace`/`--metrics-out` is
/// given).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn write_line(&self, _line: &str) {}
}

/// Collects lines in memory; cloning shares the buffer. Used by the
/// golden-trace tests to compare byte streams across job counts.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all lines written so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink poisoned").clone()
    }

    /// All lines joined with `\n` (the exact bytes a [`JsonlSink`] file
    /// would contain, minus the trailing newline).
    pub fn contents(&self) -> String {
        self.lines().join("\n")
    }
}

impl Sink for MemorySink {
    fn write_line(&self, line: &str) {
        self.lines
            .lock()
            .expect("memory sink poisoned")
            .push(line.to_string());
    }
}

/// Writes one JSON object per line to a file (the `--trace <path>` /
/// `--metrics-out <path>` backend).
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        w.write_all(line.as_bytes()).expect("trace write failed");
        w.write_all(b"\n").expect("trace write failed");
    }

    fn flush(&self) {
        self.writer
            .lock()
            .expect("jsonl sink poisoned")
            .flush()
            .expect("trace flush failed");
    }
}

/// The pair of outputs one experiment run writes: the deterministic
/// trace channel and the wall-clock metrics channel. Either can be
/// absent; with both absent ([`TraceOutputs::disabled`]) recording is
/// skipped entirely and instrumentation stays on its no-op fast path.
#[derive(Default)]
pub struct TraceOutputs {
    trace: Option<Box<dyn Sink>>,
    metrics: Option<Box<dyn Sink>>,
}

impl TraceOutputs {
    /// No sinks: recording disabled.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Open JSONL files for whichever paths are given.
    pub fn create(trace: Option<&str>, metrics: Option<&str>) -> std::io::Result<Self> {
        Ok(TraceOutputs {
            trace: match trace {
                Some(p) => Some(Box::new(JsonlSink::create(p)?)),
                None => None,
            },
            metrics: match metrics {
                Some(p) => Some(Box::new(JsonlSink::create(p)?)),
                None => None,
            },
        })
    }

    /// Use explicit sinks (tests pass [`MemorySink`]s here).
    pub fn with_sinks(trace: Option<Box<dyn Sink>>, metrics: Option<Box<dyn Sink>>) -> Self {
        TraceOutputs { trace, metrics }
    }

    /// Whether any sink is attached (i.e. cells should record).
    pub fn active(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Flush one cell's buffered lines to the attached sinks. Callers
    /// must invoke this in cell *input order* — that, plus the
    /// deterministic per-cell buffers, is what makes the trace file
    /// byte-identical across `--jobs` settings.
    pub fn write_cell(&self, cell: &CellTrace) {
        if let Some(sink) = &self.trace {
            for line in &cell.trace {
                sink.write_line(line);
            }
        }
        if let Some(sink) = &self.metrics {
            for line in &cell.metrics {
                sink.write_line(line);
            }
        }
    }

    /// Write a run-level (not cell-scoped) event to the metrics channel,
    /// e.g. the process-global what-if cache statistics. Stamped with
    /// `cell_seed = 0` and phase `"global"` so every line still satisfies
    /// the lint contract.
    pub fn global_metric(&self, ev: Event) {
        if let Some(sink) = &self.metrics {
            sink.write_line(&ev.render(&[("cell_seed", crate::Value::U64(0))], "global"));
        }
    }

    /// Flush both sinks.
    pub fn flush(&self) {
        if let Some(sink) = &self.trace {
            sink.flush();
        }
        if let Some(sink) = &self.metrics {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{emit, metric, record_cell, CellCtx};
    use crate::Event;

    fn one_cell() -> CellTrace {
        let ((), t) = record_cell(true, CellCtx::new(9), || {
            emit(Event::new("ev").field("x", 1u64));
            metric(Event::new("tm").field("y", 2u64));
        });
        t
    }

    #[test]
    fn write_cell_routes_channels_to_their_sinks() {
        let trace = MemorySink::new();
        let metrics = MemorySink::new();
        let out = TraceOutputs::with_sinks(
            Some(Box::new(trace.clone())),
            Some(Box::new(metrics.clone())),
        );
        assert!(out.active());
        out.write_cell(&one_cell());
        assert_eq!(trace.lines().len(), 1);
        assert!(trace.lines()[0].contains("\"event\":\"ev\""));
        assert_eq!(metrics.lines().len(), 1);
        assert!(metrics.lines()[0].contains("\"event\":\"tm\""));
    }

    #[test]
    fn disabled_outputs_are_inactive() {
        let out = TraceOutputs::disabled();
        assert!(!out.active());
        out.write_cell(&one_cell()); // must not panic
        out.flush();
    }

    #[test]
    fn noop_sink_records_nothing() {
        // The satellite-task guarantee: a no-op sink swallows lines and
        // has no observable state afterwards.
        let out = TraceOutputs::with_sinks(Some(Box::new(NoopSink)), Some(Box::new(NoopSink)));
        assert!(out.active());
        out.write_cell(&one_cell());
        out.global_metric(Event::new("cache_stats").field("hits", 3u64));
        out.flush();
        // NoopSink is a ZST: nothing was stored anywhere.
        assert_eq!(std::mem::size_of::<NoopSink>(), 0);
    }

    #[test]
    fn global_metric_satisfies_the_line_contract() {
        let metrics = MemorySink::new();
        let out = TraceOutputs::with_sinks(None, Some(Box::new(metrics.clone())));
        out.global_metric(Event::new("cache_stats").field("hits", 3u64));
        let lines = metrics.lines();
        assert_eq!(lines.len(), 1);
        let keys = crate::json::top_level_keys(&lines[0]).expect("valid");
        assert!(keys.contains(&"event".to_string()));
        assert!(keys.contains(&"cell_seed".to_string()));
        assert!(keys.contains(&"phase".to_string()));
        assert!(lines[0].contains("\"phase\":\"global\""));
    }

    #[test]
    fn jsonl_sink_writes_lines_to_disk() {
        let path = std::env::temp_dir().join("pipa_obs_sink_test.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        sink.write_line("{\"event\":\"a\"}");
        sink.write_line("{\"event\":\"b\"}");
        sink.flush();
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body, "{\"event\":\"a\"}\n{\"event\":\"b\"}\n");
        let _ = std::fs::remove_file(&path);
    }
}
