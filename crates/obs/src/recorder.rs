//! The thread-local cell recorder.
//!
//! An experiment cell runs start-to-finish on one thread, so recording
//! needs no synchronization: [`record_cell`] installs a recorder in a
//! thread-local slot, the instrumented code (which never holds a handle)
//! reports through the free functions, and the buffered [`CellTrace`]
//! comes back to the caller — who flushes cell traces *in input order* to
//! keep the stream independent of scheduling.
//!
//! The fast path when nothing records is a single relaxed load of a
//! global counter, so the instrumentation can stay in release builds.

use crate::event::{Event, Value};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of recorders currently installed anywhere in the process. The
/// instrumentation's no-sink fast path is `ACTIVE == 0`.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Context fields stamped on every line a cell records: `cell_seed`
/// first (required by the trace contract), then any extras such as
/// `advisor`, `injector`, `run`.
#[derive(Debug, Clone)]
pub struct CellCtx {
    fields: Vec<(&'static str, Value)>,
}

impl CellCtx {
    /// Context carrying the cell's seed identity.
    pub fn new(cell_seed: u64) -> Self {
        CellCtx {
            fields: vec![("cell_seed", Value::U64(cell_seed))],
        }
    }

    /// Append a context field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }
}

/// The two rendered line buffers one cell produced: the deterministic
/// trace channel and the wall-clock metrics channel.
#[derive(Debug, Clone, Default)]
pub struct CellTrace {
    /// Deterministic event lines (byte-identical across `--jobs N`).
    pub trace: Vec<String>,
    /// Timing lines (same shape, nondeterministic values).
    pub metrics: Vec<String>,
}

struct Recorder {
    ctx: Vec<(&'static str, Value)>,
    phase: &'static str,
    out: CellTrace,
    /// Counters accumulated during the current phase, flushed as
    /// `counter` events on the next phase change (BTreeMap ⇒ name order).
    counters: BTreeMap<&'static str, u64>,
    /// Distinct-key counters (e.g. distinct what-if `(query, config)`
    /// pairs); flushed as `counter` events with a `distinct` marker.
    uniques: BTreeMap<&'static str, HashSet<u128>>,
}

impl Recorder {
    fn new(ctx: CellCtx) -> Self {
        Recorder {
            ctx: ctx.fields,
            phase: "setup",
            out: CellTrace::default(),
            counters: BTreeMap::new(),
            uniques: BTreeMap::new(),
        }
    }

    fn flush_counters(&mut self) {
        for (name, value) in std::mem::take(&mut self.counters) {
            let line = Event::new("counter")
                .field("name", name)
                .field("value", value)
                .render(&self.ctx, self.phase);
            self.out.trace.push(line);
        }
        for (name, keys) in std::mem::take(&mut self.uniques) {
            let line = Event::new("counter")
                .field("name", name)
                .field("value", keys.len() as u64)
                .field("distinct", true)
                .render(&self.ctx, self.phase);
            self.out.trace.push(line);
        }
    }
}

/// Whether a recorder is installed on *this* thread. Instrumentation
/// can use this to skip building expensive event payloads.
pub fn is_recording() -> bool {
    ACTIVE.load(Ordering::Relaxed) > 0 && RECORDER.with(|r| r.borrow().is_some())
}

fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Enter a named phase. Counters accumulated in the previous phase are
/// flushed (in name order) and a `phase_start` event is emitted.
pub fn phase(name: &'static str) {
    with_recorder(|rec| {
        rec.flush_counters();
        rec.phase = name;
        let line = Event::new("phase_start").render(&rec.ctx, name);
        rec.out.trace.push(line);
    });
}

/// Record an event on the deterministic trace channel.
pub fn emit(ev: Event) {
    with_recorder(|rec| {
        let line = ev.render(&rec.ctx, rec.phase);
        rec.out.trace.push(line);
    });
}

/// Record an event on the metrics channel (wall-clock data lives here,
/// never on the trace channel).
pub fn metric(ev: Event) {
    with_recorder(|rec| {
        let line = ev.render(&rec.ctx, rec.phase);
        rec.out.metrics.push(line);
    });
}

/// Add `n` to a named per-phase counter (flushed on phase change).
pub fn count(name: &'static str, n: u64) {
    with_recorder(|rec| {
        *rec.counters.entry(name).or_insert(0) += n;
    });
}

/// Record `key` into a named distinct-key counter; the flushed value is
/// the number of *distinct* keys seen in the phase. The what-if
/// instrumentation uses this to expose the memoizable repeat rate of
/// cost lookups per cell — a per-cell, scheduling-independent stand-in
/// for the process-global cache hit rate.
pub fn count_unique(name: &'static str, key: u128) {
    with_recorder(|rec| {
        rec.uniques.entry(name).or_default().insert(key);
    });
}

/// A wall-clock span guard: created by [`timer`], records a `timing`
/// event with elapsed nanoseconds to the metrics channel on drop.
#[must_use = "a Timer measures until it is dropped"]
pub struct Timer {
    armed: Option<(&'static str, Instant)>,
}

/// Start a wall-clock span. Returns a disarmed guard (zero cost on drop)
/// when nothing is recording on this thread.
pub fn timer(name: &'static str) -> Timer {
    Timer {
        armed: is_recording().then(|| (name, Instant::now())),
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let nanos = start.elapsed().as_nanos() as u64;
            metric(
                Event::new("timing")
                    .field("name", name)
                    .field("nanos", nanos),
            );
        }
    }
}

/// Run `f` with a recorder installed on this thread and return its
/// result plus the buffered [`CellTrace`].
///
/// `active == false` skips installation entirely (the no-sink path); `f`
/// still runs and the returned trace is empty. If this thread is already
/// recording (nested call), `f` runs under the *outer* recorder so its
/// events are attributed to the enclosing cell.
pub fn record_cell<T>(active: bool, ctx: CellCtx, f: impl FnOnce() -> T) -> (T, CellTrace) {
    if !active || RECORDER.with(|r| r.borrow().is_some()) {
        return (f(), CellTrace::default());
    }
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            RECORDER.with(|r| *r.borrow_mut() = None);
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
    RECORDER.with(|r| *r.borrow_mut() = Some(Recorder::new(ctx)));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let guard = Guard;
    let value = f();
    let trace = RECORDER.with(|r| {
        let mut rec = r.borrow_mut().take().expect("recorder installed above");
        rec.flush_counters();
        rec.out
    });
    // The guard's cleanup is now a no-op for the slot (already taken)
    // but still decrements ACTIVE exactly once, panic or not.
    drop(guard);
    (value, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_cell() -> CellTrace {
        let ((), trace) = record_cell(true, CellCtx::new(7).field("run", 0u64), || {
            phase("probe");
            count("whatif_lookups", 2);
            count_unique("whatif_distinct", 1);
            count_unique("whatif_distinct", 1);
            count_unique("whatif_distinct", 9);
            emit(Event::new("probe_epoch").field("epoch", 1u64));
            phase("measure");
            count("whatif_lookups", 5);
            let _t = timer("stage");
            metric(Event::new("note").field("k", 1u64));
        });
        trace
    }

    #[test]
    fn records_phases_counters_and_events_in_order() {
        let t = demo_cell();
        for l in &t.trace {
            let keys = crate::json::top_level_keys(l).expect("valid JSON");
            assert_eq!(&keys[..4], &["event", "cell_seed", "run", "phase"]);
        }
        // Order: probe phase_start, probe_epoch, probe counters (flushed
        // when "measure" starts), measure phase_start, then the
        // end-of-cell flush of measure counters.
        assert!(t.trace[0].contains("\"event\":\"phase_start\"") && t.trace[0].contains("probe"));
        assert!(t.trace[1].contains("probe_epoch"));
        assert!(
            t.trace[2].contains("\"name\":\"whatif_lookups\"") && t.trace[2].contains("\"value\":2")
        );
        assert!(
            t.trace[3].contains("\"name\":\"whatif_distinct\"")
                && t.trace[3].contains("\"value\":2")
                && t.trace[3].contains("\"distinct\":true")
        );
        assert!(t.trace[4].contains("\"event\":\"phase_start\"") && t.trace[4].contains("measure"));
        assert!(
            t.trace[5].contains("\"name\":\"whatif_lookups\"") && t.trace[5].contains("\"value\":5")
        );
        assert_eq!(t.trace.len(), 6);
        // Metrics channel: the explicit metric plus the timer.
        assert_eq!(t.metrics.len(), 2);
        assert!(t.metrics[0].contains("\"event\":\"note\""));
        assert!(t.metrics[1].contains("\"event\":\"timing\"") && t.metrics[1].contains("nanos"));
    }

    #[test]
    fn trace_channel_is_reproducible() {
        let a = demo_cell();
        let b = demo_cell();
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn inactive_recording_is_empty_and_cheap() {
        let (v, trace) = record_cell(false, CellCtx::new(1), || {
            phase("probe");
            count("c", 10);
            emit(Event::new("e"));
            let _t = timer("t");
            42
        });
        assert_eq!(v, 42);
        assert!(trace.trace.is_empty());
        assert!(trace.metrics.is_empty());
        assert!(!is_recording());
    }

    #[test]
    fn instrumentation_outside_any_cell_is_a_no_op() {
        phase("probe");
        count("c", 1);
        emit(Event::new("e"));
        assert!(!is_recording());
        // And a subsequent real cell is unaffected by the calls above.
        let ((), t) = record_cell(true, CellCtx::new(2), || emit(Event::new("only")));
        assert_eq!(t.trace.len(), 1);
        assert!(t.trace[0].contains("\"event\":\"only\""));
        assert!(t.trace[0].contains("\"phase\":\"setup\""));
    }

    #[test]
    fn nested_record_cell_attributes_to_the_outer_cell() {
        let ((), outer) = record_cell(true, CellCtx::new(3), || {
            emit(Event::new("outer"));
            let ((), inner) = record_cell(true, CellCtx::new(4), || emit(Event::new("inner")));
            assert!(inner.trace.is_empty());
        });
        assert_eq!(outer.trace.len(), 2);
        assert!(outer.trace[1].contains("\"event\":\"inner\""));
        assert!(outer.trace[1].contains("\"cell_seed\":3"));
    }

    #[test]
    fn panic_in_cell_uninstalls_the_recorder() {
        let result = std::panic::catch_unwind(|| {
            record_cell(true, CellCtx::new(5), || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(!is_recording());
        // ACTIVE was decremented: instrumentation is back to no-op.
        count("after_panic", 1);
        let ((), t) = record_cell(true, CellCtx::new(6), || {});
        assert!(t.trace.is_empty());
    }
}
