//! # pipa-cost — the cost-backend seam
//!
//! Every component of the PIPA reproduction — the learned index advisors,
//! the probing/injection attack loop, the stress-test harness, the
//! experiment grid — consumes exactly one thing from the database:
//! `c(W, d, I)`, the (what-if) cost of a workload under an index
//! configuration. This crate turns that contract into an object-safe
//! trait, [`CostBackend`], so consumers are written against
//! `&dyn CostBackend` instead of the concrete in-memory simulator:
//!
//! * [`SimBackend`] — wraps [`pipa_sim::Database`] and routes through its
//!   benefit-matrix/cost-cache machinery, bit-identical to direct calls
//!   (pinned by `tests/cost_backend_differential.rs`);
//! * [`RecordingBackend`] / [`ReplayBackend`] — a record/replay pair that
//!   captures `(query, config) → cost` tapes as JSONL (written through
//!   `pipa-obs` sinks) and replays them deterministically, proving the
//!   seam is real and enabling a future PostgreSQL/what-if-server backend
//!   without touching consumers;
//! * [`LearnedIndexBackend`] — an RMI/ALEX-style learned index structure
//!   whose per-table CDF models refit on the observed workload
//!   ([`CostBackend::observe_training`]), making the index *structure*
//!   itself a poisoning target.
//!
//! The [`CostEngine`] facade adds the composed helpers every consumer
//! wants (benefits, best-single-index, estimated-vs-executed dispatch)
//! on top of any backend.
//!
//! Errors are typed ([`CostError`]) instead of panics: a poisoned lock,
//! missing materialized data, or a replay-tape miss surfaces as a value
//! the experiment harness can report.

#![warn(missing_docs)]

mod backend;
mod engine;
mod error;
mod learned;
mod replay;
mod sim;

pub use backend::{CostBackend, CostSession};
pub use engine::CostEngine;
pub use error::{CostError, CostResult, ReplayMissDetail};
pub use learned::{LearnedIndexBackend, LearnedIndexConfig};
pub use replay::{RecordingBackend, ReplayBackend, Tape, DEFAULT_TAPE_BYTE_LIMIT};
pub use sim::SimBackend;

// The vocabulary types every backend signature speaks, re-exported so
// consumer crates can depend on `pipa-cost` alone for the seam.
pub use pipa_sim::cost::{Catalog, ConfigDelta};
