//! [`LearnedIndexBackend`] — an RMI/ALEX-style learned index structure
//! as a poisoning target.
//!
//! Three PAPERS.md entries attack learned *index structures* rather than
//! advisors: an RMI stores no B-tree, just a model of each table's key
//! CDF, predicts a key's position, and repairs mispredictions with a
//! bounded local search. Poisoning the keys the model is (re)fit on
//! inflates its error bound, which inflates every lookup — the structure
//! itself degrades, no advisor involved.
//!
//! This backend reproduces that regime behind the unchanged
//! [`CostBackend`] seam. Each table carries a tiny `pipa-nn` [`Mlp`]
//! fitted to the CDF of the *observed key fractions* (predicate operands
//! in `pipa-sim` are domain fractions, so `[0, 1]` is the native key
//! space). An indexed access costs
//!
//! ```text
//! traverse(log2 rows)  +  err · pages   +  selectivity · pages
//!                         ^^^^^^^^^^^^ the mispredict search window
//! ```
//!
//! where `err` is the model's maximum CDF misprediction over its fitted
//! sample. [`CostBackend::observe_training`] — called by the stress
//! harness at train/retrain time — appends the workload's key fractions
//! and refits from scratch (the ALEX analogue of a structural model
//! rebuild), so the probe→inject→retrain pipeline and the stream arms
//! race attack the index structure directly: adversarial key clusters
//! skew the fitted CDF, `err` grows, and *clean* traffic pays for it.
//!
//! Determinism: fitting is seeded and single-threaded, inference is the
//! deterministic [`Mlp::infer`] path, and costs are pure functions of
//! `(catalog, models, query, config)` between `observe_training` calls —
//! so `--jobs` grids stay byte-identical as long as each parallel cell
//! owns its backend (the harness constructs one per cell, exactly like
//! it builds one simulator per cell).

use crate::backend::{CostBackend, CostSession};
use crate::error::{CostError, CostResult};
use pipa_nn::mlp::Activation;
use pipa_nn::{Adam, Mlp, Optimizer, ParamStore, Tape, Tensor};
use pipa_sim::cost::Catalog;
use pipa_sim::{
    ColumnStats, Index, IndexConfig, PredOp, Query, Schema, TableId, TableStats, Workload,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;

/// Hyperparameters of the learned index structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedIndexConfig {
    /// RNG seed for model initialization (refits re-derive from it).
    pub seed: u64,
    /// Hidden width of the per-table CDF model.
    pub hidden: usize,
    /// Adam epochs per (re)fit.
    pub fit_epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Initial uniform key sample per table (the "bulk load").
    pub initial_keys: usize,
    /// Retained observed keys per table; older keys age out first
    /// (bounds refit cost and memory on long streams).
    pub max_keys: usize,
}

impl Default for LearnedIndexConfig {
    fn default() -> Self {
        LearnedIndexConfig {
            seed: 0,
            hidden: 8,
            fit_epochs: 60,
            lr: 0.05,
            initial_keys: 33,
            max_keys: 2048,
        }
    }
}

impl LearnedIndexConfig {
    /// Cheaper fits for unit tests.
    pub fn fast() -> Self {
        LearnedIndexConfig {
            fit_epochs: 25,
            ..Default::default()
        }
    }
}

/// Per-table learned CDF model plus its observed key sample.
struct TableModel {
    /// Observed key fractions, in arrival order (bulk load first).
    keys: Vec<f64>,
    store: ParamStore,
    mlp: Mlp,
    /// Maximum |predicted − true| CDF error over the fitted sample: the
    /// RMI search-window bound, as a fraction of the table's pages.
    err: f64,
    /// Refits since bulk load (diagnostics).
    refits: u32,
}

/// The learned-index cost backend. See the module docs for the model.
pub struct LearnedIndexBackend {
    schema: Schema,
    table_stats: Vec<TableStats>,
    column_stats: Vec<ColumnStats>,
    cfg: LearnedIndexConfig,
    models: Mutex<Vec<TableModel>>,
    hypo: Mutex<IndexConfig>,
}

/// Session state: the committed configuration (distinct type per
/// backend, so foreign sessions downcast to `None` → `SessionMismatch`).
#[derive(Clone)]
struct LearnedSession {
    cfg: IndexConfig,
}

const BACKEND_NAME: &str = "learned-index";

fn poisoned() -> CostError {
    CostError::Io("learned-index model lock poisoned".to_string())
}

impl LearnedIndexBackend {
    /// Bulk-load the structure over a catalog (cloned into owned
    /// storage, like [`crate::ReplayBackend`]): every table gets a
    /// uniform initial key sample and a freshly fitted CDF model.
    pub fn new(catalog: Catalog<'_>, cfg: LearnedIndexConfig) -> Self {
        let schema = catalog.schema.clone();
        let table_stats = catalog.table_stats.to_vec();
        let column_stats = catalog.column_stats.to_vec();
        let models = (0..schema.num_tables())
            .map(|t| {
                let keys: Vec<f64> = (0..cfg.initial_keys)
                    .map(|i| i as f64 / (cfg.initial_keys - 1).max(1) as f64)
                    .collect();
                Self::fit(&cfg, t as u64, keys)
            })
            .collect();
        LearnedIndexBackend {
            schema,
            table_stats,
            column_stats,
            cfg,
            models: Mutex::new(models),
            hypo: Mutex::new(IndexConfig::empty()),
        }
    }

    /// Fit one table's CDF model from scratch over `keys`. Seeded by
    /// `(config seed, table)`, so the fit is a pure function of the key
    /// multiset — refits after identical observations are bit-identical.
    fn fit(cfg: &LearnedIndexConfig, table: u64, keys: Vec<f64>) -> TableModel {
        let mut sorted = keys.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (0x1ea4 + table));
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "cdf",
            &[1, cfg.hidden, 1],
            Activation::Tanh,
            &mut rng,
        );
        // True CDF of the sample: rank / (n − 1).
        let targets: Vec<(f32, f32)> = sorted
            .iter()
            .enumerate()
            .map(|(i, &k)| (k as f32, i as f32 / (n - 1).max(1) as f32))
            .collect();
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.fit_epochs {
            store.zero_grads();
            for &(x, y) in &targets {
                let mut tape = Tape::new();
                let xv = tape.constant(Tensor::row(vec![x]));
                let out = mlp.forward(&mut tape, &store, xv);
                let l = tape.mse_selected(out, &[(0, 0, y)]);
                tape.backward(l, &mut store);
            }
            opt.step(&mut store);
        }
        let err = targets
            .iter()
            .map(|&(x, y)| {
                let p = mlp.infer(&store, &Tensor::row(vec![x])).data[0];
                f64::from((p - y).abs())
            })
            .fold(0.0f64, f64::max)
            .clamp(0.0, 1.0);
        TableModel {
            keys,
            store,
            mlp,
            err,
            refits: 0,
        }
    }

    /// Current per-table maximum CDF error bounds (diagnostics/tests).
    pub fn error_bounds(&self) -> Vec<f64> {
        self.models
            .lock()
            .map(|m| m.iter().map(|tm| tm.err).collect())
            .unwrap_or_default()
    }

    /// Refits performed so far, per table (diagnostics/tests).
    pub fn refit_counts(&self) -> Vec<u32> {
        self.models
            .lock()
            .map(|m| m.iter().map(|tm| tm.refits).collect())
            .unwrap_or_default()
    }

    /// The position (CDF fraction) table `t`'s model predicts for a key
    /// fraction — the raw RMI prediction before the bounded local
    /// search. Exposed for diagnostics and attack analysis.
    pub fn predicted_cdf(&self, t: TableId, key: f64) -> CostResult<f64> {
        let models = self.models.lock().map_err(|_| poisoned())?;
        let tm = &models[t.0 as usize];
        let p = tm.mlp.infer(&tm.store, &Tensor::row(vec![key as f32])).data[0];
        Ok(f64::from(p))
    }

    /// Key fractions a query contributes to each table it filters.
    fn predicate_keys(&self, q: &Query, out: &mut [Vec<f64>]) {
        for p in &q.predicates {
            let t = self.schema.table_of(p.col).0 as usize;
            match &p.op {
                PredOp::Eq(f) | PredOp::Le(f) | PredOp::Ge(f) => out[t].push(*f),
                PredOp::Between(lo, hi) => {
                    out[t].push(*lo);
                    out[t].push(*hi);
                }
                PredOp::In(fs) => out[t].extend(fs.iter().copied()),
            }
        }
    }

    /// Estimated cost of accessing table `t` within `q` under `cfg`:
    /// a learned-index lookup when an index leads with one of the
    /// query's filter columns on `t`, a full heap scan otherwise.
    fn table_access_cost(&self, q: &Query, cfg: &IndexConfig, t: TableId, err: f64) -> f64 {
        let stats = &self.table_stats[t.0 as usize];
        let pages = stats.pages as f64;
        let rows = stats.rows as f64;
        let mut selectivity: Option<f64> = None;
        for p in &q.predicates {
            if self.schema.table_of(p.col) != t {
                continue;
            }
            if !cfg.has_leading_column(p.col) {
                continue;
            }
            let sel = p.selectivity(&self.column_stats[p.col.0 as usize]);
            let best = selectivity.get_or_insert(sel);
            if sel < *best {
                *best = sel;
            }
        }
        match selectivity {
            // traverse + bounded mispredict search + qualifying pages.
            Some(sel) => rows.max(2.0).log2() + err * pages + sel * pages,
            None => pages,
        }
    }
}

impl CostBackend for LearnedIndexBackend {
    fn name(&self) -> &'static str {
        BACKEND_NAME
    }

    fn catalog(&self) -> Catalog<'_> {
        Catalog {
            schema: &self.schema,
            table_stats: &self.table_stats,
            column_stats: &self.column_stats,
        }
    }

    fn query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        let models = self.models.lock().map_err(|_| poisoned())?;
        let mut total = 0.0;
        for &t in &q.tables {
            let err = models[t.0 as usize].err;
            total += self.table_access_cost(q, cfg, t, err);
        }
        // Joins pair each additional table with the running result; the
        // learned structure's error term is already in each access.
        total *= q.tables.len().max(1) as f64;
        Ok(total)
    }

    fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        let mut total = 0.0;
        for wq in w.iter() {
            total += f64::from(wq.frequency) * self.query_cost(&wq.query, cfg)?;
        }
        Ok(total)
    }

    fn session_begin(&self, _w: &Workload) -> CostResult<CostSession> {
        Ok(CostSession::new(LearnedSession {
            cfg: IndexConfig::empty(),
        }))
    }

    fn session_total(&self, w: &Workload, session: &CostSession) -> CostResult<f64> {
        let s: &LearnedSession = session.downcast_ref().ok_or(CostError::SessionMismatch {
            backend: BACKEND_NAME,
        })?;
        self.workload_cost(w, &s.cfg)
    }

    fn session_preview_add(
        &self,
        w: &Workload,
        session: &CostSession,
        cfg_after: &IndexConfig,
        _idx: &Index,
    ) -> CostResult<f64> {
        let _: &LearnedSession = session.downcast_ref().ok_or(CostError::SessionMismatch {
            backend: BACKEND_NAME,
        })?;
        self.workload_cost(w, cfg_after)
    }

    fn session_add(
        &self,
        w: &Workload,
        session: &mut CostSession,
        cfg_after: &IndexConfig,
        _idx: &Index,
    ) -> CostResult<f64> {
        let s: &mut LearnedSession =
            session.downcast_mut().ok_or(CostError::SessionMismatch {
                backend: BACKEND_NAME,
            })?;
        s.cfg = cfg_after.clone();
        self.workload_cost(w, cfg_after)
    }

    fn hypo_create(&self, idx: &Index) -> CostResult<()> {
        self.hypo.lock().map_err(|_| poisoned())?.add(idx.clone());
        Ok(())
    }

    fn hypo_drop(&self, idx: &Index) -> CostResult<()> {
        self.hypo.lock().map_err(|_| poisoned())?.remove(idx);
        Ok(())
    }

    fn hypo_clear(&self) -> CostResult<()> {
        *self.hypo.lock().map_err(|_| poisoned())? = IndexConfig::empty();
        Ok(())
    }

    fn hypo_config(&self) -> CostResult<IndexConfig> {
        Ok(self.hypo.lock().map_err(|_| poisoned())?.clone())
    }

    /// The structural retrain: append the workload's key fractions to
    /// each filtered table's sample and refit that table's CDF model
    /// from scratch. This is where poisoned keys do their damage.
    fn observe_training(&self, w: &Workload) -> CostResult<()> {
        let mut fresh: Vec<Vec<f64>> = vec![Vec::new(); self.schema.num_tables()];
        for wq in w.iter() {
            self.predicate_keys(&wq.query, &mut fresh);
        }
        let mut models = self.models.lock().map_err(|_| poisoned())?;
        for (t, new_keys) in fresh.into_iter().enumerate() {
            if new_keys.is_empty() {
                continue;
            }
            let old = &models[t];
            let mut keys = old.keys.clone();
            keys.extend(new_keys);
            if keys.len() > self.cfg.max_keys {
                keys.drain(..keys.len() - self.cfg.max_keys);
            }
            let refits = old.refits + 1;
            let mut refit = Self::fit(&self.cfg, t as u64, keys);
            refit.refits = refits;
            models[t] = refit;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_sim::{ColumnId, Predicate, QueryBuilder};

    fn backend() -> LearnedIndexBackend {
        let db = pipa_workload::Benchmark::TpcH.database(1.0, None);
        let sim = crate::SimBackend::new(db);
        LearnedIndexBackend::new(sim.catalog(), LearnedIndexConfig::fast())
    }

    /// An indexable column on the backend's largest table (tiny tables
    /// make full scans cheaper than any index traversal).
    fn big_table_column(b: &LearnedIndexBackend) -> ColumnId {
        *b.schema
            .indexable_columns()
            .iter()
            .max_by_key(|c| b.table_stats[b.schema.table_of(**c).0 as usize].pages)
            .expect("tpch has indexable columns")
    }

    fn point_query(col: ColumnId, frac: f64, schema: &Schema) -> Query {
        QueryBuilder::new()
            .filter(schema, Predicate::eq(col, frac))
            .aggregate(pipa_sim::Aggregate::CountStar)
            .build(schema)
            .expect("single-table point query")
    }

    #[test]
    fn indexed_lookup_beats_full_scan() {
        let b = backend();
        let col = big_table_column(&b);
        let q = point_query(col, 0.5, &b.schema);
        let scan = b.query_cost(&q, &IndexConfig::empty()).unwrap();
        let mut cfg = IndexConfig::empty();
        cfg.add(Index::single(col));
        let lookup = b.query_cost(&q, &cfg).unwrap();
        assert!(
            lookup < scan,
            "lookup {lookup} should beat full scan {scan}"
        );
    }

    #[test]
    fn costs_are_bit_deterministic() {
        let a = backend();
        let b = backend();
        let col = big_table_column(&a);
        let q = point_query(col, 0.3, &a.schema);
        let mut cfg = IndexConfig::empty();
        cfg.add(Index::single(col));
        assert_eq!(
            a.query_cost(&q, &cfg).unwrap().to_bits(),
            b.query_cost(&q, &cfg).unwrap().to_bits()
        );
        let t = a.schema.table_of(col);
        assert_eq!(
            a.predicted_cdf(t, 0.3).unwrap().to_bits(),
            b.predicted_cdf(t, 0.3).unwrap().to_bits()
        );
    }

    #[test]
    fn bulk_load_roughly_learns_the_uniform_cdf() {
        let b = backend();
        let mid = b.predicted_cdf(TableId(0), 0.5).unwrap();
        assert!(
            (mid - 0.5).abs() < 0.35,
            "uniform bulk load should put 0.5 near the middle, got {mid}"
        );
        for err in b.error_bounds() {
            assert!(err.is_finite() && (0.0..=1.0).contains(&err));
        }
    }

    #[test]
    fn adversarial_keys_inflate_the_error_bound_and_clean_costs() {
        let b = backend();
        let col = big_table_column(&b);
        let t = b.schema.table_of(col).0 as usize;
        let mut cfg = IndexConfig::empty();
        cfg.add(Index::single(col));
        let clean_q = point_query(col, 0.5, &b.schema);
        let before_err = b.error_bounds()[t];
        let before_cost = b.query_cost(&clean_q, &cfg).unwrap();

        // A poisoned batch: a tight adversarial key cluster at one point
        // of the domain, which an identity-shaped CDF model cannot fit.
        let poison = Workload::from_queries((0..40).map(|i| {
            (
                point_query(col, 0.9 + (i % 5) as f64 * 1e-4, &b.schema),
                1,
            )
        }));
        b.observe_training(&poison).unwrap();

        let after_err = b.error_bounds()[t];
        let after_cost = b.query_cost(&clean_q, &cfg).unwrap();
        assert_eq!(b.refit_counts()[t], 1);
        assert!(
            after_err > before_err,
            "error bound should grow: {before_err} → {after_err}"
        );
        assert!(
            after_cost > before_cost,
            "clean lookup should degrade: {before_cost} → {after_cost}"
        );
    }

    #[test]
    fn session_lifecycle_decomposes() {
        let b = backend();
        let col = big_table_column(&b);
        let w = Workload::from_queries([(point_query(col, 0.5, &b.schema), 2)]);
        let mut s = b.session_begin(&w).unwrap();
        let empty = b.session_total(&w, &s).unwrap();
        assert_eq!(
            empty.to_bits(),
            b.workload_cost(&w, &IndexConfig::empty()).unwrap().to_bits()
        );
        let idx = Index::single(col);
        let mut cfg = IndexConfig::empty();
        cfg.add(idx.clone());
        let preview = b.session_preview_add(&w, &s, &cfg, &idx).unwrap();
        let committed = b.session_add(&w, &mut s, &cfg, &idx).unwrap();
        assert_eq!(preview.to_bits(), committed.to_bits());
        assert_eq!(
            committed.to_bits(),
            b.workload_cost(&w, &cfg).unwrap().to_bits()
        );
    }

    #[test]
    fn foreign_sessions_mismatch() {
        let b = backend();
        let db = pipa_workload::Benchmark::TpcH.database(1.0, None);
        let sim = crate::SimBackend::new(db);
        let col = big_table_column(&b);
        let w = Workload::from_queries([(point_query(col, 0.5, &b.schema), 1)]);
        let s = sim.session_begin(&w).unwrap();
        assert!(matches!(
            b.session_total(&w, &s),
            Err(CostError::SessionMismatch { .. })
        ));
    }
}
