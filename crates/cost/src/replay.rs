//! Record/replay cost backends.
//!
//! [`RecordingBackend`] wraps any [`CostBackend`] and captures every
//! per-query cost it answers into a [`Tape`]: a sorted map from
//! `(query fingerprint, config fingerprint)` to the cost's exact f64 bit
//! pattern. The tape serializes to JSONL (one line per entry, through any
//! `pipa-obs` sink) and [`ReplayBackend`] answers from it
//! deterministically — same bits, no simulator, no data.
//!
//! Composite operations (workload, batch, delta, session) are recorded
//! per query: the [`CostBackend`] contract fixes every composite cost as
//! the frequency-weighted sum, in workload order, of per-query costs, so
//! a tape of per-query entries replays composite calls bit-exactly
//! (`tests/cost_backend_differential.rs` pins this, including across
//! `--jobs 1` vs `--jobs N` recordings).

use crate::backend::{CostBackend, CostSession};
use crate::error::{CostError, CostResult};
use pipa_sim::cost::cache::{fingerprint_config, fingerprint_query};
use pipa_sim::cost::Catalog;
use pipa_sim::{ColumnStats, Index, IndexConfig, Query, Schema, TableStats, Workload};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Tape key: `(query fingerprint, config fingerprint)`.
type Key = (u128, u128);

/// Default size guard for [`Tape::read_jsonl_file`]: 1 GiB of JSONL
/// (≈13M entries) — far above any recorded fleet to date, low enough to
/// stop a runaway or mis-pointed file from swallowing the host.
pub const DEFAULT_TAPE_BYTE_LIMIT: u64 = 1 << 30;

/// Render one tape entry as its canonical JSONL line (no newline).
fn render_line(kind: &str, q: u128, cfg: u128, bits: u64) -> String {
    format!(
        "{{\"event\":\"whatif_cost\",\"kind\":\"{kind}\",\"q\":\"{q:032x}\",\"cfg\":\"{cfg:032x}\",\"bits\":{bits}}}"
    )
}

/// One classified tape line.
enum ParsedLine {
    /// Empty, or a different `"event"` (tapes can live inside mixed
    /// telemetry streams).
    Foreign,
    /// A `whatif_cost` entry.
    Entry {
        /// Executed-cost family (vs estimated).
        exec: bool,
        /// `(query, config)` fingerprint key.
        key: Key,
        /// Exact `f64::to_bits` cost.
        bits: u64,
    },
}

/// Parse one line of tape JSONL. `no` is the 1-based line number for
/// error reporting; malformed lines (including a truncated final line
/// with no newline) surface as [`CostError::TapeCorrupt`].
fn parse_tape_line(line: &str, no: usize) -> CostResult<ParsedLine> {
    let line = line.trim();
    if line.is_empty() || !line.contains("\"event\":\"whatif_cost\"") {
        return Ok(ParsedLine::Foreign);
    }
    let bad = || CostError::TapeCorrupt {
        line: no,
        detail: line.chars().take(160).collect(),
    };
    let q = u128::from_str_radix(field(line, "\"q\":\"", '"').ok_or_else(bad)?, 16)
        .map_err(|_| bad())?;
    let cfg = u128::from_str_radix(field(line, "\"cfg\":\"", '"').ok_or_else(bad)?, 16)
        .map_err(|_| bad())?;
    let bits: u64 = field(line, "\"bits\":", '}')
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    let exec = match field(line, "\"kind\":\"", '"').ok_or_else(bad)? {
        "est" => false,
        "exec" => true,
        _ => return Err(bad()),
    };
    Ok(ParsedLine::Entry {
        exec,
        key: (q, cfg),
        bits,
    })
}

/// A recorded cost tape: estimated and executed per-query costs keyed by
/// structural fingerprints, values stored as exact [`f64::to_bits`]
/// patterns.
///
/// Backed by `BTreeMap`, so iteration (and therefore [`Tape::to_jsonl`])
/// is sorted by key — two tapes with the same entries serialize to
/// byte-identical JSONL regardless of the recording order or the number
/// of worker threads that produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tape {
    est: BTreeMap<Key, u64>,
    exec: BTreeMap<Key, u64>,
}

impl Tape {
    /// Number of estimated-cost entries.
    pub fn est_len(&self) -> usize {
        self.est.len()
    }

    /// Number of executed-cost entries.
    pub fn exec_len(&self) -> usize {
        self.exec.len()
    }

    /// True if the tape holds no entries of either kind.
    pub fn is_empty(&self) -> bool {
        self.est.is_empty() && self.exec.is_empty()
    }

    /// Merge another tape's entries into this one. Overlapping keys must
    /// agree — the [`CostBackend`] bit-equality contract makes two
    /// recordings of the same `(query, config)` pair identical — and
    /// debug builds assert that per entry, so cost drift between
    /// recordings fails loudly in tests instead of being masked by a
    /// silent overwrite. Used by `pipa-serve` to accumulate one tenant
    /// tape across many recorded sessions.
    pub fn merge(&mut self, other: Tape) {
        for (dst, src) in [(&mut self.est, other.est), (&mut self.exec, other.exec)] {
            for ((q, cfg), bits) in src {
                if let Some(prev) = dst.insert((q, cfg), bits) {
                    debug_assert_eq!(
                        prev, bits,
                        "tape merge: overlapping entry disagrees at q={q:032x} cfg={cfg:032x} \
                         — the CostBackend bit-equality contract was broken upstream"
                    );
                }
            }
        }
    }

    /// Serialize to JSONL, one entry per line, sorted (estimated first,
    /// then executed), each line shaped like
    /// `{"event":"whatif_cost","kind":"est","q":"<32 hex>","cfg":"<32 hex>","bits":123}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (kind, map) in [("est", &self.est), ("exec", &self.exec)] {
            for (&(q, cfg), &bits) in map {
                out.push_str(&render_line(kind, q, cfg, bits));
                out.push('\n');
            }
        }
        out
    }

    /// Stream the tape to a file, one entry at a time through a
    /// [`BufWriter`] — the full JSONL text is never resident. Returns the
    /// number of bytes written and adds it to the `tape_bytes_streamed`
    /// obs counter (a pure function of the tape contents, so the counter
    /// stays jobs-deterministic).
    pub fn write_jsonl_file(&self, path: impl AsRef<Path>) -> CostResult<u64> {
        let path = path.as_ref();
        let io = |e: std::io::Error| CostError::Io(format!("{}: {e}", path.display()));
        let mut w = BufWriter::new(File::create(path).map_err(io)?);
        let mut bytes = 0u64;
        for (kind, map) in [("est", &self.est), ("exec", &self.exec)] {
            for (&(q, cfg), &bits) in map {
                let line = render_line(kind, q, cfg, bits);
                w.write_all(line.as_bytes()).map_err(io)?;
                w.write_all(b"\n").map_err(io)?;
                bytes += line.len() as u64 + 1;
            }
        }
        w.flush().map_err(io)?;
        pipa_obs::count("tape_bytes_streamed", bytes);
        Ok(bytes)
    }

    /// Stream a tape in from a JSONL file line by line — the whole file
    /// is never resident, so replay fleets can load multi-gigabyte tapes
    /// under a flat memory ceiling. `max_bytes` guards against runaway
    /// or mis-pointed files ([`DEFAULT_TAPE_BYTE_LIMIT`] is a sensible
    /// default); exceeding it aborts with [`CostError::TapeTooLarge`],
    /// and any malformed or truncated line surfaces as
    /// [`CostError::TapeCorrupt`] with its line number. Bytes consumed
    /// are added to the `tape_bytes_streamed` obs counter.
    pub fn read_jsonl_file(path: impl AsRef<Path>, max_bytes: u64) -> CostResult<Tape> {
        let path = path.as_ref();
        let io = |e: std::io::Error| CostError::Io(format!("{}: {e}", path.display()));
        let mut reader = BufReader::new(File::open(path).map_err(io)?);
        let mut tape = Tape::default();
        let mut buf = String::new();
        let mut bytes = 0u64;
        let mut no = 0usize;
        loop {
            buf.clear();
            let n = reader.read_line(&mut buf).map_err(io)?;
            if n == 0 {
                break;
            }
            bytes += n as u64;
            if bytes > max_bytes {
                return Err(CostError::TapeTooLarge {
                    bytes,
                    limit: max_bytes,
                });
            }
            no += 1;
            if let ParsedLine::Entry { exec, key, bits } = parse_tape_line(&buf, no)? {
                if exec {
                    tape.exec.insert(key, bits);
                } else {
                    tape.est.insert(key, bits);
                }
            }
        }
        pipa_obs::count("tape_bytes_streamed", bytes);
        Ok(tape)
    }

    /// Write the tape through a `pipa-obs` sink (e.g. a
    /// [`pipa_obs::JsonlSink`]), one line per entry.
    pub fn write_to(&self, sink: &dyn pipa_obs::Sink) {
        for line in self.to_jsonl().lines() {
            sink.write_line(line);
        }
        sink.flush();
    }

    /// Parse a tape back from the JSONL produced by [`Tape::to_jsonl`].
    /// Lines with other `"event"` values are skipped, so a tape can be
    /// recovered from a mixed telemetry stream.
    pub fn from_jsonl(text: &str) -> CostResult<Tape> {
        let mut tape = Tape::default();
        for (no, line) in text.lines().enumerate() {
            if let ParsedLine::Entry { exec, key, bits } = parse_tape_line(line, no + 1)? {
                if exec {
                    tape.exec.insert(key, bits);
                } else {
                    tape.est.insert(key, bits);
                }
            }
        }
        Ok(tape)
    }
}

/// Extract the substring between `prefix` and the next `end` character.
fn field<'a>(line: &'a str, prefix: &str, end: char) -> Option<&'a str> {
    let start = line.find(prefix)? + prefix.len();
    let rest = &line[start..];
    Some(rest[..rest.find(end)?].trim())
}

/// Session state for the tape backends: the current index configuration.
/// Tape lookups are pure, so the session carries no evaluator state.
#[derive(Clone)]
struct TapeSession {
    cfg: IndexConfig,
}

/// A recording wrapper: answers every call from the wrapped backend and
/// captures per-query costs into a [`Tape`].
///
/// Composite calls (workload/batch/delta/session) are decomposed into
/// per-query costs — bit-identical to the inner backend by the
/// [`CostBackend`] decomposition contract — so the tape covers every
/// `(query, config)` pair a replayed run will ask for.
pub struct RecordingBackend<'a> {
    inner: &'a dyn CostBackend,
    est: Mutex<BTreeMap<Key, u64>>,
    exec: Mutex<BTreeMap<Key, u64>>,
}

impl<'a> RecordingBackend<'a> {
    /// Record all cost traffic flowing into `inner`.
    pub fn new(inner: &'a dyn CostBackend) -> Self {
        RecordingBackend {
            inner,
            est: Mutex::new(BTreeMap::new()),
            exec: Mutex::new(BTreeMap::new()),
        }
    }

    /// Snapshot the tape recorded so far.
    pub fn tape(&self) -> Tape {
        Tape {
            est: self.est.lock().map(|m| m.clone()).unwrap_or_default(),
            exec: self.exec.lock().map(|m| m.clone()).unwrap_or_default(),
        }
    }

    fn record(&self, map: &Mutex<BTreeMap<Key, u64>>, q: &Query, cfg: &IndexConfig, v: f64) {
        if let Ok(mut m) = map.lock() {
            m.insert(
                (
                    fingerprint_query(q).to_u128(),
                    fingerprint_config(cfg).to_u128(),
                ),
                v.to_bits(),
            );
        }
    }

    fn weighted_sum(
        &self,
        w: &Workload,
        cfg: &IndexConfig,
        per_query: impl Fn(&Query, &IndexConfig) -> CostResult<f64>,
    ) -> CostResult<f64> {
        let mut total = 0.0;
        for wq in w.iter() {
            total += wq.frequency as f64 * per_query(&wq.query, cfg)?;
        }
        Ok(total)
    }
}

impl CostBackend for RecordingBackend<'_> {
    fn name(&self) -> &'static str {
        "record"
    }

    fn catalog(&self) -> Catalog<'_> {
        self.inner.catalog()
    }

    fn query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        let v = self.inner.query_cost(q, cfg)?;
        self.record(&self.est, q, cfg, v);
        Ok(v)
    }

    fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        self.weighted_sum(w, cfg, |q, cfg| self.query_cost(q, cfg))
    }

    fn session_begin(&self, _w: &Workload) -> CostResult<CostSession> {
        Ok(CostSession::new(TapeSession {
            cfg: IndexConfig::empty(),
        }))
    }

    fn session_total(&self, w: &Workload, session: &CostSession) -> CostResult<f64> {
        let s: &TapeSession = session
            .downcast_ref()
            .ok_or(CostError::SessionMismatch { backend: "record" })?;
        self.workload_cost(w, &s.cfg)
    }

    fn session_preview_add(
        &self,
        w: &Workload,
        session: &CostSession,
        cfg_after: &IndexConfig,
        _idx: &Index,
    ) -> CostResult<f64> {
        session
            .downcast_ref::<TapeSession>()
            .ok_or(CostError::SessionMismatch { backend: "record" })?;
        self.workload_cost(w, cfg_after)
    }

    fn session_add(
        &self,
        w: &Workload,
        session: &mut CostSession,
        cfg_after: &IndexConfig,
        _idx: &Index,
    ) -> CostResult<f64> {
        let s: &mut TapeSession = session
            .downcast_mut()
            .ok_or(CostError::SessionMismatch { backend: "record" })?;
        s.cfg = cfg_after.clone();
        self.workload_cost(w, cfg_after)
    }

    fn supports_execution(&self) -> bool {
        self.inner.supports_execution()
    }

    fn observe_training(&self, w: &Workload) -> CostResult<()> {
        // Forward so a recorded learning backend refits exactly like the
        // live one; the post-refit costs it records then replay verbatim.
        self.inner.observe_training(w)
    }

    fn executed_query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        let v = self.inner.executed_query_cost(q, cfg)?;
        self.record(&self.exec, q, cfg, v);
        Ok(v)
    }

    fn executed_workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        self.weighted_sum(w, cfg, |q, cfg| self.executed_query_cost(q, cfg))
    }

    fn render_sql(&self, q: &Query) -> CostResult<String> {
        self.inner.render_sql(q)
    }

    fn explain(&self, q: &Query, cfg: &IndexConfig) -> CostResult<String> {
        self.inner.explain(q, cfg)
    }

    fn hypo_create(&self, idx: &Index) -> CostResult<()> {
        self.inner.hypo_create(idx)
    }

    fn hypo_drop(&self, idx: &Index) -> CostResult<()> {
        self.inner.hypo_drop(idx)
    }

    fn hypo_clear(&self) -> CostResult<()> {
        self.inner.hypo_clear()
    }

    fn hypo_config(&self) -> CostResult<IndexConfig> {
        self.inner.hypo_config()
    }
}

/// A backend that answers every cost from a recorded [`Tape`] — no
/// simulator, no data, fully deterministic. Missing entries surface as
/// [`CostError::ReplayMiss`] rather than a fabricated number.
///
/// Owns a clone of the recording backend's catalog (schema and
/// statistics) so advisors that extract features keep working against a
/// replayed run.
pub struct ReplayBackend {
    schema: Schema,
    table_stats: Vec<TableStats>,
    column_stats: Vec<ColumnStats>,
    est: BTreeMap<Key, u64>,
    exec: BTreeMap<Key, u64>,
    hypo: Mutex<IndexConfig>,
}

impl ReplayBackend {
    /// Build a replay backend from a recorded tape plus the catalog of
    /// the backend that recorded it (cloned into owned storage).
    pub fn new(catalog: Catalog<'_>, tape: Tape) -> Self {
        ReplayBackend {
            schema: catalog.schema.clone(),
            table_stats: catalog.table_stats.to_vec(),
            column_stats: catalog.column_stats.to_vec(),
            est: tape.est,
            exec: tape.exec,
            hypo: Mutex::new(IndexConfig::empty()),
        }
    }

    /// Build a replay backend by streaming a tape from a JSONL file (see
    /// [`Tape::read_jsonl_file`] for the size guard and error surface).
    /// The whole file is never resident: only the parsed entries are.
    pub fn from_file(
        catalog: Catalog<'_>,
        path: impl AsRef<Path>,
        max_bytes: u64,
    ) -> CostResult<Self> {
        Ok(Self::new(catalog, Tape::read_jsonl_file(path, max_bytes)?))
    }

    fn lookup(
        &self,
        map: &BTreeMap<Key, u64>,
        q: &Query,
        cfg: &IndexConfig,
        executed: bool,
    ) -> CostResult<f64> {
        let key = (
            fingerprint_query(q).to_u128(),
            fingerprint_config(cfg).to_u128(),
        );
        map.get(&key)
            .map(|&bits| f64::from_bits(bits))
            .ok_or_else(|| CostError::ReplayMiss {
                query: key.0,
                config: key.1,
                executed,
                detail: self.miss_detail(q, cfg, map.len()).into(),
            })
    }

    /// Render the offending `(query, config)` pair for a
    /// [`CostError::ReplayMiss`]: the query's SQL text, the configuration's
    /// index names, and the size of the tape that was searched. The owned
    /// catalog makes this possible without reaching back to the recording
    /// backend.
    fn miss_detail(&self, q: &Query, cfg: &IndexConfig, tape_len: usize) -> String {
        let cat = self.catalog();
        let sql = q.render_sql(cat.schema, |c| cat.column(c));
        let indexes: Vec<String> = cfg
            .indexes()
            .iter()
            .map(|i| i.name(cat.schema))
            .collect();
        format!(
            "query `{sql}` under config [{}]; tape holds {tape_len} entr{}",
            indexes.join(", "),
            if tape_len == 1 { "y" } else { "ies" }
        )
    }
}

impl CostBackend for ReplayBackend {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn catalog(&self) -> Catalog<'_> {
        Catalog {
            schema: &self.schema,
            table_stats: &self.table_stats,
            column_stats: &self.column_stats,
        }
    }

    fn query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        self.lookup(&self.est, q, cfg, false)
    }

    fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        let mut total = 0.0;
        for wq in w.iter() {
            total += wq.frequency as f64 * self.query_cost(&wq.query, cfg)?;
        }
        Ok(total)
    }

    fn session_begin(&self, _w: &Workload) -> CostResult<CostSession> {
        Ok(CostSession::new(TapeSession {
            cfg: IndexConfig::empty(),
        }))
    }

    fn session_total(&self, w: &Workload, session: &CostSession) -> CostResult<f64> {
        let s: &TapeSession = session
            .downcast_ref()
            .ok_or(CostError::SessionMismatch { backend: "replay" })?;
        self.workload_cost(w, &s.cfg)
    }

    fn session_preview_add(
        &self,
        w: &Workload,
        session: &CostSession,
        cfg_after: &IndexConfig,
        _idx: &Index,
    ) -> CostResult<f64> {
        session
            .downcast_ref::<TapeSession>()
            .ok_or(CostError::SessionMismatch { backend: "replay" })?;
        self.workload_cost(w, cfg_after)
    }

    fn session_add(
        &self,
        w: &Workload,
        session: &mut CostSession,
        cfg_after: &IndexConfig,
        _idx: &Index,
    ) -> CostResult<f64> {
        let s: &mut TapeSession = session
            .downcast_mut()
            .ok_or(CostError::SessionMismatch { backend: "replay" })?;
        s.cfg = cfg_after.clone();
        self.workload_cost(w, cfg_after)
    }

    fn supports_execution(&self) -> bool {
        !self.exec.is_empty()
    }

    fn executed_query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        self.lookup(&self.exec, q, cfg, true)
    }

    fn executed_workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        let mut total = 0.0;
        for wq in w.iter() {
            total += wq.frequency as f64 * self.executed_query_cost(&wq.query, cfg)?;
        }
        Ok(total)
    }

    fn hypo_create(&self, idx: &Index) -> CostResult<()> {
        let mut hypo = self
            .hypo
            .lock()
            .map_err(|_| CostError::Sim(pipa_sim::SimError::Poisoned("hypothetical index set")))?;
        hypo.add(idx.clone());
        Ok(())
    }

    fn hypo_drop(&self, idx: &Index) -> CostResult<()> {
        let mut hypo = self
            .hypo
            .lock()
            .map_err(|_| CostError::Sim(pipa_sim::SimError::Poisoned("hypothetical index set")))?;
        hypo.remove(idx);
        Ok(())
    }

    fn hypo_clear(&self) -> CostResult<()> {
        let mut hypo = self
            .hypo
            .lock()
            .map_err(|_| CostError::Sim(pipa_sim::SimError::Poisoned("hypothetical index set")))?;
        *hypo = IndexConfig::empty();
        Ok(())
    }

    fn hypo_config(&self) -> CostResult<IndexConfig> {
        let hypo = self
            .hypo
            .lock()
            .map_err(|_| CostError::Sim(pipa_sim::SimError::Poisoned("hypothetical index set")))?;
        Ok(hypo.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_jsonl_round_trips() {
        let mut tape = Tape::default();
        tape.est.insert((7, 9), 1.5f64.to_bits());
        tape.est.insert((1, 2), f64::NAN.to_bits());
        tape.exec.insert((7, 9), 2.25f64.to_bits());
        let text = tape.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let back = Tape::from_jsonl(&text).unwrap();
        assert_eq!(back, tape);
        // Sorted output: the (1,2) entry precedes (7,9) regardless of
        // insertion order.
        assert!(text.find("\"q\":\"00000000000000000000000000000001\"").unwrap()
            < text.find("\"q\":\"00000000000000000000000000000007\"").unwrap());
    }

    #[test]
    fn tape_parse_skips_foreign_events_and_rejects_garbage() {
        let mixed = "{\"event\":\"metric\",\"name\":\"x\"}\n\
                     {\"event\":\"whatif_cost\",\"kind\":\"est\",\"q\":\"0a\",\"cfg\":\"01\",\"bits\":42}\n";
        let tape = Tape::from_jsonl(mixed).unwrap();
        assert_eq!(tape.est_len(), 1);
        assert_eq!(tape.est.get(&(0x0a, 0x01)), Some(&42));

        let bad = "{\"event\":\"whatif_cost\",\"kind\":\"est\",\"q\":\"zz\",\"cfg\":\"01\",\"bits\":42}";
        assert!(matches!(
            Tape::from_jsonl(bad),
            Err(CostError::TapeCorrupt { line: 1, .. })
        ));
        let bad_kind = "{\"event\":\"whatif_cost\",\"kind\":\"wat\",\"q\":\"0a\",\"cfg\":\"01\",\"bits\":1}";
        assert!(Tape::from_jsonl(bad_kind).is_err());
        // The error names the offending line in a mixed stream.
        let mixed_bad = format!("{mixed}{bad}\n");
        match Tape::from_jsonl(&mixed_bad) {
            Err(CostError::TapeCorrupt { line, detail }) => {
                assert_eq!(line, 3);
                assert!(detail.contains("zz"));
            }
            other => panic!("expected TapeCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip_streams_and_guards_size() {
        let dir = std::env::temp_dir().join("pipa_tape_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tape.jsonl");
        let mut tape = Tape::default();
        for i in 0..100u128 {
            tape.est.insert((i, i * 3), (i as u64) << 4);
            tape.exec.insert((i, i * 3), (i as u64) << 5);
        }
        let written = tape.write_jsonl_file(&path).unwrap();
        assert_eq!(written, tape.to_jsonl().len() as u64);
        // Streaming read matches the in-memory parse bit for bit.
        let back = Tape::read_jsonl_file(&path, DEFAULT_TAPE_BYTE_LIMIT).unwrap();
        assert_eq!(back, tape);
        // The size guard trips with the byte counts reported.
        match Tape::read_jsonl_file(&path, 256) {
            Err(CostError::TapeTooLarge { bytes, limit }) => {
                assert!(bytes > 256 && limit == 256);
            }
            other => panic!("expected TapeTooLarge, got {other:?}"),
        }
        // A truncated final line (interrupted writer) is corrupt, with
        // the line number pointing at the cut.
        let text = tape.to_jsonl();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        match Tape::read_jsonl_file(&path, DEFAULT_TAPE_BYTE_LIMIT) {
            Err(CostError::TapeCorrupt { line, .. }) => assert_eq!(line, 200),
            other => panic!("expected TapeCorrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_clear_io_error() {
        let err = Tape::read_jsonl_file("/nonexistent/pipa/tape.jsonl", 1024).unwrap_err();
        assert!(matches!(err, CostError::Io(_)));
        assert!(err.to_string().contains("tape.jsonl"));
    }

    #[test]
    fn tape_merge_unions_and_agreeing_overlaps_are_noops() {
        let mut a = Tape::default();
        a.est.insert((1, 1), 10);
        a.exec.insert((1, 1), 20);
        let mut b = Tape::default();
        b.est.insert((1, 1), 10); // agreeing overlap
        b.est.insert((2, 2), 30); // fresh entry
        a.merge(b);
        assert_eq!(a.est.get(&(1, 1)), Some(&10));
        assert_eq!(a.est.get(&(2, 2)), Some(&30));
        assert_eq!(a.exec.get(&(1, 1)), Some(&20));
        assert_eq!(a.est_len(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "tape merge: overlapping entry disagrees")]
    fn tape_merge_rejects_disagreeing_overlaps_in_debug() {
        let mut a = Tape::default();
        a.est.insert((1, 1), 10);
        let mut b = Tape::default();
        b.est.insert((1, 1), 11);
        a.merge(b);
    }

    #[test]
    fn tape_write_to_sink_matches_to_jsonl() {
        let mut tape = Tape::default();
        tape.exec.insert((3, 4), 8u64);
        let sink = pipa_obs::MemorySink::default();
        tape.write_to(&sink);
        assert_eq!(format!("{}\n", sink.contents()), tape.to_jsonl());
    }
}
