//! [`CostEngine`]: composed helpers on top of any [`CostBackend`].

use crate::backend::{CostBackend, CostSession};
use crate::error::CostResult;
use pipa_sim::cost::{Catalog, ConfigDelta};
use pipa_sim::{ColumnId, ColumnStats, Index, IndexConfig, Query, Schema, TableStats, Workload};

/// A thin, copyable facade over a `&dyn CostBackend` that adds the
/// composed helpers every consumer wants — benefits relative to the
/// empty configuration, best-single-index selection,
/// estimated-vs-executed dispatch — plus ergonomic catalog accessors, so
/// call sites read like the old concrete `Database` API while staying
/// backend-agnostic.
///
/// Every helper is a pure composition of trait calls: identical cost
/// bits flow through regardless of which backend sits behind the seam.
#[derive(Clone, Copy)]
pub struct CostEngine<'a> {
    backend: &'a dyn CostBackend,
}

impl<'a> CostEngine<'a> {
    /// Wrap a backend.
    pub fn new(backend: &'a dyn CostBackend) -> Self {
        CostEngine { backend }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &'a dyn CostBackend {
        self.backend
    }

    // ---- Catalog accessors -------------------------------------------

    /// The backend's catalog view.
    pub fn catalog(&self) -> Catalog<'a> {
        self.backend.catalog()
    }

    /// The schema.
    pub fn schema(&self) -> &'a Schema {
        self.backend.catalog().schema
    }

    /// Per-column statistics for `c`.
    pub fn column_stat(&self, c: ColumnId) -> &'a ColumnStats {
        self.backend.catalog().column(c)
    }

    /// All per-column statistics, indexed by [`ColumnId`].
    pub fn column_stats(&self) -> &'a [ColumnStats] {
        self.backend.catalog().column_stats
    }

    /// All per-table statistics, indexed by `TableId`.
    pub fn table_stats(&self) -> &'a [TableStats] {
        self.backend.catalog().table_stats
    }

    /// Columns eligible for indexing under the schema's rules.
    pub fn indexable_columns(&self) -> Vec<ColumnId> {
        self.backend.catalog().schema.indexable_columns()
    }

    // ---- Cost passthroughs -------------------------------------------

    /// `c(q, d, I)`.
    pub fn query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        self.backend.query_cost(q, cfg)
    }

    /// `c(W, d, I)`.
    pub fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        self.backend.workload_cost(w, cfg)
    }

    /// Workload costs for a batch of configurations.
    pub fn batch_workload_cost(
        &self,
        w: &Workload,
        configs: &[IndexConfig],
    ) -> CostResult<Vec<f64>> {
        self.backend.batch_workload_cost(w, configs)
    }

    /// Workload cost of `base ± index`.
    pub fn delta_workload_cost(
        &self,
        w: &Workload,
        base: &IndexConfig,
        delta: &ConfigDelta,
    ) -> CostResult<f64> {
        self.backend.delta_workload_cost(w, base, delta)
    }

    /// Begin an incremental evaluation session.
    pub fn session_begin(&self, w: &Workload) -> CostResult<CostSession> {
        self.backend.session_begin(w)
    }

    /// Current session total.
    pub fn session_total(&self, w: &Workload, session: &CostSession) -> CostResult<f64> {
        self.backend.session_total(w, session)
    }

    /// Preview adding `idx` to the session configuration.
    pub fn session_preview_add(
        &self,
        w: &Workload,
        session: &CostSession,
        cfg_after: &IndexConfig,
        idx: &Index,
    ) -> CostResult<f64> {
        self.backend.session_preview_add(w, session, cfg_after, idx)
    }

    /// Commit `idx` into the session configuration.
    pub fn session_add(
        &self,
        w: &Workload,
        session: &mut CostSession,
        cfg_after: &IndexConfig,
        idx: &Index,
    ) -> CostResult<f64> {
        self.backend.session_add(w, session, cfg_after, idx)
    }

    /// Executed (actual) cost of one query; estimate where unsupported.
    pub fn executed_query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        self.backend.executed_query_cost(q, cfg)
    }

    /// Executed (actual) workload cost; estimate where unsupported.
    pub fn executed_workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        self.backend.executed_workload_cost(w, cfg)
    }

    // ---- Composed helpers (formerly `Database` conveniences) ---------

    /// Relative cost reduction of `cfg` vs no indexes for one query:
    /// `1 - c(q, I)/c(q, ∅)`, or `0` when the base cost is non-positive.
    pub fn query_benefit(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        let base = self.backend.query_cost(q, &IndexConfig::empty())?;
        if base <= 0.0 {
            return Ok(0.0);
        }
        Ok(1.0 - self.backend.query_cost(q, cfg)? / base)
    }

    /// Relative cost reduction of `cfg` vs no indexes for a workload.
    pub fn workload_benefit(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        let base = self.backend.workload_cost(w, &IndexConfig::empty())?;
        if base <= 0.0 {
            return Ok(0.0);
        }
        Ok(1.0 - self.backend.workload_cost(w, cfg)? / base)
    }

    /// The single candidate index minimizing a query's estimated cost.
    pub fn best_single_index(&self, q: &Query, candidates: &[Index]) -> CostResult<Option<Index>> {
        let mut best: Option<(f64, &Index)> = None;
        for i in candidates {
            let cfg = IndexConfig::from_indexes([i.clone()]);
            let cost = self.backend.query_cost(q, &cfg)?;
            // `<=` so ties resolve to the later candidate, exactly like the
            // `Iterator::min_by` this helper replaces.
            if best.is_none_or(|(b, _)| cost.total_cmp(&b).is_le()) {
                best = Some((cost, i));
            }
        }
        Ok(best.map(|(_, i)| i.clone()))
    }

    /// Workload cost measured the way the caller asked for: executed
    /// (actual) when `use_actual`, estimated otherwise.
    pub fn measured_workload_cost(
        &self,
        w: &Workload,
        cfg: &IndexConfig,
        use_actual: bool,
    ) -> CostResult<f64> {
        if use_actual {
            self.backend.executed_workload_cost(w, cfg)
        } else {
            self.backend.workload_cost(w, cfg)
        }
    }
}

impl std::fmt::Debug for CostEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CostEngine({})", self.backend.name())
    }
}
