//! The object-safe [`CostBackend`] trait and its type-erased session
//! handle.

use crate::error::{CostError, CostResult};
use pipa_sim::cost::{Catalog, ConfigDelta};
use pipa_sim::{Index, IndexConfig, Query, Workload};
use std::any::Any;

/// Backend-private state of an incremental evaluation session, boxed and
/// type-erased so [`CostSession`] stays a plain value consumers can store
/// (and clone) without naming the backend's concrete state type.
trait SessionState: Any + Send {
    fn clone_box(&self) -> Box<dyn SessionState>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any + Send + Clone> SessionState for T {
    fn clone_box(&self) -> Box<dyn SessionState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An incremental what-if evaluation session, created by
/// [`CostBackend::session_begin`] and advanced by `session_add`.
///
/// The handle is opaque: consumers store it (advisors keep one per
/// episode), clone it (episodes are `Clone`), and hand it back to the
/// backend that created it. Handing it to a different backend yields
/// [`CostError::SessionMismatch`], not a panic.
pub struct CostSession(Box<dyn SessionState>);

impl CostSession {
    /// Wrap backend-private session state. Only backends call this.
    pub fn new<T: Any + Send + Clone>(state: T) -> Self {
        CostSession(Box::new(state))
    }

    /// Borrow the state as `T`, if this session was created with `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.as_any().downcast_ref()
    }

    /// Mutably borrow the state as `T`.
    pub fn downcast_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.0.as_any_mut().downcast_mut()
    }
}

impl Clone for CostSession {
    fn clone(&self) -> Self {
        CostSession(self.0.clone_box())
    }
}

impl std::fmt::Debug for CostSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CostSession(..)")
    }
}

/// The cost oracle every PIPA component consumes: `c(q, d, I)` /
/// `c(W, d, I)` with batched, delta, and session-based evaluation, a
/// hypothetical-index lifecycle, and executed (actual) costs where the
/// backend has data.
///
/// The trait is **object-safe** — consumers hold `&dyn CostBackend` — and
/// total: every method returns [`CostResult`] instead of panicking.
/// Method names are deliberately distinct from the concrete
/// `pipa_sim::Database` entry points (`estimated_*`, `what_if_*`,
/// `whatif_eval_*`, `actual_*`) so the CI boundary lint can forbid direct
/// simulator calls in consumer crates by name.
///
/// # Contract
///
/// **Bit-equality.** Costs are deterministic pure functions of
/// `(catalog, query, config)`: repeated calls return the same `f64`
/// bit-for-bit, regardless of which route answered them (benefit-matrix
/// cells, decomposed join plans, memoized scalar model, or a replay
/// tape) and regardless of thread count. Composite results decompose:
/// `workload_cost` is the frequency-weighted sum, in workload order, of
/// the per-query `query_cost` values, and `batch_workload_cost` /
/// `delta_workload_cost` / session totals must all equal the
/// corresponding sequence of `workload_cost` calls bit-for-bit. This is
/// what makes per-query tapes sufficient to replay whole grids (see
/// [`crate::RecordingBackend`] / [`crate::ReplayBackend`]); it is pinned
/// by `tests/cost_backend_differential.rs`.
///
/// **Session lifecycle.** [`session_begin`](Self::session_begin) starts
/// a session at the **empty configuration**; the returned
/// [`CostSession`] is an opaque value the consumer stores and hands
/// back to the *same* backend.
/// [`session_preview_add`](Self::session_preview_add) costs
/// `session config + idx` without mutating the session;
/// [`session_add`](Self::session_add) commits it.
/// Both take `cfg_after`, which **must** equal the session's current
/// configuration with `idx` added — backends may trust it (the matrix
/// paths re-cost only what `idx` touches) or recompute from it, but
/// they never diff it. Sessions are `Clone`: cloning forks the
/// configuration state, and both forks remain valid against the
/// creating backend.
///
/// **Error semantics.** Every method is total: failures surface as
/// [`CostError`] values, never panics. Handing a session to a backend
/// that did not create it yields [`CostError::SessionMismatch`]. A
/// replay tape with no entry for a requested `(query, config)` pair
/// yields [`CostError::ReplayMiss`] — carrying both fingerprints and a
/// rendered description of the pair — never a fabricated cost.
/// Operations a backend cannot perform yield [`CostError::Unsupported`]
/// (e.g. `explain` on a tape) rather than a silent approximation;
/// the only sanctioned fallback is `executed_*` degrading to the
/// estimate when [`supports_execution`](Self::supports_execution) is
/// false, mirroring `Database::actual_query_cost`.
pub trait CostBackend: Send + Sync {
    /// Short stable name (used in errors, traces, and result artifacts).
    fn name(&self) -> &'static str;

    /// Read-only catalog view: schema plus table/column statistics.
    /// Advisors use this for feature extraction and candidate
    /// enumeration; it is the only non-cost surface consumers need.
    fn catalog(&self) -> Catalog<'_>;

    /// `c(q, d, I)`: estimated cost of one query under a hypothetical
    /// index configuration.
    fn query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64>;

    /// `c(W, d, I)`: frequency-weighted workload cost.
    fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64>;

    /// Workload costs for a batch of configurations (the probing stage's
    /// bulk what-if call). Backends with shared per-query state answer
    /// this cheaper than `configs.len()` independent workload costings.
    fn batch_workload_cost(&self, w: &Workload, configs: &[IndexConfig]) -> CostResult<Vec<f64>> {
        configs.iter().map(|cfg| self.workload_cost(w, cfg)).collect()
    }

    /// Workload cost of `base ± index` (one [`ConfigDelta`]).
    fn delta_workload_cost(
        &self,
        w: &Workload,
        base: &IndexConfig,
        delta: &ConfigDelta,
    ) -> CostResult<f64> {
        let cfg = delta.apply(base);
        self.workload_cost(w, &cfg)
    }

    /// Start an incremental evaluation session for `w` at the empty
    /// configuration.
    fn session_begin(&self, w: &Workload) -> CostResult<CostSession>;

    /// Current total workload cost of a session.
    fn session_total(&self, w: &Workload, session: &CostSession) -> CostResult<f64>;

    /// Total workload cost of `session config + idx` without committing.
    /// `cfg_after` must be the session's configuration with `idx` added.
    fn session_preview_add(
        &self,
        w: &Workload,
        session: &CostSession,
        cfg_after: &IndexConfig,
        idx: &Index,
    ) -> CostResult<f64>;

    /// Commit `idx` into the session's configuration and return the new
    /// total. `cfg_after` must be the session's configuration with `idx`
    /// already added.
    fn session_add(
        &self,
        w: &Workload,
        session: &mut CostSession,
        cfg_after: &IndexConfig,
        idx: &Index,
    ) -> CostResult<f64>;

    /// Whether this backend can produce executed (actual) costs that are
    /// independent of its estimates.
    fn supports_execution(&self) -> bool {
        false
    }

    /// Executed (actual) cost of one query. Backends without execution
    /// fall back to the estimate, mirroring `Database::actual_query_cost`.
    fn executed_query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        self.query_cost(q, cfg)
    }

    /// Executed (actual) cost of a workload, frequency-weighted.
    fn executed_workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        self.workload_cost(w, cfg)
    }

    /// Render a query to SQL using the backend's statistics.
    fn render_sql(&self, q: &Query) -> CostResult<String> {
        let cat = self.catalog();
        Ok(q.render_sql(cat.schema, |c| cat.column(c)))
    }

    /// EXPLAIN-style access-path summary, where the backend has a plan
    /// model to describe.
    fn explain(&self, _q: &Query, _cfg: &IndexConfig) -> CostResult<String> {
        Err(CostError::Unsupported {
            backend: self.name(),
            op: "explain",
        })
    }

    // ---- Hypothetical-index lifecycle --------------------------------
    //
    // The paper's what-if interface (HypoPG-style): create/drop
    // hypothetical indexes on the backend, then cost queries against the
    // accumulated set without naming it at every call site.

    /// Create a hypothetical index.
    fn hypo_create(&self, idx: &Index) -> CostResult<()>;

    /// Drop a previously created hypothetical index (dropping an index
    /// that was never created is a no-op, as in HypoPG).
    fn hypo_drop(&self, idx: &Index) -> CostResult<()>;

    /// Drop all hypothetical indexes.
    fn hypo_clear(&self) -> CostResult<()>;

    /// The current hypothetical configuration.
    fn hypo_config(&self) -> CostResult<IndexConfig>;

    /// `c(q, d, H)` under the current hypothetical configuration.
    fn hypo_query_cost(&self, q: &Query) -> CostResult<f64> {
        let cfg = self.hypo_config()?;
        self.query_cost(q, &cfg)
    }

    /// `c(W, d, H)` under the current hypothetical configuration.
    fn hypo_workload_cost(&self, w: &Workload) -> CostResult<f64> {
        let cfg = self.hypo_config()?;
        self.workload_cost(w, &cfg)
    }

    // ---- Training-time observation -----------------------------------

    /// The harness is about to (re)train the target on `w`: backends
    /// whose cost model is itself *learned from the observed workload*
    /// (the [`crate::LearnedIndexBackend`] refits its per-table CDF
    /// models on the workload's key fractions) update their structures
    /// here, making the index structure a poisoning target in its own
    /// right. Stateless backends ignore it (the default), so the
    /// bit-equality contract above is untouched for them; for learning
    /// backends, costs are pure functions of `(catalog, query, config)`
    /// *between* `observe_training` calls, and the call sequence is part
    /// of the deterministic replayable state.
    fn observe_training(&self, w: &Workload) -> CostResult<()> {
        let _ = w;
        Ok(())
    }
}
