//! Typed errors for cost-backend operations.

use pipa_sim::SimError;
use std::fmt;

/// Convenience alias used throughout the cost seam and its consumers.
pub type CostResult<T> = Result<T, CostError>;

/// An error raised by a [`crate::CostBackend`] operation.
///
/// The pre-seam code panicked on these conditions (poisoned locks,
/// incomplete storage); the trait surfaces them as values so advisors,
/// injectors, and the harness can propagate instead of aborting a whole
/// experiment grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostError {
    /// The underlying simulator substrate failed.
    Sim(SimError),
    /// A session handle was passed to a backend (or workload) it was not
    /// created by/for.
    SessionMismatch {
        /// Name of the backend that rejected the session.
        backend: &'static str,
    },
    /// A replay backend had no tape entry for the requested
    /// `(query, config)` pair.
    ReplayMiss {
        /// 128-bit structural fingerprint of the query.
        query: u128,
        /// 128-bit structural fingerprint of the index configuration.
        config: u128,
        /// Whether the miss was on the executed-cost tape (vs estimated).
        executed: bool,
        /// Human-readable description of the offending pair (rendered
        /// SQL, index list, tape size). Diagnostic only: carries no
        /// identity, so two misses on the same fingerprints compare
        /// equal even if rendered differently.
        detail: ReplayMissDetail,
    },
    /// The backend does not support the requested operation.
    Unsupported {
        /// Name of the backend.
        backend: &'static str,
        /// The unsupported operation.
        op: &'static str,
    },
    /// A tape line failed to parse (truncated write, foreign bytes, or
    /// hand-edited file). Carries the 1-based line number and the
    /// offending content so the broken byte range is findable in a
    /// multi-gigabyte tape.
    TapeCorrupt {
        /// 1-based line number within the tape stream.
        line: usize,
        /// The offending line (truncated for display).
        detail: String,
    },
    /// A tape stream exceeded the caller's size guard; the loader stops
    /// reading instead of swallowing an unbounded file into memory.
    TapeTooLarge {
        /// Bytes consumed before the guard tripped.
        bytes: u64,
        /// The configured limit.
        limit: u64,
    },
    /// Reading or parsing a tape failed.
    Io(String),
    /// A target spec named a kind id with no constructor registered in
    /// the target registry (the advisor-side twin of this cost seam).
    /// Raised when a grid, stream, or tenant resolves an `AdvisorSpec`
    /// whose kind was never registered.
    UnknownTarget {
        /// The unresolved kind id.
        kind: String,
        /// Comma-joined ids that *were* registered at resolution time.
        registered: String,
    },
}

/// Diagnostic payload attached to [`CostError::ReplayMiss`]: what the
/// offending `(query, config)` pair actually was, rendered by the backend
/// that raised the miss (SQL text, index names, tape size).
///
/// Compares equal to every other detail so that [`CostError`]'s derived
/// `PartialEq`/`Eq` remain structural on the fingerprints alone — two
/// misses on the same pair are the same error even when one side could
/// render richer context than the other.
#[derive(Debug, Clone, Default)]
pub struct ReplayMissDetail(pub String);

impl PartialEq for ReplayMissDetail {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for ReplayMissDetail {}

impl From<String> for ReplayMissDetail {
    fn from(s: String) -> Self {
        ReplayMissDetail(s)
    }
}

impl fmt::Display for ReplayMissDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::Sim(e) => write!(f, "simulator error: {e}"),
            CostError::SessionMismatch { backend } => {
                write!(f, "cost session does not belong to backend `{backend}`")
            }
            CostError::ReplayMiss {
                query,
                config,
                executed,
                detail,
            } => {
                write!(
                    f,
                    "replay tape miss ({} cost): query {query:032x} under config {config:032x}",
                    if *executed { "executed" } else { "estimated" }
                )?;
                if !detail.0.is_empty() {
                    write!(f, " ({detail})")?;
                }
                Ok(())
            }
            CostError::Unsupported { backend, op } => {
                write!(f, "backend `{backend}` does not support {op}")
            }
            CostError::TapeCorrupt { line, detail } => {
                write!(f, "malformed tape line {line}: {detail}")
            }
            CostError::TapeTooLarge { bytes, limit } => {
                write!(
                    f,
                    "tape stream exceeds the size guard: {bytes} bytes read, limit {limit}"
                )
            }
            CostError::Io(m) => write!(f, "tape i/o error: {m}"),
            CostError::UnknownTarget { kind, registered } => {
                write!(
                    f,
                    "unknown target kind {kind:?} (registered: {registered})"
                )
            }
        }
    }
}

impl std::error::Error for CostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CostError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CostError {
    fn from(e: SimError) -> Self {
        CostError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = CostError::from(SimError::NoData);
        assert!(e.to_string().contains("no materialized data"));
        assert!(std::error::Error::source(&e).is_some());
        let m = CostError::ReplayMiss {
            query: 0xab,
            config: 1,
            executed: false,
            detail: ReplayMissDetail::default(),
        };
        assert!(m.to_string().contains("estimated"));
        assert!(m.to_string().contains("000000000000000000000000000000ab"));
        // An empty detail adds nothing; a populated one is rendered.
        assert!(!m.to_string().ends_with("()"));
        let with_detail = CostError::ReplayMiss {
            query: 0xab,
            config: 1,
            executed: false,
            detail: "SELECT * FROM lineitem; config []".to_string().into(),
        };
        assert!(with_detail.to_string().contains("SELECT * FROM lineitem"));
        // Detail is diagnostic, not identity: the two misses are equal.
        assert_eq!(m, with_detail);
        let c = CostError::TapeCorrupt {
            line: 7,
            detail: "{\"event\":\"whatif_cost\",\"kind\":\"est\",\"q\":\"zz".to_string(),
        };
        assert!(c.to_string().contains("line 7"));
        assert!(c.to_string().contains("zz"));
        let big = CostError::TapeTooLarge {
            bytes: 2048,
            limit: 1024,
        };
        assert!(big.to_string().contains("2048"));
        assert!(big.to_string().contains("1024"));
        let u = CostError::Unsupported {
            backend: "replay",
            op: "explain",
        };
        assert!(u.to_string().contains("replay"));
        assert!(
            CostError::SessionMismatch { backend: "sim" }
                .to_string()
                .contains("sim")
        );
    }
}
