//! [`SimBackend`]: the in-memory simulator behind the seam.

use crate::backend::{CostBackend, CostSession};
use crate::error::{CostError, CostResult};
use pipa_sim::cost::{Catalog, ConfigDelta};
use pipa_sim::{Database, IncrementalEval, Index, IndexConfig, Query, Workload};
use std::sync::Mutex;

/// The analytic-simulator cost backend.
///
/// Owns a [`pipa_sim::Database`] and routes every trait call through its
/// existing machinery — benefit matrix, sharded what-if cache, executor —
/// so trait-object dispatch is **bit-identical** to direct `Database`
/// calls (pinned by `tests/cost_backend_differential.rs`). The wrapper
/// adds only the hypothetical-index set, which the `Database` itself
/// never tracked.
pub struct SimBackend {
    db: Database,
    hypo: Mutex<IndexConfig>,
}

impl SimBackend {
    /// Wrap a database.
    pub fn new(db: Database) -> Self {
        SimBackend {
            db,
            hypo: Mutex::new(IndexConfig::empty()),
        }
    }

    /// The wrapped database (schema/statistics access, cache and matrix
    /// toggles for benchmarks).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Unwrap into the database.
    pub fn into_inner(self) -> Database {
        self.db
    }

    /// Downcast a session handle, or report whose session it isn't.
    fn eval<'s>(&self, session: &'s CostSession, w: &Workload) -> CostResult<&'s IncrementalEval> {
        let eval: &IncrementalEval = session
            .downcast_ref()
            .ok_or(CostError::SessionMismatch { backend: "sim" })?;
        if eval.len() != w.len() {
            return Err(CostError::SessionMismatch { backend: "sim" });
        }
        Ok(eval)
    }
}

impl From<Database> for SimBackend {
    fn from(db: Database) -> Self {
        SimBackend::new(db)
    }
}

impl CostBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn catalog(&self) -> Catalog<'_> {
        self.db.catalog()
    }

    fn query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        Ok(self.db.estimated_query_cost(q, cfg))
    }

    fn workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        Ok(self.db.estimated_workload_cost(w, cfg))
    }

    fn batch_workload_cost(&self, w: &Workload, configs: &[IndexConfig]) -> CostResult<Vec<f64>> {
        Ok(self.db.what_if_batch(w, configs))
    }

    fn delta_workload_cost(
        &self,
        w: &Workload,
        base: &IndexConfig,
        delta: &ConfigDelta,
    ) -> CostResult<f64> {
        Ok(self.db.what_if_delta(w, base, delta))
    }

    fn session_begin(&self, w: &Workload) -> CostResult<CostSession> {
        Ok(CostSession::new(self.db.whatif_eval_begin(w)))
    }

    fn session_total(&self, w: &Workload, session: &CostSession) -> CostResult<f64> {
        let eval = self.eval(session, w)?;
        Ok(self.db.whatif_eval_total(w, eval))
    }

    fn session_preview_add(
        &self,
        w: &Workload,
        session: &CostSession,
        cfg_after: &IndexConfig,
        idx: &Index,
    ) -> CostResult<f64> {
        let eval = self.eval(session, w)?;
        Ok(self.db.whatif_eval_preview_add(w, eval, cfg_after, idx))
    }

    fn session_add(
        &self,
        w: &Workload,
        session: &mut CostSession,
        cfg_after: &IndexConfig,
        idx: &Index,
    ) -> CostResult<f64> {
        self.eval(session, w)?;
        let eval: &mut IncrementalEval = session
            .downcast_mut()
            .ok_or(CostError::SessionMismatch { backend: "sim" })?;
        Ok(self.db.whatif_eval_add(w, eval, cfg_after, idx))
    }

    fn supports_execution(&self) -> bool {
        self.db.has_data()
    }

    fn executed_query_cost(&self, q: &Query, cfg: &IndexConfig) -> CostResult<f64> {
        Ok(self.db.actual_query_cost(q, cfg)?)
    }

    fn executed_workload_cost(&self, w: &Workload, cfg: &IndexConfig) -> CostResult<f64> {
        Ok(self.db.actual_workload_cost(w, cfg)?)
    }

    fn render_sql(&self, q: &Query) -> CostResult<String> {
        Ok(self.db.render_sql(q))
    }

    fn explain(&self, q: &Query, cfg: &IndexConfig) -> CostResult<String> {
        Ok(self.db.explain(q, cfg))
    }

    fn hypo_create(&self, idx: &Index) -> CostResult<()> {
        let mut hypo = self
            .hypo
            .lock()
            .map_err(|_| CostError::Sim(pipa_sim::SimError::Poisoned("hypothetical index set")))?;
        hypo.add(idx.clone());
        Ok(())
    }

    fn hypo_drop(&self, idx: &Index) -> CostResult<()> {
        let mut hypo = self
            .hypo
            .lock()
            .map_err(|_| CostError::Sim(pipa_sim::SimError::Poisoned("hypothetical index set")))?;
        hypo.remove(idx);
        Ok(())
    }

    fn hypo_clear(&self) -> CostResult<()> {
        let mut hypo = self
            .hypo
            .lock()
            .map_err(|_| CostError::Sim(pipa_sim::SimError::Poisoned("hypothetical index set")))?;
        *hypo = IndexConfig::empty();
        Ok(())
    }

    fn hypo_config(&self) -> CostResult<IndexConfig> {
        let hypo = self
            .hypo
            .lock()
            .map_err(|_| CostError::Sim(pipa_sim::SimError::Poisoned("hypothetical index set")))?;
        Ok(hypo.clone())
    }
}
