//! Query-generation quality metrics (paper §6.7, Table 3).
//!
//! * **GAC** — grammar accuracy: fraction of attempts yielding a valid,
//!   executable query;
//! * **IAC** — index accuracy (Eq. 10): overlap between the index set a
//!   reference advisor recommends for the generated query and the
//!   specified target set;
//! * **RMSE** — between the requested indexing benefit and the benefit
//!   the generated query actually achieves under the recommended indexes
//!   (our rewards are relative benefits in `[0,1]`; the paper's unit is
//!   an estimated-cost scale — shapes, not magnitudes, are comparable);
//! * **Distinct** — mean ratio of unique tokens within each query's
//!   rendered SQL (diversity, after \[22\]).

use crate::baselines::QueryGenerator;
use crate::corpus::label_indexes;
use pipa_cost::{CostBackend, CostEngine, CostResult};
use pipa_sim::{ColumnId, Index, IndexConfig};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use std::collections::HashSet;

/// Draw a realistic target-index set: columns of one anchor table and its
/// FK neighbourhood, restricted to plausibly indexable columns
/// (NDV ≥ 20). The paper "randomly select\[s\] three indexes" — indexes,
/// not arbitrary columns, so unindexable text/flag columns are excluded.
pub fn sample_target_set<R: RngCore>(
    cost: &dyn CostBackend,
    k: usize,
    rng: &mut R,
) -> CostResult<Vec<ColumnId>> {
    let schema = cost.catalog().schema;
    let tables = schema.tables();
    for _ in 0..64 {
        let anchor = &tables[rng.gen_range(0..tables.len())];
        // Candidate pool: anchor columns + FK-neighbour columns.
        let mut pool: Vec<ColumnId> = anchor.columns.clone();
        for fk in schema.foreign_keys() {
            let (tf, tt) = (schema.table_of(fk.from), schema.table_of(fk.to));
            if tf == anchor.id {
                pool.extend(schema.columns_of(tt));
            } else if tt == anchor.id {
                pool.extend(schema.columns_of(tf));
            }
        }
        let mut plausible = Vec::with_capacity(pool.len());
        for &c in &pool {
            if is_plausible_index(cost, c)? {
                plausible.push(c);
            }
        }
        plausible.sort_unstable();
        plausible.dedup();
        if plausible.len() >= k {
            return Ok(plausible.choose_multiple(rng, k).copied().collect());
        }
    }
    // Degenerate schema fallback: any indexable columns.
    let mut out = Vec::with_capacity(k);
    for c in schema.indexable_columns() {
        if out.len() >= k {
            break;
        }
        if is_plausible_index(cost, c)? {
            out.push(c);
        }
    }
    Ok(out)
}

/// A column is a plausible index target when an equality probe on it
/// benefits substantially from a single-column index (the same
/// evaluator-side judgement the probing stage uses).
pub fn is_plausible_index(cost: &dyn CostBackend, c: ColumnId) -> CostResult<bool> {
    use pipa_sim::{Aggregate, Predicate, QueryBuilder};
    let cat = cost.catalog();
    if cat.column(c).ndv < 20 {
        return Ok(false);
    }
    let q = QueryBuilder::new()
        .filter(cat.schema, Predicate::eq(c, 0.5))
        .aggregate(Aggregate::CountStar)
        .build(cat.schema)
        .expect("probe query");
    let benefit =
        CostEngine::new(cost).query_benefit(&q, &IndexConfig::from_indexes([Index::single(c)]))?;
    Ok(benefit > 0.2)
}

/// Aggregate generation-quality metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenQuality {
    /// Grammar accuracy in `[0,1]`.
    pub gac: f64,
    /// Index accuracy in `[0,1]`.
    pub iac: f64,
    /// Reward RMSE in `[0,1]` benefit units.
    pub rmse: f64,
    /// Token diversity in `[0,1]`.
    pub distinct: f64,
}

/// Evaluate a generator over `n` trials: each trial draws `k` random
/// target columns and a reward threshold, then scores the output.
pub fn evaluate_generator<G: QueryGenerator + ?Sized, R: RngCore>(
    gen: &mut G,
    cost: &dyn CostBackend,
    n: usize,
    k: usize,
    rng: &mut R,
) -> CostResult<GenQuality> {
    let engine = CostEngine::new(cost);
    let mut correct = 0usize;
    let mut iac_sum = 0.0;
    let mut sq_err_sum = 0.0;
    let mut distinct_sum = 0.0;
    for _ in 0..n {
        let targets: Vec<ColumnId> = sample_target_set(cost, k, rng)?;
        let reward = rng.gen_range(0.05..0.95);
        let Some(q) = gen.generate(cost, &targets, reward)? else {
            continue;
        };
        if q.validate(cost.catalog().schema).is_err() {
            continue;
        }
        correct += 1;
        // IAC: overlap between the reference advisor's picks for q and
        // the requested targets.
        let rec = label_indexes(cost, &q, k)?;
        let overlap = rec.iter().filter(|c| targets.contains(c)).count();
        iac_sum += overlap as f64 / k as f64;
        // RMSE: achieved benefit under recommended indexes vs requested.
        let cfg: IndexConfig = rec.into_iter().map(Index::single).collect();
        let achieved = engine.query_benefit(&q, &cfg)?.clamp(0.0, 1.0);
        sq_err_sum += (achieved - reward) * (achieved - reward);
        // Distinct: unique-token ratio of the rendered SQL.
        distinct_sum += distinct_ratio(&cost.render_sql(&q)?);
    }
    let c = correct.max(1) as f64;
    Ok(GenQuality {
        gac: correct as f64 / n.max(1) as f64,
        iac: iac_sum / c,
        rmse: (sq_err_sum / c).sqrt(),
        distinct: distinct_sum / c,
    })
}

/// Ratio of unique whitespace tokens in a rendered SQL string.
pub fn distinct_ratio(sql: &str) -> f64 {
    let tokens: Vec<&str> = sql.split_whitespace().collect();
    if tokens.is_empty() {
        return 0.0;
    }
    let unique: HashSet<&str> = tokens.iter().copied().collect();
    unique.len() as f64 / tokens.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{FsmGenerator, LlmLikeGenerator, StGenerator};
    use pipa_cost::SimBackend;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cost() -> SimBackend {
        SimBackend::new(Benchmark::TpcH.database(1.0, None))
    }

    #[test]
    fn st_has_perfect_gac_and_decent_iac() {
        let cost = cost();
        let mut g = StGenerator::new(1);
        let q = evaluate_generator(&mut g, &cost, 60, 3, &mut ChaCha8Rng::seed_from_u64(2))
            .unwrap();
        assert!((q.gac - 1.0).abs() < 1e-9, "ST GAC {}", q.gac);
        assert!(q.iac > 0.3, "ST IAC {}", q.iac);
        assert!(q.distinct > 0.0 && q.distinct <= 1.0);
    }

    #[test]
    fn llm_like_gac_below_st() {
        let cost = cost();
        let mut st = StGenerator::new(1);
        let mut llm = LlmLikeGenerator::gpt35_like(1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let qs = evaluate_generator(&mut st, &cost, 80, 3, &mut rng).unwrap();
        let ql = evaluate_generator(&mut llm, &cost, 80, 3, &mut rng).unwrap();
        assert!(ql.gac < qs.gac, "LLM GAC {} < ST GAC {}", ql.gac, qs.gac);
        assert!(ql.iac < qs.iac + 0.05, "infidelity lowers IAC");
    }

    #[test]
    fn fsm_iac_is_low() {
        // Random queries rarely hit three requested columns.
        let cost = cost();
        let mut g = FsmGenerator::new(9);
        let q = evaluate_generator(&mut g, &cost, 60, 3, &mut ChaCha8Rng::seed_from_u64(4))
            .unwrap();
        assert!(q.iac < 0.2, "FSM IAC {}", q.iac);
    }

    #[test]
    fn distinct_ratio_behaviour() {
        assert_eq!(distinct_ratio(""), 0.0);
        assert_eq!(distinct_ratio("a b c"), 1.0);
        assert!((distinct_ratio("a a b") - 2.0 / 3.0).abs() < 1e-9);
    }
}
