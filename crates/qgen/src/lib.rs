//! # pipa-qgen — index-aware query generation
//!
//! Everything the paper's §3 describes, rebuilt at laptop scale:
//!
//! * [`token`] — the sub-token vocabulary (`l_shipdate` → `l _ shipdate`)
//!   and the `<cls> q <sep> I <sep> R <eos>` sequence layout;
//! * [`fsm`] — the SQL grammar FSM used for random generation,
//!   constrained decoding, and validation;
//! * [`parser`] — word sequences ⇄ `pipa_sim` query ASTs;
//! * [`corpus`] — training-data construction (FSM queries labeled with
//!   greedy what-if indexes and discretized rewards);
//! * [`iabart`] — the IABART seq2seq model with progressive masked-span
//!   training and FSM-constrained prefix-matching decoding;
//! * [`baselines`] — ST / DT / FSM / LLM-like competitor generators;
//! * [`eval`] — the GAC / IAC / RMSE / Distinct metrics of Table 3.

#![warn(missing_docs)]

pub mod baselines;
pub mod corpus;
pub mod eval;
pub mod fsm;
pub mod iabart;
pub mod parser;
pub mod token;

pub use baselines::{DtGenerator, FsmGenerator, LlmLikeGenerator, QueryGenerator, StGenerator};
pub use corpus::{build_corpus, label_indexes, Sample};
pub use eval::{evaluate_generator, GenQuality};
pub use fsm::QueryFsm;
pub use iabart::{Iabart, IabartConfig, ProgressiveTasks};
pub use parser::{encode_query, parse_words};
pub use token::{Vocab, Word};

use pipa_cost::{CostBackend, CostResult};
use pipa_sim::{ColumnId, Query};

/// [`QueryGenerator`] adapter over a trained [`Iabart`], so the PIPA
/// stages and the Table 3 evaluation can treat it like any competitor.
pub struct IabartGenerator {
    /// The underlying model.
    pub model: Iabart,
    /// Decode retries per request.
    pub retries: usize,
}

impl IabartGenerator {
    /// Wrap a trained model.
    pub fn new(model: Iabart) -> Self {
        IabartGenerator { model, retries: 8 }
    }
}

impl QueryGenerator for IabartGenerator {
    fn name(&self) -> &str {
        "IABART"
    }

    fn generate(
        &mut self,
        _cost: &dyn CostBackend,
        targets: &[ColumnId],
        reward: f64,
    ) -> CostResult<Option<Query>> {
        Ok(self
            .model
            .generate_for_columns(targets, reward, self.retries))
    }
}
