//! The token language IABART operates on.
//!
//! Sequences follow the paper's layout `<cls> q <sep> I <sep> R <eos>`
//! (§3.1). The query part `q` uses a canonical FROM-first word order —
//! the paper's FSM also "starts from the state FROM, which helps the FSM
//! determine the table first" — and identifiers are split into sub-token
//! fragments (`l_shipdate` → `l _ shipdate`), which is what makes the
//! paper's prefix-matching decoding (§3.3) necessary and reproducible.
//!
//! Literals are discretized domain-fraction buckets `v0..v19` and rewards
//! are buckets `r0..r20` (the paper rounds rewards to two decimals; 5%
//! buckets keep the vocabulary small at no cost to the experiments).

use pipa_sim::{ColumnId, Schema, TableId};
use std::collections::HashMap;

/// Number of value buckets for literals.
pub const VALUE_BUCKETS: usize = 20;
/// Number of reward buckets (`r0` = benefit 0.0 … `r20` = benefit 1.0).
pub const REWARD_BUCKETS: usize = 21;

/// A word of the query language (the FSM's alphabet). Words are built
/// from one or more vocabulary tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Word {
    /// Keyword (`from`, `join`, `select`, `where`, `and`, aggregates,
    /// parens, `*`, `idx`).
    Kw(Kw),
    /// Comparison operator.
    Op(Op),
    /// Table name.
    Table(TableId),
    /// Column name.
    Column(ColumnId),
    /// Bucketed literal (`v0..v19`).
    Value(u8),
    /// Bucketed reward (`r0..r20`).
    Reward(u8),
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kw {
    From,
    Join,
    Select,
    Where,
    And,
    Sum,
    Avg,
    Min,
    Max,
    Count,
    LParen,
    RParen,
    Star,
    Idx,
}

impl Kw {
    /// Surface form.
    pub fn text(self) -> &'static str {
        match self {
            Kw::From => "from",
            Kw::Join => "join",
            Kw::Select => "select",
            Kw::Where => "where",
            Kw::And => "and",
            Kw::Sum => "sum",
            Kw::Avg => "avg",
            Kw::Min => "min",
            Kw::Max => "max",
            Kw::Count => "count",
            Kw::LParen => "(",
            Kw::RParen => ")",
            Kw::Star => "*",
            Kw::Idx => "idx",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Op {
    Eq,
    Le,
    Ge,
    Between,
}

impl Op {
    /// Surface form.
    pub fn text(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Le => "<=",
            Op::Ge => ">=",
            Op::Between => "between",
        }
    }
}

/// Token ids (dense). The first five are special.
pub const PAD: usize = 0;
/// Sequence start.
pub const CLS: usize = 1;
/// Segment separator.
pub const SEP: usize = 2;
/// Sequence end.
pub const EOS: usize = 3;
/// Mask token for span corruption.
pub const MASK: usize = 4;

/// The vocabulary: maps tokens (identifier fragments, keywords, buckets)
/// to dense ids, and knows how to spell every [`Word`] as a fragment
/// sequence.
#[derive(Debug, Clone)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
    /// Pre-computed fragment spellings of every table/column identifier.
    table_frags: Vec<Vec<usize>>,
    column_frags: Vec<Vec<usize>>,
}

/// Split an identifier into sub-token fragments: `l_shipdate` →
/// `["l", "_", "shipdate"]`.
pub fn ident_fragments(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, part) in name.split('_').enumerate() {
        if i > 0 {
            out.push("_".to_string());
        }
        if !part.is_empty() {
            out.push(part.to_string());
        }
    }
    out
}

impl Vocab {
    /// Build the vocabulary for a schema.
    pub fn build(schema: &Schema) -> Self {
        let mut v = Vocab {
            token_to_id: HashMap::new(),
            id_to_token: Vec::new(),
            table_frags: Vec::new(),
            column_frags: Vec::new(),
        };
        for special in ["<pad>", "<cls>", "<sep>", "<eos>", "<mask>"] {
            v.intern(special);
        }
        for kw in [
            Kw::From,
            Kw::Join,
            Kw::Select,
            Kw::Where,
            Kw::And,
            Kw::Sum,
            Kw::Avg,
            Kw::Min,
            Kw::Max,
            Kw::Count,
            Kw::LParen,
            Kw::RParen,
            Kw::Star,
            Kw::Idx,
        ] {
            v.intern(kw.text());
        }
        for op in [Op::Eq, Op::Le, Op::Ge, Op::Between] {
            v.intern(op.text());
        }
        for b in 0..VALUE_BUCKETS {
            v.intern(&format!("v{b}"));
        }
        for b in 0..REWARD_BUCKETS {
            v.intern(&format!("r{b}"));
        }
        for t in schema.tables() {
            let frags: Vec<usize> = ident_fragments(&t.name)
                .iter()
                .map(|f| v.intern(f))
                .collect();
            v.table_frags.push(frags);
        }
        for c in schema.columns() {
            let frags: Vec<usize> = ident_fragments(&c.name)
                .iter()
                .map(|f| v.intern(f))
                .collect();
            v.column_frags.push(frags);
        }
        v
    }

    fn intern(&mut self, tok: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(tok) {
            return id;
        }
        let id = self.id_to_token.len();
        self.token_to_id.insert(tok.to_string(), id);
        self.id_to_token.push(tok.to_string());
        id
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Whether the vocabulary is empty (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Token id of a surface string.
    pub fn id(&self, tok: &str) -> Option<usize> {
        self.token_to_id.get(tok).copied()
    }

    /// Surface string of a token id.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Fragment token ids spelling a word.
    pub fn spell(&self, w: Word) -> Vec<usize> {
        match w {
            Word::Kw(k) => vec![self.id(k.text()).expect("kw interned")],
            Word::Op(o) => vec![self.id(o.text()).expect("op interned")],
            Word::Table(t) => self.table_frags[t.0 as usize].clone(),
            Word::Column(c) => self.column_frags[c.0 as usize].clone(),
            Word::Value(b) => vec![self.id(&format!("v{b}")).expect("bucket")],
            Word::Reward(b) => vec![self.id(&format!("r{b}")).expect("bucket")],
        }
    }

    /// Encode a word sequence as token ids.
    pub fn encode_words(&self, words: &[Word]) -> Vec<usize> {
        words.iter().flat_map(|&w| self.spell(w)).collect()
    }
}

/// Map a domain fraction to a bucket token index.
pub fn fraction_to_bucket(frac: f64) -> u8 {
    ((frac.clamp(0.0, 1.0) * VALUE_BUCKETS as f64) as usize).min(VALUE_BUCKETS - 1) as u8
}

/// Map a bucket back to the fraction at its center.
pub fn bucket_to_fraction(b: u8) -> f64 {
    (f64::from(b) + 0.5) / VALUE_BUCKETS as f64
}

/// Map a benefit in `[0,1]` to a reward bucket.
pub fn reward_to_bucket(benefit: f64) -> u8 {
    ((benefit.clamp(0.0, 1.0) * (REWARD_BUCKETS - 1) as f64).round() as usize)
        .min(REWARD_BUCKETS - 1) as u8
}

/// Center value of a reward bucket.
pub fn bucket_to_reward(b: u8) -> f64 {
    f64::from(b) / (REWARD_BUCKETS - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_workload::Benchmark;

    #[test]
    fn fragments_split_identifiers() {
        assert_eq!(ident_fragments("l_shipdate"), vec!["l", "_", "shipdate"]);
        assert_eq!(
            ident_fragments("customer_demographics"),
            vec!["customer", "_", "demographics"]
        );
        assert_eq!(ident_fragments("region"), vec!["region"]);
    }

    #[test]
    fn vocab_roundtrips_words() {
        let schema = Benchmark::TpcH.schema();
        let v = Vocab::build(&schema);
        let ship = schema.column_id("l_shipdate").unwrap();
        let spelled = v.spell(Word::Column(ship));
        let texts: Vec<&str> = spelled.iter().map(|&id| v.token(id)).collect();
        assert_eq!(texts, vec!["l", "_", "shipdate"]);
        assert_eq!(v.spell(Word::Kw(Kw::Select)).len(), 1);
    }

    #[test]
    fn specials_are_fixed_ids() {
        let schema = Benchmark::TpcH.schema();
        let v = Vocab::build(&schema);
        assert_eq!(v.id("<pad>"), Some(PAD));
        assert_eq!(v.id("<cls>"), Some(CLS));
        assert_eq!(v.id("<sep>"), Some(SEP));
        assert_eq!(v.id("<eos>"), Some(EOS));
        assert_eq!(v.id("<mask>"), Some(MASK));
    }

    #[test]
    fn vocab_is_compact() {
        let schema = Benchmark::TpcH.schema();
        let v = Vocab::build(&schema);
        // Fragments shared between identifiers are interned once.
        assert!(v.len() < 220, "vocab size {}", v.len());
        assert!(!v.is_empty());
    }

    #[test]
    fn buckets_roundtrip() {
        for b in 0..VALUE_BUCKETS as u8 {
            assert_eq!(fraction_to_bucket(bucket_to_fraction(b)), b);
        }
        assert_eq!(fraction_to_bucket(0.0), 0);
        assert_eq!(fraction_to_bucket(1.0), (VALUE_BUCKETS - 1) as u8);
        assert_eq!(reward_to_bucket(0.0), 0);
        assert_eq!(reward_to_bucket(1.0), (REWARD_BUCKETS - 1) as u8);
        assert!((bucket_to_reward(reward_to_bucket(0.5)) - 0.5).abs() < 0.05);
    }

    #[test]
    fn encode_words_concatenates() {
        let schema = Benchmark::TpcH.schema();
        let v = Vocab::build(&schema);
        let ship = schema.column_id("l_shipdate").unwrap();
        let seq = v.encode_words(&[Word::Kw(Kw::Where), Word::Column(ship)]);
        assert_eq!(seq.len(), 4); // where + 3 fragments
    }
}
