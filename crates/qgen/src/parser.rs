//! Parsing word sequences back into `pipa_sim` query ASTs (and encoding
//! ASTs into word sequences for corpus construction).
//!
//! Parsing replays the sequence through the grammar [`QueryFsm`], so a
//! sequence parses iff it is grammatical — this is what the GAC metric
//! (§6.7) measures.

use crate::fsm::QueryFsm;
use crate::token::{bucket_to_fraction, fraction_to_bucket, Kw, Op, Word};
use pipa_sim::{
    Aggregate, ColumnId, PredOp, Predicate, Query, QueryBuilder, Schema, SimError, SimResult,
};

/// Parse a word sequence into a [`Query`].
pub fn parse_words(schema: &Schema, words: &[Word]) -> SimResult<Query> {
    // Validate via FSM replay.
    let mut fsm = QueryFsm::new(schema);
    for &w in words {
        if !fsm.advance(w) {
            return Err(SimError::Parse(format!("illegal word {w:?}")));
        }
    }
    if !fsm.can_end() {
        return Err(SimError::Parse("incomplete query".to_string()));
    }

    // Extract structure with a simple cursor.
    let mut i = 0;
    let expect_kw = |i: &mut usize, k: Kw, words: &[Word]| -> SimResult<()> {
        match words.get(*i) {
            Some(Word::Kw(kk)) if *kk == k => {
                *i += 1;
                Ok(())
            }
            other => Err(SimError::Parse(format!("expected {k:?}, got {other:?}"))),
        }
    };
    expect_kw(&mut i, Kw::From, words)?;
    let mut tables = Vec::new();
    loop {
        match words.get(i) {
            Some(Word::Table(t)) => {
                tables.push(*t);
                i += 1;
            }
            other => return Err(SimError::Parse(format!("expected table, got {other:?}"))),
        }
        match words.get(i) {
            Some(Word::Kw(Kw::Join)) => i += 1,
            _ => break,
        }
    }
    expect_kw(&mut i, Kw::Select, words)?;
    let agg_kw = match words.get(i) {
        Some(Word::Kw(k)) => *k,
        other => {
            return Err(SimError::Parse(format!(
                "expected aggregate, got {other:?}"
            )))
        }
    };
    i += 1;
    expect_kw(&mut i, Kw::LParen, words)?;
    let agg = match (agg_kw, words.get(i)) {
        (Kw::Count, Some(Word::Kw(Kw::Star))) => Aggregate::CountStar,
        (Kw::Sum, Some(Word::Column(c))) => Aggregate::Sum(*c),
        (Kw::Avg, Some(Word::Column(c))) => Aggregate::Avg(*c),
        (Kw::Min, Some(Word::Column(c))) => Aggregate::Min(*c),
        (Kw::Max, Some(Word::Column(c))) => Aggregate::Max(*c),
        (k, other) => return Err(SimError::Parse(format!("bad aggregate {k:?} {other:?}"))),
    };
    i += 1;
    expect_kw(&mut i, Kw::RParen, words)?;
    expect_kw(&mut i, Kw::Where, words)?;

    let mut preds: Vec<Predicate> = Vec::new();
    loop {
        let col = match words.get(i) {
            Some(Word::Column(c)) => *c,
            other => return Err(SimError::Parse(format!("expected column, got {other:?}"))),
        };
        i += 1;
        let op = match words.get(i) {
            Some(Word::Op(o)) => *o,
            other => return Err(SimError::Parse(format!("expected op, got {other:?}"))),
        };
        i += 1;
        let v1 = match words.get(i) {
            Some(Word::Value(v)) => *v,
            other => return Err(SimError::Parse(format!("expected value, got {other:?}"))),
        };
        i += 1;
        let pred = match op {
            Op::Eq => Predicate::eq(col, bucket_to_fraction(v1)),
            Op::Le => Predicate::le(col, bucket_to_fraction(v1)),
            Op::Ge => Predicate::ge(col, bucket_to_fraction(v1)),
            Op::Between => {
                let v2 = match words.get(i) {
                    Some(Word::Value(v)) => *v,
                    other => {
                        return Err(SimError::Parse(format!(
                            "expected second value, got {other:?}"
                        )))
                    }
                };
                i += 1;
                Predicate::between(col, bucket_to_fraction(v1), bucket_to_fraction(v2))
            }
        };
        preds.push(pred);
        match words.get(i) {
            Some(Word::Kw(Kw::And)) => i += 1,
            None => break,
            other => return Err(SimError::Parse(format!("expected and/end, got {other:?}"))),
        }
    }

    // Assemble: joins connect each later table to the earliest FK partner.
    let mut b = QueryBuilder::new();
    b = b.table(tables[0]);
    for (pos, &t) in tables.iter().enumerate().skip(1) {
        let edge = schema.foreign_keys().iter().find(|fk| {
            let (tf, tt) = (schema.table_of(fk.from), schema.table_of(fk.to));
            (tt == t && tables[..pos].contains(&tf)) || (tf == t && tables[..pos].contains(&tt))
        });
        match edge {
            Some(fk) => b = b.join(schema, fk.from, fk.to),
            None => {
                return Err(SimError::Parse(format!(
                    "table {} not FK-connected",
                    schema.table(t).name
                )))
            }
        }
    }
    for p in preds {
        b = b.filter(schema, p);
    }
    b = b.aggregate(agg);
    b.build(schema)
}

/// Encode a query of the FSM-grammar subset back into words. Returns
/// `None` when the query falls outside the subset (multiple aggregates,
/// projections, grouping, IN-lists, …).
pub fn encode_query(_schema: &Schema, q: &Query) -> Option<Vec<Word>> {
    if !q.projection.is_empty()
        || q.aggregates.len() != 1
        || !q.group_by.is_empty()
        || !q.order_by.is_empty()
        || q.predicates.is_empty()
    {
        return None;
    }
    let mut words = vec![Word::Kw(Kw::From)];
    // Table order: FROM order must keep FK-connectivity; the query
    // validated already, so its own table order works.
    for (i, &t) in q.tables.iter().enumerate() {
        if i > 0 {
            words.push(Word::Kw(Kw::Join));
        }
        words.push(Word::Table(t));
    }
    words.push(Word::Kw(Kw::Select));
    let (kw, arg): (Kw, Option<ColumnId>) = match q.aggregates[0] {
        Aggregate::CountStar => (Kw::Count, None),
        Aggregate::Sum(c) => (Kw::Sum, Some(c)),
        Aggregate::Avg(c) => (Kw::Avg, Some(c)),
        Aggregate::Min(c) => (Kw::Min, Some(c)),
        Aggregate::Max(c) => (Kw::Max, Some(c)),
    };
    words.push(Word::Kw(kw));
    words.push(Word::Kw(Kw::LParen));
    match arg {
        Some(c) => words.push(Word::Column(c)),
        None => words.push(Word::Kw(Kw::Star)),
    }
    words.push(Word::Kw(Kw::RParen));
    words.push(Word::Kw(Kw::Where));
    for (i, p) in q.predicates.iter().enumerate() {
        if i > 0 {
            words.push(Word::Kw(Kw::And));
        }
        words.push(Word::Column(p.col));
        match &p.op {
            PredOp::Eq(f) => {
                words.push(Word::Op(Op::Eq));
                words.push(Word::Value(fraction_to_bucket(*f)));
            }
            PredOp::Le(f) => {
                words.push(Word::Op(Op::Le));
                words.push(Word::Value(fraction_to_bucket(*f)));
            }
            PredOp::Ge(f) => {
                words.push(Word::Op(Op::Ge));
                words.push(Word::Value(fraction_to_bucket(*f)));
            }
            PredOp::Between(lo, hi) => {
                words.push(Word::Op(Op::Between));
                words.push(Word::Value(fraction_to_bucket(*lo)));
                words.push(Word::Value(fraction_to_bucket(*hi)));
            }
            PredOp::In(_) => return None,
        }
    }
    Some(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fsm_output_always_parses() {
        let schema = Benchmark::TpcH.schema();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let words = QueryFsm::generate(&schema, &mut rng, None);
            let q = parse_words(&schema, &words).expect("FSM output parses");
            assert!(q.validate(&schema).is_ok());
            assert!(!q.predicates.is_empty());
        }
    }

    #[test]
    fn roundtrip_words_query_words() {
        let schema = Benchmark::TpcH.schema();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            let words = QueryFsm::generate(&schema, &mut rng, None);
            let q = parse_words(&schema, &words).unwrap();
            let re = encode_query(&schema, &q).expect("in subset");
            let q2 = parse_words(&schema, &re).unwrap();
            // Semantic equivalence: same tables, predicates, aggregate.
            assert_eq!(q.predicates, q2.predicates);
            assert_eq!(q.aggregates, q2.aggregates);
            let mut ta = q.tables.clone();
            let mut tb = q2.tables.clone();
            ta.sort_unstable();
            tb.sort_unstable();
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        let schema = Benchmark::TpcH.schema();
        assert!(parse_words(&schema, &[Word::Kw(Kw::Select)]).is_err());
        assert!(parse_words(&schema, &[]).is_err());
        // Truncated: from table select sum ( — incomplete.
        let lineitem = schema.table_id("lineitem").unwrap();
        let words = vec![
            Word::Kw(Kw::From),
            Word::Table(lineitem),
            Word::Kw(Kw::Select),
        ];
        assert!(parse_words(&schema, &words).is_err());
    }

    #[test]
    fn out_of_subset_queries_encode_to_none() {
        let schema = Benchmark::TpcH.schema();
        let key = schema.column_id("l_orderkey").unwrap();
        let q = QueryBuilder::new()
            .filter(&schema, Predicate::in_list(key, vec![0.1, 0.2]))
            .aggregate(Aggregate::CountStar)
            .build(&schema)
            .unwrap();
        assert!(encode_query(&schema, &q).is_none());
    }
}
