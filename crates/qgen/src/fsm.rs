//! The word-level SQL grammar FSM (\[43\]-style).
//!
//! The FSM does three jobs, exactly as in the paper:
//!
//! 1. **random query generation** (the FSM baseline and IABART's training
//!    corpus) — a seeded random walk over legal transitions, "starting
//!    from the state FROM … to determine the subsequent legal column
//!    candidates" (§3.1);
//! 2. **constrained decoding** (§3.3) — at every step it exposes the set
//!    of legal next *words*, against which the decoder prefix-matches its
//!    sub-token output;
//! 3. **validation** — a token sequence parses iff it drives the FSM to
//!    the accepting state.
//!
//! The grammar (word level, FROM-first canonical order):
//!
//! ```text
//! query  := from TABLE (join TABLE)* select AGG where PRED (and PRED)*
//! AGG    := (sum|avg|min|max) ( COLUMN ) | count ( * )
//! PRED   := COLUMN (=|<=|>=) VALUE | COLUMN between VALUE VALUE
//! ```

use crate::token::{Kw, Op, Word, VALUE_BUCKETS};
use pipa_sim::{ColumnId, Schema, TableId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Maximum tables a generated query may join.
pub const MAX_TABLES: usize = 3;
/// Maximum predicates a generated query may carry.
pub const MAX_PREDS: usize = 4;

/// FSM control state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Start,
    ExpectTable,
    AfterTables,
    ExpectAgg,
    ExpectLParen {
        count_star: bool,
    },
    ExpectAggArg {
        count_star: bool,
    },
    ExpectRParen,
    ExpectWhereOrJoin,
    ExpectPredCol,
    ExpectOp,
    ExpectValue {
        second_of_between: bool,
    },
    AfterPred,
    /// Terminal state (reserved; the grammar currently ends in
    /// `AfterPred`, which also accepts).
    #[allow(dead_code)]
    Done,
}

/// The grammar FSM over one schema.
#[derive(Clone)]
pub struct QueryFsm<'a> {
    schema: &'a Schema,
    state: State,
    /// Tables in scope.
    pub scope: Vec<TableId>,
    /// Predicate columns already used.
    pub used_pred_cols: Vec<ColumnId>,
    /// Pending predicate column (between `ExpectOp` and value states).
    pending_col: Option<ColumnId>,
    pending_op: Option<Op>,
    first_between_value: Option<u8>,
    preds_done: usize,
}

impl<'a> QueryFsm<'a> {
    /// Fresh FSM in the `from` state.
    pub fn new(schema: &'a Schema) -> Self {
        QueryFsm {
            schema,
            state: State::Start,
            scope: Vec::new(),
            used_pred_cols: Vec::new(),
            pending_col: None,
            pending_op: None,
            first_between_value: None,
            preds_done: 0,
        }
    }

    /// Whether the FSM accepts the sequence ending here.
    pub fn can_end(&self) -> bool {
        matches!(self.state, State::AfterPred | State::Done)
    }

    /// Tables joinable to the current scope by a foreign key.
    fn joinable_tables(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        for fk in self.schema.foreign_keys() {
            let (tf, tt) = (self.schema.table_of(fk.from), self.schema.table_of(fk.to));
            for (a, b) in [(tf, tt), (tt, tf)] {
                if self.scope.contains(&a) && !self.scope.contains(&b) && !out.contains(&b) {
                    out.push(b);
                }
            }
        }
        out
    }

    fn scope_columns(&self) -> Vec<ColumnId> {
        self.scope
            .iter()
            .flat_map(|&t| self.schema.columns_of(t).iter().copied())
            .collect()
    }

    /// Legal next words.
    pub fn candidates(&self) -> Vec<Word> {
        match &self.state {
            State::Start => vec![Word::Kw(Kw::From)],
            State::ExpectTable => {
                if self.scope.is_empty() {
                    self.schema
                        .tables()
                        .iter()
                        .map(|t| Word::Table(t.id))
                        .collect()
                } else {
                    self.joinable_tables()
                        .into_iter()
                        .map(Word::Table)
                        .collect()
                }
            }
            State::AfterTables | State::ExpectWhereOrJoin => {
                let mut c = vec![Word::Kw(Kw::Select)];
                if self.scope.len() < MAX_TABLES && !self.joinable_tables().is_empty() {
                    c.insert(0, Word::Kw(Kw::Join));
                }
                if matches!(self.state, State::ExpectWhereOrJoin) {
                    c = vec![Word::Kw(Kw::Where)];
                }
                c
            }
            State::ExpectAgg => vec![
                Word::Kw(Kw::Sum),
                Word::Kw(Kw::Avg),
                Word::Kw(Kw::Min),
                Word::Kw(Kw::Max),
                Word::Kw(Kw::Count),
            ],
            State::ExpectLParen { .. } => vec![Word::Kw(Kw::LParen)],
            State::ExpectAggArg { count_star } => {
                if *count_star {
                    vec![Word::Kw(Kw::Star)]
                } else {
                    self.scope_columns().into_iter().map(Word::Column).collect()
                }
            }
            State::ExpectRParen => vec![Word::Kw(Kw::RParen)],
            State::ExpectPredCol => self
                .scope_columns()
                .into_iter()
                .filter(|c| !self.used_pred_cols.contains(c))
                .map(Word::Column)
                .collect(),
            State::ExpectOp => vec![
                Word::Op(Op::Eq),
                Word::Op(Op::Le),
                Word::Op(Op::Ge),
                Word::Op(Op::Between),
            ],
            State::ExpectValue { .. } => (0..VALUE_BUCKETS as u8).map(Word::Value).collect(),
            State::AfterPred => {
                if self.preds_done < MAX_PREDS
                    && self
                        .scope_columns()
                        .iter()
                        .any(|c| !self.used_pred_cols.contains(c))
                {
                    vec![Word::Kw(Kw::And)]
                } else {
                    vec![]
                }
            }
            State::Done => vec![],
        }
    }

    /// Advance on a word. Returns `false` (leaving the FSM unchanged) if
    /// the word is not a legal continuation.
    pub fn advance(&mut self, w: Word) -> bool {
        if !self.candidates().contains(&w) {
            return false;
        }
        self.state = match (&self.state, w) {
            (State::Start, Word::Kw(Kw::From)) => State::ExpectTable,
            (State::ExpectTable, Word::Table(t)) => {
                self.scope.push(t);
                State::AfterTables
            }
            (State::AfterTables, Word::Kw(Kw::Join)) => State::ExpectTable,
            (State::AfterTables, Word::Kw(Kw::Select)) => State::ExpectAgg,
            (State::ExpectAgg, Word::Kw(Kw::Count)) => State::ExpectLParen { count_star: true },
            (State::ExpectAgg, Word::Kw(_)) => State::ExpectLParen { count_star: false },
            (State::ExpectLParen { count_star }, Word::Kw(Kw::LParen)) => State::ExpectAggArg {
                count_star: *count_star,
            },
            (State::ExpectAggArg { .. }, Word::Kw(Kw::Star))
            | (State::ExpectAggArg { .. }, Word::Column(_)) => State::ExpectRParen,
            (State::ExpectRParen, Word::Kw(Kw::RParen)) => State::ExpectWhereOrJoin,
            (State::ExpectWhereOrJoin, Word::Kw(Kw::Where)) => State::ExpectPredCol,
            (State::ExpectPredCol, Word::Column(c)) => {
                self.pending_col = Some(c);
                self.used_pred_cols.push(c);
                State::ExpectOp
            }
            (State::ExpectOp, Word::Op(op)) => {
                self.pending_op = Some(op);
                State::ExpectValue {
                    second_of_between: false,
                }
            }
            (
                State::ExpectValue {
                    second_of_between: false,
                },
                Word::Value(v),
            ) => {
                if self.pending_op == Some(Op::Between) {
                    self.first_between_value = Some(v);
                    State::ExpectValue {
                        second_of_between: true,
                    }
                } else {
                    self.preds_done += 1;
                    State::AfterPred
                }
            }
            (
                State::ExpectValue {
                    second_of_between: true,
                },
                Word::Value(_),
            ) => {
                self.preds_done += 1;
                State::AfterPred
            }
            (State::AfterPred, Word::Kw(Kw::And)) => State::ExpectPredCol,
            (s, w) => unreachable!("legal candidate not handled: {s:?} {w:?}"),
        };
        true
    }

    /// Random walk producing a complete legal word sequence.
    ///
    /// `bias` optionally steers table and predicate-column choices toward
    /// the given columns (ST-style construction and IABART corpus
    /// balancing both use this).
    pub fn generate<R: Rng + ?Sized>(
        schema: &'a Schema,
        rng: &mut R,
        bias: Option<&[ColumnId]>,
    ) -> Vec<Word> {
        let mut fsm = QueryFsm::new(schema);
        let mut words = Vec::new();
        loop {
            let cands = fsm.candidates();
            if cands.is_empty() {
                break;
            }
            // Decide whether to stop when allowed: stop with probability
            // growing in the number of predicates — but keep going while
            // reachable bias columns are still unfiltered, so a corpus
            // sample for the index set {c} filters *all* of {c} whenever
            // the grammar allows it (this is the association IABART must
            // learn).
            if fsm.can_end() {
                let unused_bias_reachable = bias.is_some_and(|targets| {
                    targets.iter().any(|c| {
                        fsm.scope.contains(&schema.table_of(*c)) && !fsm.used_pred_cols.contains(c)
                    })
                });
                let stop_p = if unused_bias_reachable {
                    0.02
                } else {
                    0.35 + 0.25 * fsm.preds_done as f64
                };
                if rng.gen::<f64>() < stop_p {
                    break;
                }
            }
            let w = pick_candidate(&cands, bias, schema, rng);
            let ok = fsm.advance(w);
            debug_assert!(ok);
            words.push(w);
        }
        words
    }
}

/// Weighted candidate choice: bias toward target columns (and the tables
/// that contain them) when provided.
fn pick_candidate<R: Rng + ?Sized>(
    cands: &[Word],
    bias: Option<&[ColumnId]>,
    schema: &Schema,
    rng: &mut R,
) -> Word {
    if let Some(targets) = bias {
        // Prefer target columns directly.
        let target_cols: Vec<Word> = cands
            .iter()
            .copied()
            .filter(|w| matches!(w, Word::Column(c) if targets.contains(c)))
            .collect();
        if !target_cols.is_empty() && rng.gen::<f64>() < 0.95 {
            return *target_cols.choose(rng).expect("nonempty");
        }
        // Prefer tables containing target columns.
        let target_tables: Vec<Word> = cands
            .iter()
            .copied()
            .filter(|w| {
                matches!(w, Word::Table(t)
                    if targets.iter().any(|&c| schema.table_of(c) == *t))
            })
            .collect();
        if !target_tables.is_empty() && rng.gen::<f64>() < 0.95 {
            return *target_tables.choose(rng).expect("nonempty");
        }
    }
    *cands.choose(rng).expect("nonempty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn walk_produces_legal_sequences() {
        let schema = Benchmark::TpcH.schema();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let words = QueryFsm::generate(&schema, &mut rng, None);
            // Replay through a fresh FSM.
            let mut fsm = QueryFsm::new(&schema);
            for &w in &words {
                assert!(fsm.advance(w), "illegal word {w:?} in {words:?}");
            }
            assert!(fsm.can_end(), "incomplete sequence {words:?}");
            assert!(fsm.preds_done >= 1, "queries must be sargable");
        }
    }

    #[test]
    fn from_is_always_first() {
        let schema = Benchmark::TpcH.schema();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let words = QueryFsm::generate(&schema, &mut rng, None);
        assert_eq!(words[0], Word::Kw(Kw::From));
        assert!(matches!(words[1], Word::Table(_)));
    }

    #[test]
    fn joins_follow_foreign_keys() {
        let schema = Benchmark::TpcH.schema();
        let mut fsm = QueryFsm::new(&schema);
        fsm.advance(Word::Kw(Kw::From));
        let lineitem = schema.table_id("lineitem").unwrap();
        fsm.advance(Word::Table(lineitem));
        fsm.advance(Word::Kw(Kw::Join));
        let joinable = fsm.candidates();
        // lineitem joins orders, part, supplier — not region.
        let region = schema.table_id("region").unwrap();
        assert!(!joinable.contains(&Word::Table(region)));
        assert!(joinable.contains(&Word::Table(schema.table_id("orders").unwrap())));
    }

    #[test]
    fn predicate_columns_not_repeated() {
        let schema = Benchmark::TpcH.schema();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let words = QueryFsm::generate(&schema, &mut rng, None);
            let mut cols = Vec::new();
            let mut in_where = false;
            let mut expecting_col = false;
            for w in &words {
                match w {
                    Word::Kw(Kw::Where) | Word::Kw(Kw::And) => {
                        in_where = true;
                        expecting_col = true;
                    }
                    Word::Column(c) if in_where && expecting_col => {
                        assert!(!cols.contains(c), "repeated predicate column");
                        cols.push(*c);
                        expecting_col = false;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn bias_steers_generation() {
        let schema = Benchmark::TpcH.schema();
        let targets = vec![schema.column_id("l_shipdate").unwrap()];
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut hits = 0;
        for _ in 0..50 {
            let words = QueryFsm::generate(&schema, &mut rng, Some(&targets));
            if words
                .iter()
                .any(|w| matches!(w, Word::Column(c) if *c == targets[0]))
            {
                hits += 1;
            }
        }
        assert!(
            hits > 30,
            "bias should usually include the target: {hits}/50"
        );
    }

    #[test]
    fn illegal_advance_rejected() {
        let schema = Benchmark::TpcH.schema();
        let mut fsm = QueryFsm::new(&schema);
        assert!(!fsm.advance(Word::Kw(Kw::Select)), "must start with from");
        assert!(fsm.advance(Word::Kw(Kw::From)));
        assert!(!fsm.advance(Word::Kw(Kw::From)), "no double from");
    }

    #[test]
    fn clone_preserves_state() {
        let schema = Benchmark::TpcH.schema();
        let mut fsm = QueryFsm::new(&schema);
        fsm.advance(Word::Kw(Kw::From));
        let snapshot = fsm.clone();
        assert_eq!(snapshot.candidates(), fsm.candidates());
    }
}
