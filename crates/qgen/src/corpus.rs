//! Training-data construction for IABART (paper §3.1).
//!
//! Each sample is the token sequence `<cls> q <sep> I <sep> R <eos>`:
//! `q` is an FSM-generated query, `I` is the index set a reference
//! advisor recommends for `q` (the paper labels with SWIRL; we label with
//! the deterministic greedy what-if advisor — same role, no training
//! noise, documented in DESIGN.md), and `R` is the discretized relative
//! cost improvement of `I` on `q` ("estimated cost instead of the actual
//! cost to speed up the construction", §3.1).

use crate::fsm::QueryFsm;
use crate::parser::parse_words;
use crate::token::{reward_to_bucket, Kw, Vocab, Word, CLS, EOS, SEP};
use pipa_cost::{CostBackend, CostEngine, CostResult};
use pipa_sim::{ColumnId, Index, IndexConfig, Query};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// One training sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Full token sequence `<cls> I <sep> R <sep> q <eos>`.
    pub tokens: Vec<usize>,
    /// Token span (half-open) of the query part.
    pub q_span: (usize, usize),
    /// Token span (half-open) of the index part.
    pub idx_span: (usize, usize),
    /// The parsed query (for inspection/tests).
    pub query: Query,
    /// The labeled indexes.
    pub indexes: Vec<ColumnId>,
    /// The labeled reward bucket.
    pub reward_bucket: u8,
}

/// Greedy single-query index labeling: up to `budget` single-column
/// indexes chosen by marginal what-if benefit. Candidates cover the
/// query's filter *and* join columns, like a real advisor (the reference
/// the paper uses for IAC is SWIRL, whose action space includes join
/// keys — a naive generator can therefore be "out-advised" by a join-key
/// index, which is exactly what IABART learns to avoid).
pub fn label_indexes(
    cost: &dyn CostBackend,
    q: &Query,
    budget: usize,
) -> CostResult<Vec<ColumnId>> {
    let mut candidates = q.filter_columns();
    candidates.extend(q.join_columns());
    candidates.sort_unstable();
    candidates.dedup();
    let mut cfg = IndexConfig::empty();
    let mut out = Vec::new();
    let mut current = cost.query_cost(q, &cfg)?;
    for _ in 0..budget {
        let mut best: Option<(f64, ColumnId)> = None;
        for c in candidates.iter().copied() {
            if out.contains(&c) {
                continue;
            }
            let mut trial = cfg.clone();
            trial.add(Index::single(c));
            let trial_cost = cost.query_cost(q, &trial)?;
            if trial_cost < current * 0.999 && best.map(|b| trial_cost < b.0).unwrap_or(true) {
                best = Some((trial_cost, c));
            }
        }
        match best {
            Some((best_cost, c)) => {
                cfg.add(Index::single(c));
                out.push(c);
                current = best_cost;
            }
            None => break,
        }
    }
    Ok(out)
}

/// Assemble the token sequence for `(query words, indexes, reward)`.
///
/// Layout: `<cls> I <sep> R <sep> q <eos>` — the paper writes the query
/// first (§3.1); we put the conditioning segments first so that at
/// generation time the decoder holds `I` and `R` in its *self-attention*
/// context (teacher-forced prefix) rather than relying purely on
/// cross-attention, which a laptop-scale model cannot learn reliably.
/// All three progressive tasks are layout-independent (they mask spans).
pub fn assemble_tokens(
    vocab: &Vocab,
    q_words: &[Word],
    indexes: &[ColumnId],
    reward_bucket: u8,
) -> (Vec<usize>, (usize, usize), (usize, usize)) {
    let mut tokens = vec![CLS];
    let idx_start = tokens.len();
    for &c in indexes {
        tokens.extend(vocab.encode_words(&[Word::Kw(Kw::Idx), Word::Column(c)]));
    }
    let idx_end = tokens.len();
    tokens.push(SEP);
    tokens.extend(vocab.encode_words(&[Word::Reward(reward_bucket)]));
    tokens.push(SEP);
    let q_start = tokens.len();
    tokens.extend(vocab.encode_words(q_words));
    let q_end = tokens.len();
    tokens.push(EOS);
    (tokens, (q_start, q_end), (idx_start, idx_end))
}

/// Build a corpus of `n` samples. Half the samples are biased toward a
/// random column set so the corpus covers the column space evenly (the
/// association IABART must learn is *column set → query*, so coverage of
/// rarely-chosen columns matters).
pub fn build_corpus<R: RngCore>(
    cost: &dyn CostBackend,
    n: usize,
    rng: &mut R,
) -> CostResult<Vec<Sample>> {
    let schema = cost.catalog().schema;
    let vocab = Vocab::build(schema);
    let all_cols = schema.indexable_columns();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let bias: Option<Vec<ColumnId>> = if rng.gen_bool(0.7) {
            let k = rng.gen_range(1..=3);
            Some(crate::eval::sample_target_set(cost, k, rng)?)
        } else {
            let k = rng.gen_range(1..=3);
            if rng.gen_bool(0.5) {
                Some(all_cols.choose_multiple(rng, k).copied().collect())
            } else {
                None
            }
        };
        let words = QueryFsm::generate(schema, rng, bias.as_deref());
        let Ok(query) = parse_words(schema, &words) else {
            continue;
        };
        let indexes = label_indexes(cost, &query, 3)?;
        if indexes.is_empty() {
            // Unindexable query: keep a few (the model should see the
            // zero-reward association), but the corpus must be dominated
            // by clean (index set → query) pairs for the conditioning to
            // be learnable at this scale.
            if rng.gen_bool(0.9) {
                continue;
            }
        }
        let cfg: IndexConfig = indexes.iter().map(|&c| Index::single(c)).collect();
        let benefit = CostEngine::new(cost)
            .query_benefit(&query, &cfg)?
            .clamp(0.0, 1.0);
        let rb = reward_to_bucket(benefit);
        let (tokens, q_span, idx_span) = assemble_tokens(&vocab, &words, &indexes, rb);
        out.push(Sample {
            tokens,
            q_span,
            idx_span,
            query,
            indexes,
            reward_bucket: rb,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipa_cost::SimBackend;
    use pipa_workload::Benchmark;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cost() -> SimBackend {
        SimBackend::new(Benchmark::TpcH.database(1.0, None))
    }

    #[test]
    fn corpus_samples_are_well_formed() {
        let cost = cost();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let corpus = build_corpus(&cost, 40, &mut rng).unwrap();
        assert_eq!(corpus.len(), 40);
        for s in &corpus {
            assert_eq!(s.tokens[0], CLS);
            assert_eq!(*s.tokens.last().unwrap(), EOS);
            assert!(s.q_span.0 < s.q_span.1);
            // Conditioning segments come first, the query last.
            assert!(s.idx_span.1 <= s.q_span.0);
            assert!(s.q_span.1 < s.tokens.len());
        }
    }

    #[test]
    fn labels_prefer_selective_columns() {
        let cost = cost();
        let schema = cost.database().schema();
        let key = schema.column_id("l_orderkey").unwrap();
        let flag = schema.column_id("l_returnflag").unwrap();
        let q = pipa_sim::QueryBuilder::new()
            .filter(schema, pipa_sim::Predicate::eq(key, 0.5))
            .filter(schema, pipa_sim::Predicate::eq(flag, 0.5))
            .aggregate(pipa_sim::Aggregate::CountStar)
            .build(schema)
            .unwrap();
        let labels = label_indexes(&cost, &q, 2).unwrap();
        assert_eq!(
            labels.first(),
            Some(&key),
            "key index dominates: {labels:?}"
        );
    }

    #[test]
    fn rewards_span_buckets() {
        let cost = cost();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let corpus = build_corpus(&cost, 60, &mut rng).unwrap();
        let mut buckets: Vec<u8> = corpus.iter().map(|s| s.reward_bucket).collect();
        buckets.sort_unstable();
        buckets.dedup();
        assert!(buckets.len() >= 3, "reward diversity: {buckets:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cost = cost();
        let a = build_corpus(&cost, 10, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        let b = build_corpus(&cost, 10, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens);
        }
    }
}
